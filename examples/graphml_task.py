#!/usr/bin/env python3
"""Describing a pipeline in GraphML, exactly like the paper's Figure 4.

The task description below mirrors the GraphML listing in the paper: a data
source, a broker, a Spark-style stream processor and a data sink, each on its
own host behind one switch, with per-link latency settings.  The script
parses it, validates it, runs the emulation and prints what arrived at the
sink.

Run with::

    python examples/graphml_task.py
"""

from repro.core import Emulation, parse_graphml_string
from repro.workloads.text import generate_documents

GRAPHML_TASK = """<?xml version="1.0" encoding="UTF-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <graph edgedefault="undirected">
    <data key="topicCfg">{topics: [
        {name: raw-data, replicas: 1, primaryBroker: h2},
        {name: words-per-doc, replicas: 1, primaryBroker: h2}]}</data>

    <!-- Cluster allocation -->
    <node id="h1">
      <data key="prodType">DIRECTORY</data>
      <data key="prodCfg">{topicName: raw-data, filePath: documents,
                           totalMessages: 30, messagesPerSecond: 6}</data>
    </node>
    <node id="h2">
      <data key="brokerCfg">{coordinator: true}</data>
    </node>
    <node id="h3">
      <data key="streamProcType">SPARK</data>
      <data key="streamProcCfg">{app: word_count, inputTopics: [raw-data],
                                 outputTopic: words-per-doc, batchInterval: 0.5}</data>
    </node>
    <node id="h5">
      <data key="consType">STANDARD</data>
      <data key="consCfg">{topics: [words-per-doc]}</data>
    </node>

    <!-- Network setup -->
    <node id="s1"/>
    <edge source="s1" target="h1"><data key="st">1</data><data key="dt">1</data><data key="lat">50</data></edge>
    <edge source="s1" target="h2"><data key="lat">5</data><data key="bw">100</data></edge>
    <edge source="s1" target="h3"><data key="lat">5</data><data key="bw">100</data></edge>
    <edge source="s1" target="h5"><data key="lat">5</data><data key="bw">100</data></edge>
  </graph>
</graphml>
"""


def main() -> None:
    task = parse_graphml_string(GRAPHML_TASK, name="figure4-example")
    problems = task.validate()
    print("validation:", "OK" if not problems else problems)
    print("summary:", task.summary())

    emulation = Emulation(
        task, seed=7, datasets={"documents": generate_documents(30, seed=7)}
    )
    result = emulation.run(duration=45.0)

    print("\nproduced:", result.messages_produced, "consumed:", result.messages_consumed)
    print("mean end-to-end latency:", round(result.latency_summary["mean"], 3), "s")
    sink = emulation.consumers["h5"]
    print("\nfirst results at the data sink:")
    for record in sink.records[:5]:
        value = record.value.get("value") if isinstance(record.value, dict) else record.value
        print(f"  {value.get('doc_id')}: {value.get('distinct_words')} distinct words")


if __name__ == "__main__":
    main()
