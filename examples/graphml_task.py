#!/usr/bin/env python3
"""Describing a pipeline in GraphML, exactly like the paper's Figure 4.

The GraphML listing (a data source, a broker, a Spark-style stream processor
and a data sink behind one switch, with per-link latency settings) lives in
the registered ``graphml-task`` scenario; this script runs it and prints
what arrived at the sink.  The same run is available from the command
line::

    python -m repro run graphml-task --scale default

Run with::

    python examples/graphml_task.py
"""

from repro.scenarios import ScenarioParams, run


def main() -> None:
    outcome = run("graphml-task", params=ScenarioParams(scale="default"))
    data = outcome.result

    problems = data["validation_problems"]
    print("validation:", "OK" if not problems else problems)
    print("summary:", data["task_summary"])

    print("\nproduced:", data["messages_produced"], "consumed:", data["messages_consumed"])
    print("mean end-to-end latency:", round(data["mean_latency_s"], 3), "s")
    print("\nfirst results at the data sink:")
    for sample in data["sink_samples"]:
        print(f"  {sample['doc_id']}: {sample['distinct_words']} distinct words")


if __name__ == "__main__":
    main()
