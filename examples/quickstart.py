#!/usr/bin/env python3
"""Quickstart: prototype a word-count pipeline in a few lines.

Builds the paper's reference pipeline (Figure 2) — a document producer, a
message broker, two stream processing jobs and a data sink, each on its own
emulated host behind one switch — runs it for a minute of simulated time and
prints the end-to-end results.

Run with::

    python examples/quickstart.py
"""

from repro.apps.word_count import create_task
from repro.core import Emulation
from repro.workloads.text import generate_documents


def main() -> None:
    # 1. Describe the emulation task (topology + components + topics).
    task = create_task(n_documents=50, files_per_second=10.0, link_latency_ms=5.0)
    print("Task description:", task.summary())

    # 2. Attach the input data and build the emulation.
    documents = generate_documents(50, seed=42)
    emulation = Emulation(task, seed=42, datasets={"documents": documents})

    # 3. Run for one simulated minute.
    result = emulation.run(duration=60.0)

    # 4. Inspect the results.
    print("\n--- results ---")
    for key, value in result.summary().items():
        print(f"{key:>20}: {value}")

    sink = emulation.consumers["h5"]
    print("\nFirst three word-count summaries reaching the data sink:")
    for record in sink.records[:3]:
        value = record.value.get("value") if isinstance(record.value, dict) else record.value
        print(
            f"  doc={value.get('doc_id')!r:14} words={value.get('total_words'):4} "
            f"distinct={value.get('distinct_words'):4} latency={record.latency:.3f}s"
        )

    spe1 = emulation.spes["h3"]
    print(
        f"\nSPE job 1 processed {spe1.total_input_records()} documents in "
        f"{spe1.batches_run} micro-batches "
        f"(mean job time {spe1.mean_processing_time() * 1000:.1f} ms)"
    )


if __name__ == "__main__":
    main()
