#!/usr/bin/env python3
"""Quickstart: prototype a word-count pipeline in a few lines.

The pipeline itself (the paper's Figure 2 reference task) is the registered
``quickstart`` scenario — this script is only the reporting shim.  The same
run is available from the command line::

    python -m repro run quickstart --scale default

Run with::

    python examples/quickstart.py
"""

from repro.scenarios import ScenarioParams, run


def main() -> None:
    # One call runs the whole stack: topology, broker, two SPE jobs, sink.
    outcome = run("quickstart", params=ScenarioParams(scale="default"))
    data = outcome.result

    print("Task description:", data["task_summary"])
    print("\n--- results ---")
    for key, value in data["summary"].items():
        print(f"{key:>20}: {value}")

    print("\nFirst three word-count summaries reaching the data sink:")
    for sample in data["sink_samples"]:
        print(
            f"  doc={sample['doc_id']!r:14} words={sample['total_words']:4} "
            f"distinct={sample['distinct_words']:4} latency={sample['latency_s']:.3f}s"
        )

    spe1 = data["spe_job1"]
    print(
        f"\nSPE job 1 processed {spe1['input_records']} documents in "
        f"{spe1['batches_run']} micro-batches "
        f"(mean job time {spe1['mean_processing_ms']:.1f} ms)"
    )


if __name__ == "__main__":
    main()
