#!/usr/bin/env python3
"""Failure analysis: a replicated broker deployment under a network partition.

Reproduces (at reduced scale) the Figure 6 scenario: coordinating sites in a
star topology, each running a broker, a 30 Kbps producer and a consumer; the
host of topic A's leader broker is disconnected for a while.  The script
prints the delivery matrix of the co-located producer, the per-topic latency
spikes, the coordination events, and contrasts ZooKeeper-style coordination
(silent message loss) with Raft-based coordination (no silent loss).

Run with::

    python examples/failure_injection.py
"""

from repro.broker.coordinator import CoordinationMode
from repro.experiments.fig6_partition import Fig6Config, run_fig6


def run_mode(mode: CoordinationMode, acks) -> None:
    config = Fig6Config(
        n_sites=5,
        duration=240.0,
        disconnect_start=80.0,
        disconnect_duration=50.0,
        mode=mode,
        acks=acks,
        seed=3,
    )
    print(f"\n=== coordination mode: {mode.value} (acks={acks}) ===")
    result = run_fig6(config)
    print(f"messages produced: {result.messages_produced}")
    print(f"messages consumed: {result.messages_consumed}")
    print(f"acknowledged but lost: {result.acked_but_lost} {result.lost_topic_breakdown}")
    print(f"leader elections at: {[round(t, 1) for t in result.election_times()]}")
    print(f"topics with latency spikes (>5s): {result.latency_spike_topics(5.0)}")
    print("delivery matrix of the co-located producer ('.'=delivered, 'X'=lost):")
    print(result.delivery.render_text(width=60))


def main() -> None:
    run_mode(CoordinationMode.ZOOKEEPER, acks=1)
    run_mode(CoordinationMode.KRAFT, acks="all")
    print(
        "\nAs in the paper: the ZooKeeper-coordinated cluster silently drops "
        "messages of the partitioned topic, the Raft-based cluster does not."
    )


if __name__ == "__main__":
    main()
