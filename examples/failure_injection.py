#!/usr/bin/env python3
"""Failure analysis: a replicated broker deployment under a network partition.

The study is the registered ``failure-injection`` scenario (the Figure 6
setup at example scale): coordinating sites in a star topology, each running
a broker, a 30 Kbps producer and a consumer; the host of topic A's leader
broker is disconnected for a while.  Both coordination modes run as
independent scenario points, so ``workers=2`` (below, and ``--workers 2``
on the CLI) runs ZooKeeper and KRaft in parallel processes.  The same run
is available from the command line::

    python -m repro run failure-injection --scale default --workers 2

Run with::

    python examples/failure_injection.py
"""

from repro.scenarios import ScenarioParams, run


def report_mode(mode: str, result) -> None:
    print(f"\n=== coordination mode: {mode} ===")
    print(f"messages produced: {result.messages_produced}")
    print(f"messages consumed: {result.messages_consumed}")
    print(f"acknowledged but lost: {result.acked_but_lost} {result.lost_topic_breakdown}")
    print(f"leader elections at: {[round(t, 1) for t in result.election_times()]}")
    print(f"topics with latency spikes (>5s): {result.latency_spike_topics(5.0)}")
    print("delivery matrix of the co-located producer ('.'=delivered, 'X'=lost):")
    print(result.delivery.render_text(width=60))


def main() -> None:
    outcome = run("failure-injection", params=ScenarioParams(scale="default"), workers=2)
    for mode in ("zookeeper", "kraft"):
        report_mode(mode, outcome.result[mode])
    print(
        "\nAs in the paper: the ZooKeeper-coordinated cluster silently drops "
        "messages of the partitioned topic, the Raft-based cluster does not."
    )
    if outcome.problems:
        print("shape problems vs the paper:", outcome.problems)


if __name__ == "__main__":
    main()
