#!/usr/bin/env python3
"""Emulating geo-distributed conditions: the Figure 5 link-delay study.

Cloud deployments place brokers and stream processors across WAN links whose
delay varies widely.  This example sweeps the link delay of each word-count
component and shows which components dominate the end-to-end latency — the
broker and the stream processing engine, exactly as the paper reports.

Run with::

    python examples/geo_distributed_latency.py
"""

from repro.core.visualization import render_series_text
from repro.experiments.fig5_link_delay import Fig5Config, check_shape, run_fig5


def main() -> None:
    config = Fig5Config(
        link_delays_ms=[25, 75, 150],
        components=["producer", "broker", "spe", "consumer"],
        n_documents=25,
        duration=50.0,
    )
    print("Sweeping link delays", config.link_delays_ms, "ms per component...")
    result = run_fig5(config)

    print("\nEnd-to-end latency (seconds):")
    header = "component".rjust(12) + "".join(f"{d:>10.0f}ms" for d in config.link_delays_ms)
    print(header)
    for component in config.components:
        series = result.series(component)
        row = component.rjust(12) + "".join(f"{value:>12.2f}" for value in series)
        print(row)

    print("\nImpact factor (latency at 150 ms / latency at 25 ms):")
    for component in config.components:
        print(f"  {component:>10}: {result.impact_factor(component):.2f}x")

    for component in config.components:
        points = list(zip(config.link_delays_ms, result.series(component)))
        print(render_series_text(points, label=f"{component:>10}"))

    problems = check_shape(result)
    print("\nShape check vs the paper:", "OK" if not problems else problems)


if __name__ == "__main__":
    main()
