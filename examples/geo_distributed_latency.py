#!/usr/bin/env python3
"""Emulating geo-distributed conditions: the Figure 5 link-delay study.

Cloud deployments place brokers and stream processors across WAN links whose
delay varies widely.  The ``geo-latency`` scenario sweeps the link delay of
each word-count component; the (component, delay) grid decomposes into
independent points, so ``workers=4`` shards the whole study across four
processes with identical results.  The same run is available from the
command line::

    python -m repro run geo-latency --scale default --workers 4

Run with::

    python examples/geo_distributed_latency.py
"""

from repro.core.visualization import render_series_text
from repro.scenarios import ScenarioParams, get, run


def main() -> None:
    config = get("geo-latency").build_config(ScenarioParams(scale="default"))
    print("Sweeping link delays", config.link_delays_ms, "ms per component...")
    outcome = run("geo-latency", params=ScenarioParams(scale="default"))
    result = outcome.result

    print("\nEnd-to-end latency (seconds):")
    header = "component".rjust(12) + "".join(f"{d:>10.0f}ms" for d in config.link_delays_ms)
    print(header)
    for component in config.components:
        series = result.series(component)
        row = component.rjust(12) + "".join(f"{value:>12.2f}" for value in series)
        print(row)

    print("\nImpact factor (latency at 150 ms / latency at 25 ms):")
    for component in config.components:
        print(f"  {component:>10}: {result.impact_factor(component):.2f}x")

    for component in config.components:
        points = list(zip(config.link_delays_ms, result.series(component)))
        print(render_series_text(points, label=f"{component:>10}"))

    problems = outcome.problems or []
    print("\nShape check vs the paper:", "OK" if not problems else problems)


if __name__ == "__main__":
    main()
