#!/usr/bin/env python3
"""Domain example: streaming fraud detection with an SVM.

The pipeline (the Table II fraud-detection application: transaction
producer, broker, SVM-scoring SPE job, alert consumer, data store) is the
registered ``fraud-pipeline`` scenario — this script only prints the alert
quality it achieves on a synthetic labelled stream.  The same run is
available from the command line::

    python -m repro run fraud-pipeline --scale default

Run with::

    python examples/fraud_detection_pipeline.py
"""

from repro.scenarios import ScenarioParams, run


def main() -> None:
    outcome = run("fraud-pipeline", params=ScenarioParams(scale="default"))
    data = outcome.result
    print("--- fraud detection pipeline ---")
    print(f"transactions produced : {data['transactions_produced']}")
    print(f"alerts raised         : {data['alerts']}")
    print(f"true positives        : {data['true_positive_alerts']}")
    print(f"frauds in the stream  : {data['actual_frauds_in_stream']}")
    print(f"recall                : {data['recall']:.2f}")
    print(f"precision             : {data['precision']:.2f}")
    print(f"mean alert latency    : {data['mean_alert_latency_s']:.3f}s")
    print(f"median host CPU       : {data['median_cpu_percent']:.1f}%")


if __name__ == "__main__":
    main()
