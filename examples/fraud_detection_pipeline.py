#!/usr/bin/env python3
"""Domain example: streaming fraud detection with an SVM.

Deploys the Table II fraud-detection pipeline: a transaction producer, a
broker, a stream processing job that scores every transaction with a linear
SVM, a consumer of the alert topic, and a data store.  Prints the alert
quality achieved on a synthetic labelled stream.

Run with::

    python examples/fraud_detection_pipeline.py
"""

from repro.apps.fraud_detection import run as run_fraud_detection


def main() -> None:
    result = run_fraud_detection(
        n_transactions=300,
        duration=60.0,
        seed=13,
        fraud_rate=0.1,
        transactions_per_second=30.0,
    )
    print("--- fraud detection pipeline ---")
    print(f"transactions produced : {result.messages_produced}")
    print(f"alerts raised         : {result.extras['alerts']}")
    print(f"true positives        : {result.extras['true_positive_alerts']}")
    print(f"frauds in the stream  : {result.extras['actual_frauds_in_stream']}")
    recall = (
        result.extras["true_positive_alerts"] / result.extras["actual_frauds_in_stream"]
        if result.extras["actual_frauds_in_stream"]
        else 0.0
    )
    precision = (
        result.extras["true_positive_alerts"] / result.extras["alerts"]
        if result.extras["alerts"]
        else 0.0
    )
    print(f"recall                : {recall:.2f}")
    print(f"precision             : {precision:.2f}")
    print(f"mean alert latency    : {result.latency_summary['mean']:.3f}s")
    print(f"median host CPU       : {result.resource_report.median_cpu():.1f}%")


if __name__ == "__main__":
    main()
