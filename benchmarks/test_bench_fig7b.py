"""Figure 7b benchmark: Ocampo et al. traffic-monitoring reproduction."""

from repro.experiments.fig7b_traffic_monitoring import Fig7bConfig, check_shape, run_fig7b
from benchmarks.conftest import report


def test_bench_fig7b_traffic_monitoring(run_once):
    config = Fig7bConfig(user_counts=[20, 40, 60, 80, 100], slots=12)
    result = run_once(run_fig7b, config)
    report(
        "Figure 7b: normalized Spark runtime vs concurrent users",
        [
            {
                "users": n,
                "mean_runtime_s": result.mean_runtime_s[n],
                "normalized": result.normalized[n],
                "input_records": result.input_records[n],
            }
            for n in sorted(result.normalized)
        ],
    )
    problems = check_shape(result)
    assert problems == [], problems
