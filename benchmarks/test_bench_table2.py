"""Table II benchmark: the five example applications deployed on the tool."""

from repro.experiments.table2_applications import Table2Config, check_shape, run_table2
from benchmarks.conftest import report


def test_bench_table2_applications(run_once):
    config = Table2Config(run_pipelines=True, n_items=40, duration=35.0)
    result = run_once(run_table2, config)
    report(
        "Table II: example applications deployed on the reproduction",
        [
            {
                "application": row.application,
                "components": row.components,
                "feature": row.feature,
                "loc": row.loc,
                "consumed": row.messages_consumed,
                "verified": row.verified,
            }
            for row in result.rows
        ],
    )
    problems = check_shape(result)
    assert problems == [], problems
