"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a reduced
but representative scale (the full paper-scale settings are exposed through
each experiment's config dataclass).  Results are printed as the same rows /
series the paper reports, and the qualitative shape is asserted via each
experiment module's ``check_shape``.
"""

from __future__ import annotations

import pytest


def report(title: str, rows) -> None:
    """Print a small table to the benchmark output."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    if isinstance(rows, dict):
        rows = [{"key": key, "value": value} for key, value in rows.items()]
    columns = list(rows[0].keys())
    header = " | ".join(f"{column:>22}" for column in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(" | ".join(f"{_fmt(row[column]):>22}" for column in columns))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
