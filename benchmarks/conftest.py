"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a reduced
but representative scale (the full paper-scale settings are exposed through
each experiment's config dataclass).  Results are printed as the same rows /
series the paper reports, and the qualitative shape is asserted via each
experiment module's ``check_shape``.

Developer notes
---------------
* Everything collected under ``benchmarks/`` is auto-marked ``bench`` (see
  ``pytest_collection_modifyitems`` below), so the quick local tier is
  ``pytest -m "not bench"`` — a few seconds instead of the full run.
* The default ``pytest -x -q`` invocation runs benchmarks too and must stay
  green end-to-end; keep the quick-config scales modest.
* ``test_bench_core_speed.py`` additionally persists raw engine throughput
  and experiment wall-clock numbers to ``BENCH_core.json`` at the repo root,
  building a perf trajectory across PRs — check it in when it changes.
"""

from __future__ import annotations

import pathlib

import pytest

_BENCH_DIR = pathlib.Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    for item in items:
        # This hook sees the whole session's items; only mark ours.
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.bench)


def report(title: str, rows) -> None:
    """Print a small table to the benchmark output."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    if isinstance(rows, dict):
        rows = [{"key": key, "value": value} for key, value in rows.items()]
    columns = list(rows[0].keys())
    header = " | ".join(f"{column:>22}" for column in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(" | ".join(f"{_fmt(row[column]):>22}" for column in columns))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
