"""Figure 9 benchmark: CPU and memory scalability of the emulation host."""

from repro.experiments.fig9_resources import Fig9Config, check_shape, run_fig9
from benchmarks.conftest import report

MB = 1024 * 1024


def test_bench_fig9_resources(run_once):
    config = Fig9Config(
        site_counts=[2, 4, 6, 8, 10],
        buffer_sizes=[16 * MB, 32 * MB],
        duration=60.0,
        warmup=30.0,
    )
    result = run_once(run_fig9, config)

    rows = []
    for buffer_size in config.buffer_sizes:
        medians = result.median_cpu_series(buffer_size)
        peaks = result.peak_memory_series(buffer_size)
        for sites in sorted(medians):
            rows.append(
                {
                    "sites": sites,
                    "buffer": f"{buffer_size // MB} MB",
                    "median_cpu_percent": medians[sites],
                    "peak_memory_percent": peaks[sites],
                }
            )
    report("Figure 9b/9c: median CPU and peak memory vs coordinating sites", rows)

    largest = max(config.site_counts)
    cdf_points = result.cpu_cdf(largest, 32 * MB)
    below_60 = result.reports[(largest, 32 * MB)].fraction_below(60.0)
    report(
        "Figure 9a: CPU CDF summary at the largest scale",
        [
            {"sites": largest, "samples": len(cdf_points), "fraction_below_60pct_cpu": below_60},
        ],
    )
    problems = check_shape(result, config)
    assert problems == [], problems
