"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify how the reproduction's own design
knobs affect behaviour, which is useful both as regression benchmarks and as
evidence that the substrates behave like their real counterparts.
"""

from repro.broker import (
    BrokerCluster,
    ClusterConfig,
    ProducerConfig,
    ProducerRecord,
    TopicConfig,
)
from repro.network.link import LinkConfig
from repro.network.topology import star_topology
from repro.simulation import Simulator
from benchmarks.conftest import report


def _run_cluster_workload(acks, replication, n_messages=60, latency_ms=5.0):
    """Produce a burst of messages and report mean commit latency."""
    sim = Simulator(seed=9)
    network, sites = star_topology(
        sim, 3, link_config=LinkConfig(latency_ms=latency_ms, bandwidth_mbps=100.0)
    )
    cluster = BrokerCluster(network, coordinator_host=sites[0], config=ClusterConfig())
    for site in sites:
        cluster.add_broker(site)
    cluster.add_topic(TopicConfig(name="bench", replication_factor=replication))
    cluster.start(settle_time=2.0)
    producer = cluster.create_producer(
        sites[1], config=ProducerConfig(acks=acks, request_timeout=5.0)
    )
    consumer = cluster.create_consumer(sites[2])
    consumer.subscribe(["bench"])

    def workload():
        yield sim.timeout(10.0)
        producer.start()
        consumer.start()
        for index in range(n_messages):
            producer.send(ProducerRecord(topic="bench", key=index, value=index, size=256))
            yield sim.timeout(0.2)

    sim.process(workload())
    sim.run(until=60.0)
    commit_latencies = [
        report_.acknowledged_at - report_.enqueued_at
        for report_ in producer.reports
        if report_.acknowledged
    ]
    delivery_latencies = consumer.latencies("bench")
    mean = lambda values: sum(values) / len(values) if values else float("nan")  # noqa: E731
    return {
        "acked": len(commit_latencies),
        "mean_commit_latency_s": mean(commit_latencies),
        "mean_delivery_latency_s": mean(delivery_latencies),
    }


def test_bench_ablation_acks_and_replication(run_once):
    """acks=all with more replicas costs commit latency but not delivery correctness."""

    def run_all():
        return {
            ("acks=1", 1): _run_cluster_workload(1, 1),
            ("acks=1", 3): _run_cluster_workload(1, 3),
            ("acks=all", 3): _run_cluster_workload("all", 3),
        }

    results = run_once(run_all)
    report(
        "Ablation: acknowledgement level and replication factor",
        [
            {"acks": key[0], "replication": key[1], **value}
            for key, value in results.items()
        ],
    )
    assert results[("acks=all", 3)]["mean_commit_latency_s"] >= results[("acks=1", 1)][
        "mean_commit_latency_s"
    ]
    assert all(value["acked"] > 0 for value in results.values())


def test_bench_ablation_batch_interval(run_once):
    """Smaller micro-batch intervals reduce SPE-stage latency (at more overhead)."""
    from repro.apps.word_count import create_task
    from repro.core.emulation import Emulation
    from repro.experiments.fig5_link_delay import _end_to_end_latencies
    from repro.workloads.text import generate_documents

    def run_one(batch_interval):
        task = create_task(
            n_documents=20, files_per_second=5.0, batch_interval=batch_interval
        )
        emulation = Emulation(
            task, seed=7, datasets={"documents": generate_documents(20, seed=7)}
        )
        emulation.run(duration=40.0)
        latencies = _end_to_end_latencies(emulation)
        return sum(latencies) / len(latencies) if latencies else float("nan")

    def run_all():
        return {interval: run_one(interval) for interval in (0.25, 1.0, 2.0)}

    results = run_once(run_all)
    report(
        "Ablation: micro-batch interval vs end-to-end latency",
        [
            {"batch_interval_s": interval, "mean_e2e_latency_s": value}
            for interval, value in sorted(results.items())
        ],
    )
    assert results[0.25] < results[2.0]


def test_bench_ablation_routing_under_failure(run_once):
    """Shortest-path re-routing restores connectivity faster than spanning-tree rebuilds."""
    from repro.network.network import Network
    from repro.network.topology import TopologyBuilder

    def run_one(routing):
        sim = Simulator(seed=11)
        builder = TopologyBuilder()
        for name in ("s1", "s2", "s3"):
            builder.add_switch(name)
        builder.add_host("a").add_host("b")
        cfg = LinkConfig(latency_ms=2.0)
        builder.add_link("a", "s1", cfg).add_link("b", "s2", cfg)
        builder.add_link("s1", "s2", cfg).add_link("s2", "s3", cfg).add_link("s1", "s3", cfg)
        network = builder.build(sim, routing=routing)
        network.start(monitor=False)
        delivered = []
        network.host("b").bind(5, lambda pkt: delivered.append(sim.now))

        def scenario():
            network.host("a").send("b", "x", size=50, dst_port=5)
            yield sim.timeout(1.0)
            network.link_between("s1", "s2").set_down()
            network.controller.handle_topology_change()
            network.host("a").send("b", "y", size=50, dst_port=5)

        sim.process(scenario())
        sim.run()
        return {"delivered": len(delivered), "recomputations": network.controller.recomputations}

    def run_all():
        return {routing: run_one(routing) for routing in ("shortest-path", "spanning-tree")}

    results = run_once(run_all)
    report(
        "Ablation: routing algorithm under an inter-switch failure",
        [{"routing": routing, **value} for routing, value in results.items()],
    )
    assert results["shortest-path"]["delivered"] == 2
    assert results["spanning-tree"]["delivered"] == 2
