"""Figure 7a benchmark: Ichinose et al. video-analytics reproduction."""

from repro.experiments.fig7a_video_analytics import Fig7aConfig, check_shape, run_fig7a
from benchmarks.conftest import report


def test_bench_fig7a_video_analytics(run_once):
    config = Fig7aConfig(consumer_counts=[1, 2, 4, 8, 16], n_frames=6000)
    result = run_once(run_fig7a, config)
    report(
        "Figure 7a: frame transfer throughput vs number of consumers",
        [
            {"consumers": n, "throughput_imgs_per_s": result.throughput[n]}
            for n in sorted(result.throughput)
        ],
    )
    problems = check_shape(result, cores=config.host_cores)
    assert problems == [], problems
