"""Figure 5 benchmark: word-count latency vs per-component link delay."""

from repro.experiments.fig5_link_delay import Fig5Config, check_shape, run_fig5
from benchmarks.conftest import report


def test_bench_fig5_link_delay(run_once):
    config = Fig5Config(
        link_delays_ms=[25, 75, 150],
        components=["producer", "broker", "spe", "consumer"],
        n_documents=25,
        duration=50.0,
    )
    result = run_once(run_fig5, config)
    report("Figure 5: end-to-end latency (s) vs link delay", result.rows())
    report(
        "Figure 5: impact factor (latency at 150 ms / latency at 25 ms)",
        [
            {"component": component, "impact": result.impact_factor(component)}
            for component in config.components
        ],
    )
    problems = check_shape(result)
    assert problems == [], problems
