"""Core engine speed trajectory: raw events/sec plus experiment wall-clock.

Unlike the figure benchmarks (which assert the *shape* of paper results),
this module measures how fast the simulator itself runs and persists the
numbers to ``BENCH_core.json`` at the repo root, so future PRs have a perf
trajectory to beat:

* ``call_later`` dispatch rate — the zero-allocation fast path used by the
  network data plane (one heap entry per packet delivery);
* process/timeout rate — the generator-based slow path;
* packet round-trip rate through the full host->switch->host data plane;
* wall-clock of two packet-heavy experiments at their quick-test scale
  (fig6 partition, fig7b traffic monitoring).

Assertions are loose sanity floors (hardware varies); the JSON file carries
the actual trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.broker.coordinator import CoordinationMode
from repro.experiments.fig6_partition import Fig6Config, run_fig6
from repro.experiments.fig7b_traffic_monitoring import Fig7bConfig, run_fig7b
from repro.network import LinkConfig, Network
from repro.simulation import Simulator

from benchmarks.conftest import report

BENCH_FILE = Path(__file__).resolve().parents[1] / "BENCH_core.json"

_results: dict = {}


def _record(name: str, value: float) -> float:
    _results[name] = round(value, 2)
    return value


def test_bench_call_later_dispatch_rate():
    n = 200_000
    sim = Simulator(seed=1)
    counter = [0]

    def tick():
        counter[0] += 1
        if counter[0] < n:
            sim.call_later(0.001, tick)

    sim.call_later(0.001, tick)
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    rate = _record("call_later_events_per_sec", n / elapsed)
    report("call_later dispatch", {"events": n, "seconds": elapsed, "events/sec": rate})
    assert counter[0] == n
    assert rate > 50_000


def test_bench_process_timeout_rate():
    n = 100_000
    sim = Simulator(seed=1)

    def looper():
        for _ in range(n):
            yield sim.timeout(0.001)

    sim.process(looper())
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    rate = _record("process_timeout_events_per_sec", n / elapsed)
    report("process/timeout loop", {"events": n, "seconds": elapsed, "events/sec": rate})
    assert rate > 20_000


def test_bench_packet_round_trips():
    """Full data-plane path: host -> link -> switch -> link -> host and back."""
    n = 20_000
    sim = Simulator(seed=1)
    net = Network(sim)
    net.add_switch("s1")
    net.add_host("h1")
    net.add_host("h2")
    cfg = LinkConfig(latency_ms=1.0, bandwidth_mbps=1000.0)
    net.add_link("h1", "s1", cfg)
    net.add_link("h2", "s1", cfg)
    net.start(monitor=False)
    done = [0]

    def pong(pkt):
        net.host("h2").send("h1", "pong", size=64, dst_port=2)

    def ping(pkt):
        done[0] += 1
        if done[0] < n:
            net.host("h1").send("h2", "ping", size=64, dst_port=1)

    net.host("h2").bind(1, pong)
    net.host("h1").bind(2, ping)
    net.host("h1").send("h2", "ping", size=64, dst_port=1)
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    rate = _record("packet_round_trips_per_sec", n / elapsed)
    _record("packet_events_per_sec", sim.processed_events / elapsed)
    report(
        "packet round-trips",
        {"round_trips": n, "seconds": elapsed, "round_trips/sec": rate},
    )
    assert done[0] == n
    assert rate > 1_000


def test_bench_fig6_wall_clock():
    config = Fig6Config(
        n_sites=4,
        duration=150.0,
        disconnect_start=50.0,
        disconnect_duration=35.0,
        mode=CoordinationMode.ZOOKEEPER,
        acks=1,
        seed=3,
    )
    started = time.perf_counter()
    result = run_fig6(config)
    elapsed = time.perf_counter() - started
    _record("fig6_quick_wall_seconds", elapsed)
    report(
        "fig6 partition (quick scale)",
        {"wall_seconds": elapsed, "messages_produced": result.messages_produced},
    )
    assert result.messages_produced > 100


def test_bench_fig7b_wall_clock():
    config = Fig7bConfig(user_counts=[20, 60], slots=10)
    started = time.perf_counter()
    result = run_fig7b(config)
    elapsed = time.perf_counter() - started
    _record("fig7b_quick_wall_seconds", elapsed)
    report(
        "fig7b traffic monitoring (quick scale)",
        {"wall_seconds": elapsed, "input_records_60u": result.input_records.get(60, 0)},
    )
    assert all(runtime > 0 for runtime in result.mean_runtime_s.values())


def test_bench_persist_trajectory():
    """Runs last in the module: writes the collected numbers to BENCH_core.json."""
    assert _results, "earlier benchmarks populated no results"
    history = []
    if BENCH_FILE.exists():
        try:
            history = json.loads(BENCH_FILE.read_text()).get("runs", [])
        except (ValueError, AttributeError):
            history = []
    history.append({"unix_time": int(time.time()), "metrics": dict(_results)})
    BENCH_FILE.write_text(
        json.dumps({"latest": dict(_results), "runs": history[-20:]}, indent=2) + "\n"
    )
    report("BENCH_core.json", _results)
