"""Core engine speed trajectory: raw events/sec plus experiment wall-clock.

Unlike the figure benchmarks (which assert the *shape* of paper results),
this module measures how fast the simulator itself runs and persists the
numbers to ``BENCH_core.json`` at the repo root, so future PRs have a perf
trajectory to beat:

* ``call_later`` dispatch rate — the zero-allocation fast path used by the
  network data plane (one heap entry per packet delivery);
* process/timeout rate — the generator-based slow path;
* packet round-trip rate through the full host->switch->host data plane;
* end-to-end produce->consume record throughput through the batch-native
  broker wire path (client send -> broker append -> fetch -> header decode),
  plus the sharded variant (4 partitions / 4-member consumer group) and the
  partition-scaling ratio of their simulated drain windows, plus the
  idempotent-producer variant (sequence stamping + broker dedup table) and
  its overhead ratio versus the plain reported-send path, plus the
  transactional variant (1000-record commits drained read_committed) and
  its overhead ratio versus the idempotent rate;
* SPE drain throughput with a map->filter->reduce_by_key pipeline attached,
  once on the columnar operator plane (``spe_vectorized_records_per_sec``,
  regression-gated) and once pinned to the per-record reference path
  (``spe_record_path_records_per_sec``), with the speedup ratio asserted
  >= 1.5x, plus a windowed-reduce kernel micro-bench (columnar vs record);
* wall-clock of two packet-heavy experiments at their quick-test scale
  (fig6 partition, fig7b traffic monitoring) *and* at paper scale
  (fig6: 10 sites / 600 s; fig7b: the full 20-100-user sweep).

Assertions are loose sanity floors (hardware varies); the JSON file carries
the actual trajectory.  ``test_bench_regression_gate`` additionally fails
the bench run when a throughput metric drops more than 20% below the best
entry ever recorded on this machine's trajectory.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.broker.cluster import BrokerCluster, ClusterConfig
from repro.broker.consumer import ConsumerConfig
from repro.broker.coordinator import CoordinationMode
from repro.broker.message import ProducerRecord
from repro.broker.producer import ProducerConfig
from repro.broker.segment import LogStorageConfig, default_log_backend
from repro.broker.topic import TopicConfig
from repro.engine import StreamingConfig, StreamingContext
from repro.experiments.fig6_partition import Fig6Config, run_fig6
from repro.experiments.fig7b_traffic_monitoring import Fig7bConfig, run_fig7b
from repro.network import LinkConfig, Network
from repro.network.topology import one_big_switch
from repro.simulation import Simulator

from benchmarks.conftest import report

# The trajectory/gate baselines were measured on the flat memory log layout;
# running the whole module under ``--log-backend=segments`` would record
# incomparable numbers into BENCH_core.json.  (The segmented-storage benches
# below configure their logs explicitly and run on either backend.)
pytestmark = pytest.mark.skipif(
    default_log_backend() == "segments",
    reason="bench trajectory baselines are pinned to the memory log backend",
)

BENCH_FILE = Path(__file__).resolve().parents[1] / "BENCH_core.json"

#: Simulated drain windows of the produce->consume arms (filled by the
#: throughput benches; the partition-scaling ratio compares them).
_sim_drains: dict = {"1part": {}, "4part": {}}

#: Fraction of the best recorded value a throughput metric may drop to
#: before the regression gate fails the bench run (>20% drop = failure).
REGRESSION_FLOOR = 0.8

_results: dict = {}


def _record(name: str, value: float) -> float:
    _results[name] = round(value, 2)
    return value


def _machine_id() -> str:
    """Coarse machine fingerprint: throughput numbers are only comparable
    against runs from the same hardware, so bests are tracked per machine."""
    return f"{platform.node()}/{os.cpu_count()}cpu"


def _call_later_rate(n: int = 200_000) -> float:
    """Pure-CPU event-dispatch rate (also the session-health sentinel)."""
    sim = Simulator(seed=1)
    counter = [0]

    def tick():
        counter[0] += 1
        if counter[0] < n:
            sim.call_later(0.001, tick)

    sim.call_later(0.001, tick)
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    assert counter[0] == n
    return n / elapsed


def test_bench_call_later_dispatch_rate():
    n = 200_000
    rate = _record("call_later_events_per_sec", _call_later_rate(n))
    report("call_later dispatch", {"events": n, "events/sec": rate})
    assert rate > 50_000


def test_bench_process_timeout_rate():
    n = 100_000
    sim = Simulator(seed=1)

    def looper():
        for _ in range(n):
            yield sim.timeout(0.001)

    sim.process(looper())
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    rate = _record("process_timeout_events_per_sec", n / elapsed)
    report("process/timeout loop", {"events": n, "seconds": elapsed, "events/sec": rate})
    assert rate > 20_000


def test_bench_packet_round_trips():
    """Full data-plane path: host -> link -> switch -> link -> host and back."""
    n = 20_000
    sim = Simulator(seed=1)
    net = Network(sim)
    net.add_switch("s1")
    net.add_host("h1")
    net.add_host("h2")
    cfg = LinkConfig(latency_ms=1.0, bandwidth_mbps=1000.0)
    net.add_link("h1", "s1", cfg)
    net.add_link("h2", "s1", cfg)
    net.start(monitor=False)
    done = [0]

    def pong(pkt):
        net.host("h2").send("h1", "pong", size=64, dst_port=2)

    def ping(pkt):
        done[0] += 1
        if done[0] < n:
            net.host("h1").send("h2", "ping", size=64, dst_port=1)

    net.host("h2").bind(1, pong)
    net.host("h1").bind(2, ping)
    net.host("h1").send("h2", "ping", size=64, dst_port=1)
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    rate = _record("packet_round_trips_per_sec", n / elapsed)
    _record("packet_events_per_sec", sim.processed_events / elapsed)
    report(
        "packet round-trips",
        {"round_trips": n, "seconds": elapsed, "round_trips/sec": rate},
    )
    assert done[0] == n
    assert rate > 1_000


def _produce_consume_once(
    n_records: int,
    payload: str,
    fire_and_forget: bool = False,
    partitions: int = 1,
    group_members: int = 1,
    idempotence: bool = False,
    transactional: bool = False,
    sim_stats: dict = None,
) -> float:
    """One produce->consume run; returns the wall seconds until the last
    record is consumed (idle post-delivery broker loops excluded).

    With ``partitions``/``group_members`` > 1 the topic is sharded and a
    consumer group (one member per host) splits it; production then waits for
    the group to stabilize first, and the drain window (production start to
    last record consumed, in *simulated* seconds) lands in ``sim_stats`` —
    the partition-scaling measurement.
    """
    sim = Simulator(seed=7)
    sinks = ["sink"] if group_members == 1 else [f"sink{i}" for i in range(group_members)]
    network = one_big_switch(
        sim,
        ["source", "broker"] + sinks,
        default_config=LinkConfig(latency_ms=0.5, bandwidth_mbps=10_000.0),
    )
    cluster = BrokerCluster(network, coordinator_host="broker", config=ClusterConfig())
    cluster.add_broker("broker")
    cluster.add_topic(
        TopicConfig(name="events", partitions=partitions, replication_factor=1)
    )
    cluster.start(settle_time=1.0)
    producer = cluster.create_producer(
        "source",
        config=ProducerConfig(
            linger=0.005,
            buffer_memory=512 * 1024 * 1024,
            idempotence=idempotence,
            transactional_id="bench-tx" if transactional else None,
        ),
    )
    consumer_config = ConsumerConfig(
        poll_interval=0.01,
        max_records_per_fetch=5000,
        keep_payloads=False,
        group="bench" if group_members > 1 else None,
        isolation_level="read_committed" if transactional else "read_uncommitted",
    )
    consumers = []
    for host in sinks:
        consumer = cluster.create_consumer(host, config=consumer_config)
        consumer.subscribe(["events"])
        consumers.append(consumer)
    done = sim.event()
    send = producer.send_noreport if fire_and_forget else producer.send

    def drive():
        yield sim.timeout(2.0)
        producer.start()
        for consumer in consumers:
            consumer.start()
        if group_members > 1:
            # Let every member join and sync before traffic flows, so the
            # drain window measures steady-state sharded consumption.
            yield sim.timeout(3.0)
        drain_started = sim.now
        if transactional:
            producer.begin_transaction()
        for i in range(n_records):
            send(
                ProducerRecord(topic="events", key=i, value=payload, size=112)
            )
            if transactional and i % 1000 == 999:
                # 1000-record atomic commits: marker round-trips and LSO
                # advancement are part of the measured path.
                yield from producer.commit_transaction()
                if i < n_records - 1:
                    producer.begin_transaction()
            if i % 200 == 199:
                yield sim.timeout(0.001)
        if transactional and producer.in_transaction():
            yield from producer.commit_transaction()
        while sum(consumer.records_consumed for consumer in consumers) < n_records:
            yield sim.timeout(0.05)
        if sim_stats is not None:
            sim_stats["drain_sim_seconds"] = sim.now - drain_started
        producer.stop()
        for consumer in consumers:
            consumer.stop()
        done.succeed()

    sim.process(drive())
    started = time.perf_counter()
    sim.run(until=done)
    elapsed = time.perf_counter() - started
    assert sum(consumer.records_consumed for consumer in consumers) == n_records
    assert sum(consumer.bytes_consumed for consumer in consumers) == n_records * 112
    return elapsed


def _stable_best_seconds(
    n_records: int,
    payload: str,
    fire_and_forget: bool = False,
    partitions: int = 1,
    group_members: int = 1,
    idempotence: bool = False,
    transactional: bool = False,
    sim_stats: dict = None,
) -> float:
    """Best-of-three stabilized measurement of one produce->consume setup.

    Each run gets a collected heap and a paused GC (earlier suite modules
    leave enough garbage to skew allocation-heavy benches); both throughput
    metrics must measure under this identical protocol.
    """
    import gc

    best = float("inf")
    for _ in range(3):
        gc.collect()
        gc.disable()
        try:
            best = min(
                best,
                _produce_consume_once(
                    n_records,
                    payload,
                    fire_and_forget=fire_and_forget,
                    partitions=partitions,
                    group_members=group_members,
                    idempotence=idempotence,
                    transactional=transactional,
                    sim_stats=sim_stats,
                ),
            )
        finally:
            gc.enable()
    return best


def test_bench_produce_consume_throughput():
    """End-to-end record throughput: producer client -> broker -> consumer.

    One producer streams records into a single-partition topic while a
    consumer (header-accounting fast path) drains it.  This exercises the
    whole batch-native record plane: accumulator drain into one
    ``RecordBatch`` per flush, whole-batch log append, batch fetch replies
    and O(1) consumer decode.  This metric feeds the regression gate, so
    the measurement is stabilized (see ``_stable_best_seconds``).
    """
    n_records = 50_000
    payload = "x" * 100
    best = _stable_best_seconds(n_records, payload, sim_stats=_sim_drains["1part"])
    rate = _record("produce_consume_records_per_sec", n_records / best)
    report(
        "produce->consume throughput",
        {"records": n_records, "seconds": best, "records/sec": rate},
    )
    assert rate > 5_000


def test_bench_produce_consume_noreport_throughput():
    """Fire-and-forget send delta versus the reported path.

    ``Producer.send_noreport`` skips the per-record future / DeliveryReport
    / sequence allocation; this bench records its end-to-end rate next to
    the reported-send rate so the client-overhead delta is visible in the
    trajectory.  Runs right after the reported-path bench (same stabilized
    protocol) so the two rates are comparable.
    """
    n_records = 50_000
    payload = "x" * 100
    best = _stable_best_seconds(n_records, payload, fire_and_forget=True)
    rate = _record("produce_consume_noreport_records_per_sec", n_records / best)
    reported = _results.get("produce_consume_records_per_sec", 0.0)
    report(
        "produce->consume throughput (fire-and-forget)",
        {
            "records": n_records,
            "seconds": best,
            "records/sec": rate,
            "vs_reported_send": f"{rate / reported:.2f}x" if reported else "n/a",
        },
    )
    assert rate > 5_000


def test_bench_produce_consume_idempotent_throughput():
    """Exactly-once produce path: sequence stamping + broker dedup overhead.

    Same stabilized protocol as the reported-send bench, with
    ``ProducerConfig(idempotence=True)``: one init_producer_id handshake at
    start, per-batch identity stamping at drain time, and the leader's
    dedup-table check per produce.  Records the end-to-end rate
    (``produce_consume_idempotent_records_per_sec``, regression-gated) and
    the overhead ratio versus the plain reported-send rate measured just
    before it — the cost of exactly-once on a clean (fault-free) run.
    """
    n_records = 50_000
    payload = "x" * 100
    best = _stable_best_seconds(n_records, payload, idempotence=True)
    rate = _record("produce_consume_idempotent_records_per_sec", n_records / best)
    reported = _results.get("produce_consume_records_per_sec", 0.0)
    ratio = reported / rate if rate else 0.0
    if reported:
        # Plain rate / idempotent rate: 1.0 = free, higher = costlier.
        _record("produce_consume_idempotence_overhead_ratio", ratio)
    report(
        "produce->consume throughput (idempotent producer)",
        {
            "records": n_records,
            "seconds": best,
            "records/sec": rate,
            "overhead_vs_reported": f"{ratio:.3f}x" if reported else "n/a",
        },
    )
    assert rate > 5_000
    # The ratio itself is reported-but-ungated: it compares two stabilized
    # wall-clock measurements taken minutes apart, which machine noise alone
    # can push past any tight budget (same reasoning as the other wall-clock
    # comparisons in this trajectory).  A genuine dedup-table tax on the
    # idempotent path is caught by the per-machine 0.8x regression gate on
    # ``produce_consume_idempotent_records_per_sec`` below.


def test_bench_produce_consume_txn_throughput():
    """Transactional produce path: atomic 1000-record commits, read_committed.

    Same stabilized protocol as the idempotent bench, with a transactional id:
    the producer groups its stream into 1000-record transactions (each commit
    is an end_txn round-trip plus a COMMIT marker append that advances the
    LSO) and the consumer drains with ``read_committed`` isolation (LSO-capped
    fetches + aborted-range filtering on the hot decode path).  Records the
    end-to-end rate (``produce_consume_txn_records_per_sec``, regression-
    gated) and the overhead ratio versus the idempotent rate measured just
    before it — the incremental cost of atomicity on top of exactly-once.
    """
    n_records = 50_000
    payload = "x" * 100
    best = _stable_best_seconds(n_records, payload, transactional=True)
    rate = _record("produce_consume_txn_records_per_sec", n_records / best)
    idempotent = _results.get("produce_consume_idempotent_records_per_sec", 0.0)
    ratio = idempotent / rate if rate else 0.0
    if idempotent:
        # Idempotent rate / transactional rate: 1.0 = free, higher = costlier.
        _record("produce_consume_txn_overhead_ratio", ratio)
    report(
        "produce->consume throughput (transactional, read_committed)",
        {
            "records": n_records,
            "seconds": best,
            "records/sec": rate,
            "overhead_vs_idempotent": f"{ratio:.3f}x" if idempotent else "n/a",
        },
    )
    assert rate > 5_000
    # Like the idempotence ratio above, the overhead ratio is reported-but-
    # ungated; real slowdowns are caught by the per-machine regression gate
    # on ``produce_consume_txn_records_per_sec``.


def test_bench_produce_consume_4part_group_throughput():
    """Sharded data plane: 4 partitions drained by a 4-member consumer group.

    Records the wall-clock end-to-end rate (``produce_consume_4part_records_
    per_sec``, same stabilized protocol as the 1-partition bench) and the
    *partition-scaling ratio*: the simulated drain throughput of the sharded
    arm versus the single-partition arm.  Sharding parallelizes consumer CPU
    across hosts in simulated time, so the ratio must clear 1.2x — unlike
    the wall-clock sweep gate, simulated time is deterministic and host-
    independent, so the assertion applies wherever both arms ran.
    """
    n_records = 50_000
    payload = "x" * 100
    best = _stable_best_seconds(
        n_records,
        payload,
        partitions=4,
        group_members=4,
        sim_stats=_sim_drains["4part"],
    )
    rate = _record("produce_consume_4part_records_per_sec", n_records / best)
    drain_1p = _sim_drains["1part"].get("drain_sim_seconds")
    drain_4p = _sim_drains["4part"].get("drain_sim_seconds")
    ratio = (drain_1p / drain_4p) if drain_1p and drain_4p else None
    if ratio is not None:
        # Only meaningful when the 1-partition bench ran in this session;
        # never persist a placeholder into the trajectory.
        _record("produce_consume_partition_scaling_ratio", ratio)
    report(
        "produce->consume throughput (4 partitions, 4-member group)",
        {
            "records": n_records,
            "seconds": best,
            "records/sec": rate,
            "drain_sim_s_1part": drain_1p,
            "drain_sim_s_4part": drain_4p,
            "partition_scaling_ratio": f"{ratio:.2f}x" if ratio else "n/a",
        },
    )
    assert rate > 5_000
    if ratio is not None:
        assert ratio > 1.2, (
            f"expected the 4-partition group drain to beat the single-partition "
            f"arm by >1.2x in simulated time, got {ratio:.2f}x"
        )


def _spe_pipeline_once(n_records: int, payload: str, vectorized: bool) -> float:
    """One SPE drain run; returns the wall seconds of fetch -> operators -> sink.

    The topic is pre-populated *outside* the timed window (production and log
    appends are identical on both engine paths and would only dilute the
    comparison); the timed window opens with the context started and measures
    the consumer fetch slices flowing through a map -> filter ->
    reduce_by_key pipeline into a header-accounting memory sink.  The
    simulated timeline is identical for either ``vectorized`` value — only
    the wall-clock differs.
    """
    sim = Simulator(seed=7)
    network = one_big_switch(
        sim,
        ["source", "broker", "spe"],
        default_config=LinkConfig(latency_ms=0.5, bandwidth_mbps=10_000.0),
    )
    cluster = BrokerCluster(network, coordinator_host="broker", config=ClusterConfig())
    cluster.add_broker("broker")
    cluster.add_topic(TopicConfig(name="events", partitions=1, replication_factor=1))
    cluster.start(settle_time=1.0)
    producer = cluster.create_producer(
        "source",
        config=ProducerConfig(linger=0.005, buffer_memory=512 * 1024 * 1024),
    )
    ctx = StreamingContext(
        network.host("spe"),
        config=StreamingConfig(batch_interval=0.25, vectorized=vectorized),
        cluster=cluster,
    )
    (
        ctx.kafka_stream(
            ["events"],
            consumer_config=ConsumerConfig(
                poll_interval=0.01, max_records_per_fetch=5000, keep_payloads=False
            ),
        )
        .map(lambda value: value)
        .filter(lambda value: value is not None)
        .reduce_by_key(lambda a, b: b)
        .to_memory(name="spe-bench-sink", keep_records=False)
    )
    produced = sim.event()
    done = sim.event()

    def produce_phase():
        yield sim.timeout(2.0)
        producer.start()
        for i in range(n_records):
            producer.send_noreport(
                ProducerRecord(topic="events", key=i % 16, value=payload, size=112)
            )
            if i % 500 == 499:
                yield sim.timeout(0.001)
        # Let the accumulator flush the tail into the log before the timed
        # window opens (consumers start at offset 0, nothing is missed).
        yield sim.timeout(1.0)
        produced.succeed()

    def drain_phase():
        yield produced
        ctx.start()
        while ctx.total_input_records() < n_records:
            yield sim.timeout(0.05)
        ctx.stop()
        done.succeed()

    sim.process(produce_phase())
    sim.process(drain_phase())
    sim.run(until=produced)  # untimed: production + log appends
    started = time.perf_counter()
    sim.run(until=done)  # timed: fetch slices -> operator plane -> sink
    elapsed = time.perf_counter() - started
    assert ctx.total_input_records() == n_records
    return elapsed


def _spe_stable_best_seconds(n_records: int, payload: str, vectorized: bool) -> float:
    """Best-of-three stabilized SPE drain (same GC protocol as the others)."""
    import gc

    best = float("inf")
    for _ in range(3):
        gc.collect()
        gc.disable()
        try:
            best = min(best, _spe_pipeline_once(n_records, payload, vectorized))
        finally:
            gc.enable()
    return best


def test_bench_spe_vectorized_throughput():
    """Columnar SPE drain rate with map->filter->reduce_by_key attached.

    The tentpole metric of the vectorized operator plane: fetch slices adopt
    the broker's column slices zero-copy, kernels run whole-column, and the
    memory sink counts headers without ever materializing a StreamRecord.
    Regression-gated (stabilized best-of-three, session-health-scaled floor
    like every other gated throughput).
    """
    n_records = 50_000
    payload = "x" * 100
    best = _spe_stable_best_seconds(n_records, payload, vectorized=True)
    rate = _record("spe_vectorized_records_per_sec", n_records / best)
    report(
        "SPE drain throughput (columnar plane, map->filter->reduce)",
        {"records": n_records, "seconds": best, "records/sec": rate},
    )
    assert rate > 5_000


def test_bench_spe_record_path_throughput():
    """The identical drain pinned to the per-record reference path.

    Runs right after the columnar bench under the same stabilized protocol,
    so the pair is comparable; records the record-path rate and the columnar
    speedup ratio, and asserts the vectorized plane clears 1.5x — the
    ratio compares two back-to-back stabilized measurements of the same
    deterministic simulation, so it is far less noise-prone than
    cross-session wall-clock comparisons.
    """
    n_records = 50_000
    payload = "x" * 100
    best = _spe_stable_best_seconds(n_records, payload, vectorized=False)
    rate = _record("spe_record_path_records_per_sec", n_records / best)
    vectorized = _results.get("spe_vectorized_records_per_sec", 0.0)
    ratio = vectorized / rate if rate else 0.0
    if vectorized:
        _record("spe_vectorized_speedup_ratio", ratio)
    report(
        "SPE drain throughput (record reference path)",
        {
            "records": n_records,
            "seconds": best,
            "records/sec": rate,
            "columnar_speedup": f"{ratio:.2f}x" if vectorized else "n/a",
        },
    )
    assert rate > 2_000
    if vectorized:
        assert ratio >= 1.5, (
            f"expected the columnar plane to beat the record path by >=1.5x, "
            f"got {ratio:.2f}x ({vectorized:.0f} vs {rate:.0f} records/sec)"
        )


def test_bench_spe_windowed_reduce_kernels():
    """Windowed reduce micro-bench: columnar kernels vs record operators.

    Pure operator-plane measurement (no broker, no network): a 30-batch
    stream of keyed batches flows through window(5.0) -> reduce_by_key on
    both paths.  The window re-emits its whole buffer every batch, so this
    is the amplification-heavy shape where whole-column concatenation pays
    off most.  Reported-but-ungated (micro-rates are noisier than the
    stabilized end-to-end benches).
    """
    import gc

    from repro.engine.columns import ColumnBatch
    from repro.engine.operators import ReduceByKeyOperator, WindowOperator
    from repro.engine.records import StreamRecord

    n_batches = 30
    batch_size = 2_000
    batches = [
        [
            StreamRecord(
                value=index,
                key=f"k{index % 32}",
                event_time=float(batch_index),
                ingest_time=float(batch_index),
                size=112,
            )
            for index in range(batch_size)
        ]
        for batch_index in range(n_batches)
    ]
    column_batches = [ColumnBatch.from_records(batch) for batch in batches]
    total = n_batches * batch_size

    def record_pass() -> float:
        window = WindowOperator(5.0)
        reduce_op = ReduceByKeyOperator(lambda a, b: b)
        started = time.perf_counter()
        for now, batch in enumerate(batches):
            reduce_op.apply(window.apply(list(batch), float(now)), float(now))
        return time.perf_counter() - started

    def columnar_pass() -> float:
        window = WindowOperator(5.0)
        reduce_op = ReduceByKeyOperator(lambda a, b: b)
        started = time.perf_counter()
        for now, cols in enumerate(column_batches):
            reduce_op.apply_columns(window.apply_columns(cols, float(now)), float(now))
        return time.perf_counter() - started

    gc.collect()
    gc.disable()
    try:
        record_seconds = min(record_pass() for _ in range(3))
        columnar_seconds = min(columnar_pass() for _ in range(3))
    finally:
        gc.enable()
    record_rate = _record("spe_window_reduce_record_records_per_sec", total / record_seconds)
    columnar_rate = _record(
        "spe_window_reduce_columnar_records_per_sec", total / columnar_seconds
    )
    speedup = columnar_rate / record_rate if record_rate else 0.0
    _record("spe_window_reduce_columnar_speedup", speedup)
    report(
        "windowed reduce kernels (window(5.0) -> reduce_by_key, 30 batches)",
        {
            "records": total,
            "record_path_records/sec": record_rate,
            "columnar_records/sec": columnar_rate,
            "columnar_speedup": f"{speedup:.2f}x",
        },
    )
    # The window's re-emission keeps most of the cost in buffer concatenation
    # on both paths, so the kernel win here is modest; only guard against the
    # columnar pass actually *losing* (with margin for micro-bench noise).
    assert columnar_rate > record_rate * 0.85, (
        f"columnar windowed reduce materially slower than the record path "
        f"({columnar_rate:.0f} vs {record_rate:.0f} records/sec)"
    )


def test_bench_fig6_wall_clock():
    config = Fig6Config(
        n_sites=4,
        duration=150.0,
        disconnect_start=50.0,
        disconnect_duration=35.0,
        mode=CoordinationMode.ZOOKEEPER,
        acks=1,
        seed=3,
    )
    started = time.perf_counter()
    result = run_fig6(config)
    elapsed = time.perf_counter() - started
    _record("fig6_quick_wall_seconds", elapsed)
    report(
        "fig6 partition (quick scale)",
        {"wall_seconds": elapsed, "messages_produced": result.messages_produced},
    )
    assert result.messages_produced > 100


def test_bench_fig7b_wall_clock():
    config = Fig7bConfig(user_counts=[20, 60], slots=10)
    started = time.perf_counter()
    result = run_fig7b(config)
    elapsed = time.perf_counter() - started
    _record("fig7b_quick_wall_seconds", elapsed)
    report(
        "fig7b traffic monitoring (quick scale)",
        {"wall_seconds": elapsed, "input_records_60u": result.input_records.get(60, 0)},
    )
    assert all(runtime > 0 for runtime in result.mean_runtime_s.values())


def test_bench_fig6_paper_scale():
    """Figure 6 at the paper's full scale: 10 sites, 600 s, ~20% disconnect."""
    config = Fig6Config(
        n_sites=10,
        duration=600.0,
        disconnect_start=180.0,
        disconnect_duration=120.0,
        mode=CoordinationMode.ZOOKEEPER,
        acks=1,
        seed=3,
    )
    started = time.perf_counter()
    result = run_fig6(config)
    elapsed = time.perf_counter() - started
    _record("fig6_paper_wall_seconds", elapsed)
    report(
        "fig6 partition (paper scale, 10 sites / 600 s)",
        {"wall_seconds": elapsed, "messages_produced": result.messages_produced},
    )
    assert result.messages_produced > 10_000
    # The paper's qualitative claim holds at full scale too: ZooKeeper mode
    # silently loses acknowledged topic-A records during the partition.
    assert result.acked_but_lost > 0
    assert result.loss_only_on_topic_a()


def test_bench_fig7b_paper_scale():
    """Figure 7b with the paper's full user sweep (20-100 users)."""
    config = Fig7bConfig()  # defaults = the paper sweep
    started = time.perf_counter()
    result = run_fig7b(config)
    elapsed = time.perf_counter() - started
    _record("fig7b_paper_wall_seconds", elapsed)
    report(
        "fig7b traffic monitoring (paper sweep)",
        {"wall_seconds": elapsed, "input_records_100u": result.input_records.get(100, 0)},
    )
    series = result.normalized_series()
    assert series[0] == 1.0
    assert series[-1] > 1.0


@pytest.mark.sweep
def test_bench_fig7b_parallel_sweep_speedup():
    """Process-parallel sweep vs sequential: identical results, wall-clock win.

    Runs the full fig7b user sweep through the scenario Sweep API twice —
    ``workers=1`` and ``workers=4`` — asserts the results are bitwise
    identical (the scenario determinism contract), and records the speedup
    as ``fig7b_parallel_sweep_speedup`` in the trajectory.  The >1.5x
    speedup assertion only applies where it is physically meaningful: at
    least as many cores as workers (4) *and* fork-start worker pools (under
    spawn, each worker re-imports the package, which can eat a sweep this
    size whole); elsewhere the metric is recorded but not gated.
    """
    import multiprocessing

    from repro.scenarios import ScenarioParams, Sweep
    from repro.experiments.fig7b_traffic_monitoring import Fig7bConfig
    from repro.workloads import pregenerated
    from repro.workloads.nettraffic import generate_traffic_batches

    user_counts = [20, 40, 60, 80, 100]
    slots = 40  # double the paper's slot count: a wide, pool-noise-proof window

    # Warm the workload memo for every point *before* timing either pass.
    # Otherwise the sequential pass (first) absorbs the one-time synthesis
    # cost while the fork-started parallel pass inherits the warm cache,
    # biasing the speedup.  Must mirror run_single's pregenerated() call.
    defaults = Fig7bConfig()
    for n_users in user_counts:
        pregenerated(
            generate_traffic_batches,
            n_users=n_users,
            duration_s=slots,
            packets_per_user_per_s=defaults.packets_per_user_per_s,
            seed=defaults.seed,
        )

    def run_sweep(workers: int):
        sweep = Sweep(
            "fig7b", params=ScenarioParams(scale="default", overrides={"slots": slots})
        ).over("user_counts", user_counts)
        started = time.perf_counter()  # workloads pre-warmed above: pure sim time
        outcome = sweep.run(workers=workers)
        elapsed = time.perf_counter() - started
        return [result.result for result in outcome.results()], elapsed

    sequential_results, sequential_s = run_sweep(workers=1)
    parallel_results, parallel_s = run_sweep(workers=4)
    assert parallel_results == sequential_results, (
        "parallel sweep must be bitwise-identical to sequential"
    )
    speedup = sequential_s / parallel_s if parallel_s else 0.0
    _record("fig7b_parallel_sweep_speedup", speedup)
    _record("fig7b_parallel_sweep_sequential_seconds", sequential_s)
    _record("fig7b_parallel_sweep_parallel_seconds", parallel_s)
    cores = os.cpu_count() or 1
    start_method = multiprocessing.get_start_method()
    report(
        "fig7b parallel sweep (5 points, workers=4)",
        {
            "sequential_s": sequential_s,
            "parallel_s": parallel_s,
            "speedup": speedup,
            "host_cores": cores,
            "start_method": start_method,
        },
    )
    if cores >= 4 and start_method == "fork":
        assert speedup > 1.5, (
            f"expected >1.5x sweep speedup at 4 workers on {cores} cores, "
            f"got {speedup:.2f}x"
        )


def _build_cold_tier_log(tmp_dir: str, n_records: int, payload: str,
                         segment_records: int = 2048):
    """A segmented log with every record sealed into cold-tier files,
    carrying producer columns so recovery rebuilds the dedup table too."""
    from repro.broker.batch import RecordBatch
    from repro.broker.log import PartitionLog

    storage = LogStorageConfig(
        segment_records=segment_records, segment_dir=tmp_dir
    )
    log = PartitionLog("bench", 0, storage=storage, file_tag="b0")
    size = len(payload)
    batch_records = 512
    sequence = 0
    for start in range(0, n_records, batch_records):
        count = min(batch_records, n_records - start)
        batch = RecordBatch(
            "bench", 0, producer_id=1, producer_epoch=0, base_sequence=sequence
        )
        for index in range(count):
            batch.append((start + index) % 1024, payload, size, 0.0)
        log.append_batch(batch, timestamp=start * 0.001, leader_epoch=0)
        sequence += count
    log._seal_head()
    return log, storage


def _log_recovery_best_seconds(n_records: int) -> float:
    """Best-of-three stabilized replica bootstrap from segment files."""
    import gc
    import tempfile

    from repro.broker.log import PartitionLog

    payload = "x" * 100
    best = float("inf")
    with tempfile.TemporaryDirectory() as tmp_dir:
        _build_cold_tier_log(tmp_dir, n_records, payload)
        for _ in range(3):
            gc.collect()
            gc.disable()
            try:
                started = time.perf_counter()
                recovered = PartitionLog.recover(
                    "bench", 0, LogStorageConfig(
                        segment_records=2048, segment_dir=tmp_dir
                    ),
                    file_tag="b0",
                )
                best = min(best, time.perf_counter() - started)
            finally:
                gc.enable()
        assert len(recovered) == n_records
        assert recovered.producer_entry(1) is not None
    return best


def test_bench_log_recovery_throughput():
    """Replica bootstrap rate: replaying cold-tier segment files back into a
    full log — columns, epoch boundaries, producer dedup state.  This is the
    segmented-storage recovery path (``PartitionLog.recover``) and it feeds
    the regression gate, so the measurement is stabilized."""
    n_records = 100_000
    best = _log_recovery_best_seconds(n_records)
    rate = _record("log_recovery_records_per_sec", n_records / best)
    report(
        "log recovery (segment-file replay)",
        {"records": n_records, "seconds": best, "records/sec": rate},
    )
    assert rate > 20_000


def test_bench_fetch_cold_tier_throughput():
    """Sequential consume of a fully-evicted log: every read_batch below the
    head faults one sealed segment in from its file.  Reported-but-ungated
    (dominated by pickle load times, which vary more than 20% across hosts);
    also locks the retention-bounds-memory contract: after eviction the hot
    tier is empty, yet every record remains readable."""
    import gc
    import tempfile

    n_records = 100_000
    payload = "x" * 100
    best = float("inf")
    with tempfile.TemporaryDirectory() as tmp_dir:
        log, _storage = _build_cold_tier_log(tmp_dir, n_records, payload)
        for _ in range(3):
            log._apply_eviction(0)  # drop every sealed segment's columns
            assert log.size_bytes == 0  # hot tier fully bounded
            gc.collect()
            gc.disable()
            try:
                started = time.perf_counter()
                offset = log.log_start_offset
                consumed = 0
                while offset < log.log_end_offset:
                    batch = log.read_batch(offset)
                    consumed += len(batch)
                    offset = batch.next_offset
                best = min(best, time.perf_counter() - started)
            finally:
                gc.enable()
        assert consumed == n_records
        assert log.stats["cold_loads"] > 0
    rate = _record("fetch_cold_tier_records_per_sec", n_records / best)
    report(
        "cold-tier fetch (fault-in reads)",
        {"records": n_records, "seconds": best, "records/sec": rate},
    )
    assert rate > 20_000


def test_bench_persist_trajectory():
    """Runs last in the module: writes the collected numbers to BENCH_core.json.

    Besides the (bounded) run history, a per-machine ``best`` map keeps the
    running maximum of every rate metric forever — the regression gate reads
    it, so truncating old runs can never silently re-loosen the gate.
    """
    assert _results, "earlier benchmarks populated no results"
    history: list = []
    best: dict = {}
    if BENCH_FILE.exists():
        try:
            previous = json.loads(BENCH_FILE.read_text())
            history = previous.get("runs", [])
            best = previous.get("best", {})
        except (ValueError, AttributeError):
            history, best = [], {}
    machine = _machine_id()
    history.append(
        {"unix_time": int(time.time()), "machine": machine, "metrics": dict(_results)}
    )
    machine_best = best.setdefault(machine, {})
    for name, value in _results.items():
        if name.endswith("_per_sec"):
            machine_best[name] = max(machine_best.get(name, 0.0), value)
    BENCH_FILE.write_text(
        json.dumps(
            {"latest": dict(_results), "best": best, "runs": history[-20:]}, indent=2
        )
        + "\n"
    )
    report("BENCH_core.json", _results)


#: Metrics the regression gate enforces.  Only the stabilized end-to-end
#: throughputs gate: the micro-rates (call_later, packet round-trips) are
#: single-shot measurements whose run-to-run variance under a loaded machine
#: exceeds the 20% budget — they stay reported-but-ungated in the trajectory.
GATED_METRICS = (
    "produce_consume_records_per_sec",
    "produce_consume_idempotent_records_per_sec",
    "produce_consume_txn_records_per_sec",
    "produce_consume_4part_records_per_sec",
    "spe_vectorized_records_per_sec",
    "log_recovery_records_per_sec",
)

#: Simulator-core-only micro-rates used as a *session health* sentinel: no
#: broker/record-plane change can hide a regression in them, so when they run
#: well below their own recorded best the whole session is degraded (noisy
#: neighbour, throttling) and the gate's floor scales down accordingly.
SESSION_HEALTH_METRICS = (
    "call_later_events_per_sec",
    "process_timeout_events_per_sec",
)

#: Hard lower bound on session health.  Below this, host noise and a uniform
#: code slowdown are indistinguishable from inside one session — so the
#: floor never loosens past 0.8 * 0.75 = 0.6x best, and any >=40% regression
#: fails the gate no matter how sick the sentinels look.
MIN_SESSION_HEALTH = 0.75

#: Re-measurement hooks for gated metrics: a metric below its floor gets one
#: fresh stabilized measurement before the run is declared a regression —
#: transient host contention rarely spans both windows, a real code
#: regression always does.
_REMEASURE = {
    "produce_consume_records_per_sec": lambda: 50_000
    / _stable_best_seconds(50_000, "x" * 100),
    "produce_consume_idempotent_records_per_sec": lambda: 50_000
    / _stable_best_seconds(50_000, "x" * 100, idempotence=True),
    "produce_consume_txn_records_per_sec": lambda: 50_000
    / _stable_best_seconds(50_000, "x" * 100, transactional=True),
    "produce_consume_4part_records_per_sec": lambda: 50_000
    / _stable_best_seconds(50_000, "x" * 100, partitions=4, group_members=4),
    "spe_vectorized_records_per_sec": lambda: 50_000
    / _spe_stable_best_seconds(50_000, "x" * 100, vectorized=True),
    "log_recovery_records_per_sec": lambda: 100_000
    / _log_recovery_best_seconds(100_000),
}


def test_bench_regression_gate():
    """Fail the bench run on a >20% throughput drop versus the best entry.

    The best value comes from the never-truncated per-machine ``best`` map in
    the trajectory file, so the gate tightens as the record plane gets faster
    and never re-loosens.  Bests are per machine fingerprint: the first bench
    run on new hardware establishes that machine's baseline instead of being
    judged against someone else's CPU.

    Two noise controls keep the gate honest on shared/loaded hosts (the
    bests are captured at quiet moments; a contended session measures every
    metric 15-30% low across code the diff never touched):

    * the floor scales with *session health* — the best ratio the pure-CPU
      sentinel micro-rates achieved this session (a record-plane regression
      cannot hide there, so a low sentinel means a degraded machine, not a
      regression), refreshed with one cheap sample at gate time and clamped
      at :data:`MIN_SESSION_HEALTH` so the floor never drops below 0.6x
      best — a uniform >=40% slowdown still fails even on a host that looks
      degraded;
    * a metric still below its scaled floor is re-measured once with the
      same stabilized protocol before failing the run.
    """
    if not _results:
        pytest.skip("gate needs the earlier benchmarks in the same session")
    machine_best = (
        json.loads(BENCH_FILE.read_text()).get("best", {}).get(_machine_id(), {})
    )
    best = {
        name: machine_best[name] for name in GATED_METRICS if name in machine_best
    }
    health_ratios = [
        _results[name] / machine_best[name]
        for name in SESSION_HEALTH_METRICS
        if machine_best.get(name) and _results.get(name)
    ]
    health = min(1.0, max(health_ratios)) if health_ratios else 1.0
    if health < 1.0 and machine_best.get("call_later_events_per_sec"):
        # The sentinels ran at module start; contention may have begun or
        # ended since.  One fresh sample at gate time keeps health current.
        health = min(
            1.0,
            max(
                health,
                _call_later_rate() / machine_best["call_later_events_per_sec"],
            ),
        )
    health = max(health, MIN_SESSION_HEALTH)
    floor_factor = REGRESSION_FLOOR * health
    current = {
        name: _results[name] for name in best if name in _results
    }
    for name, value in list(current.items()):
        if value < best[name] * floor_factor and name in _REMEASURE:
            current[name] = max(value, _REMEASURE[name]())
    regressions = {
        name: (value, best[name])
        for name, value in current.items()
        if value < best[name] * floor_factor
    }
    report(
        f"regression gate (floor = best * 0.8 * session health {health:.2f})",
        [
            {
                "metric": name,
                "current": current.get(name, 0.0),
                "best": best_value,
                "floor": round(best_value * floor_factor, 2),
            }
            for name, best_value in sorted(best.items())
        ],
    )
    assert not regressions, (
        f"throughput regressed below 0.8 * best * session-health({health:.2f}) "
        "even after one re-measurement: "
        + ", ".join(
            f"{name}: {value:.0f} < {best_value * floor_factor:.0f}"
            for name, (value, best_value) in regressions.items()
        )
    )
