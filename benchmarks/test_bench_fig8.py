"""Figure 8 benchmark: emulation accuracy vs the hardware calibration profile."""

from repro.experiments.fig8_accuracy import Fig8Config, check_shape, run_fig8
from benchmarks.conftest import report


def test_bench_fig8_accuracy(run_once):
    config = Fig8Config(
        link_delays_ms=[25, 75, 150],
        components=["broker", "spe"],
        n_documents=20,
        duration=50.0,
    )
    result = run_once(run_fig8, config)
    report("Figure 8: stream2gym vs hardware end-to-end latency (s)", result.rows())
    report(
        "Figure 8: agreement",
        [{"max_relative_error": result.max_relative_error()}],
    )
    problems = check_shape(result)
    assert problems == [], problems
