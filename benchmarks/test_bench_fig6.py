"""Figure 6 benchmark: network partitioning in a replicated streaming deployment."""

from repro.broker.coordinator import CoordinationMode
from repro.experiments.fig6_partition import (
    Fig6Config,
    check_shape,
    run_fig6,
)
from benchmarks.conftest import report


def _config(mode, acks):
    return Fig6Config(
        n_sites=5,
        duration=240.0,
        disconnect_start=80.0,
        disconnect_duration=50.0,
        mode=mode,
        acks=acks,
        seed=3,
    )


def test_bench_fig6_partition(run_once):
    def run_both():
        return {
            "zookeeper": run_fig6(_config(CoordinationMode.ZOOKEEPER, 1)),
            "kraft": run_fig6(_config(CoordinationMode.KRAFT, "all")),
        }

    results = run_once(run_both)
    zk = results["zookeeper"]
    kraft = results["kraft"]

    report(
        "Figure 6b: delivery of the co-located producer's messages (ZooKeeper mode)",
        [
            {
                "consumer": consumer,
                "delivery_rate": zk.delivery.delivery_rate(consumer),
                "lost_messages": len(zk.delivery.lost_indices(consumer)),
            }
            for consumer in sorted(zk.delivery.matrix)
        ],
    )
    print(zk.delivery.render_text())

    spikes = zk.latency_spike_topics(threshold=5.0)
    report(
        "Figure 6c: latency spikes per topic (messages above 5 s)",
        [{"topics_with_spikes": ", ".join(spikes), "total_points": len(zk.latency_points)}],
    )
    report(
        "Figure 6d: events of interest",
        [
            {"event": "disconnect_window", "value": str(zk.disconnect_window)},
            {"event": "leader_elections_at", "value": str(zk.election_times())},
        ],
    )
    report(
        "Figure 6: ZooKeeper vs Raft-based coordination",
        [
            {
                "mode": "zookeeper",
                "acked_but_lost": zk.acked_but_lost,
                "lost_topicA": zk.lost_topic_breakdown.get("topicA", 0),
                "lost_topicB": zk.lost_topic_breakdown.get("topicB", 0),
            },
            {
                "mode": "kraft",
                "acked_but_lost": kraft.acked_but_lost,
                "lost_topicA": kraft.lost_topic_breakdown.get("topicA", 0),
                "lost_topicB": kraft.lost_topic_breakdown.get("topicB", 0),
            },
        ],
    )
    problems = check_shape(results)
    assert problems == [], problems
