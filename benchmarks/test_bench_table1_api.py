"""Table I benchmark: the modeling-interface attributes are fully supported.

Parses a GraphML task description exercising every Table I attribute, builds
the emulation, and reports parse/build throughput.
"""

from repro.core import Emulation, parse_graphml_string
from repro.core.attributes import (
    ALL_GRAPH_ATTRIBUTES,
    ALL_LINK_ATTRIBUTES,
    ALL_NODE_ATTRIBUTES,
)
from benchmarks.conftest import report

FULL_ATTRIBUTE_DOC = """<?xml version="1.0"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <graph edgedefault="undirected">
    <data key="topicCfg">{topics: [{name: raw-data, replicas: 2, primaryBroker: h2}]}</data>
    <data key="faultCfg">{faults: [{kind: link_down, targets: [h1, s1], start: 30, duration: 10}]}</data>
    <node id="h1">
      <data key="prodType">SFST</data>
      <data key="prodCfg">{topicName: raw-data, totalMessages: 10, messagesPerSecond: 5}</data>
      <data key="cpuPercentage">50</data>
    </node>
    <node id="h2"><data key="brokerCfg">{coordinator: true}</data></node>
    <node id="h6"><data key="brokerCfg">{}</data></node>
    <node id="h3">
      <data key="streamProcType">SPARK</data>
      <data key="streamProcCfg">{app: word_count, inputTopics: [raw-data], outputTopic: words-per-doc}</data>
    </node>
    <node id="h4">
      <data key="storeType">MYSQL</data>
      <data key="storeCfg">{tables: [results]}</data>
    </node>
    <node id="h5">
      <data key="consType">STANDARD</data>
      <data key="consCfg">{topics: [raw-data]}</data>
    </node>
    <node id="s1"/>
    <edge source="h1" target="s1"><data key="lat">10</data><data key="bw">100</data><data key="loss">0.1</data><data key="st">1</data><data key="dt">1</data></edge>
    <edge source="h2" target="s1"><data key="lat">5</data><data key="bw">100</data></edge>
    <edge source="h6" target="s1"><data key="lat">5</data><data key="bw">100</data></edge>
    <edge source="h3" target="s1"><data key="lat">5</data><data key="bw">100</data></edge>
    <edge source="h4" target="s1"><data key="lat">5</data><data key="bw">100</data></edge>
    <edge source="h5" target="s1"><data key="lat">5</data><data key="bw">100</data></edge>
  </graph>
</graphml>
"""


def test_bench_table1_attribute_coverage(run_once):
    """Every Table I attribute parses, validates and deploys."""

    def parse_and_build():
        task = parse_graphml_string(FULL_ATTRIBUTE_DOC)
        assert task.validate() == []
        emulation = Emulation(task, seed=1)
        emulation.build()
        return task, emulation

    task, emulation = run_once(parse_and_build)

    used_node_attributes = set()
    for node in task.nodes.values():
        used_node_attributes.update(node.attributes)
    used_link_attributes = set()
    for link in task.links:
        used_link_attributes.update(link.attributes)

    rows = [
        {"scope": "graph", "attributes": len(ALL_GRAPH_ATTRIBUTES),
         "exercised": len(set(task.graph_attributes) & set(ALL_GRAPH_ATTRIBUTES))},
        {"scope": "node", "attributes": len(ALL_NODE_ATTRIBUTES),
         "exercised": len(used_node_attributes & set(ALL_NODE_ATTRIBUTES))},
        {"scope": "link", "attributes": len(ALL_LINK_ATTRIBUTES),
         "exercised": len(used_link_attributes & set(ALL_LINK_ATTRIBUTES))},
    ]
    report("Table I: attribute coverage of the modeling interface", rows)
    assert rows[0]["exercised"] == len(ALL_GRAPH_ATTRIBUTES)
    assert rows[1]["exercised"] == len(ALL_NODE_ATTRIBUTES)
    assert rows[2]["exercised"] == len(ALL_LINK_ATTRIBUTES)
    assert len(emulation.producers) == 1
    assert len(emulation.spes) == 1
    assert len(emulation.stores) == 1
    assert len(emulation.consumers) == 1
