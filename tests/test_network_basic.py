"""Unit tests for addressing, packets, links, hosts and switches."""

import pytest

from repro.network import LinkConfig, Network, Packet
from repro.network.addressing import AddressAllocator
from repro.network.packet import estimate_size
from repro.simulation import Simulator


def make_two_host_net(latency_ms=10.0, bandwidth_mbps=100.0, loss=0.0, seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_switch("s1")
    net.add_host("h1")
    net.add_host("h2")
    cfg = LinkConfig(latency_ms=latency_ms, bandwidth_mbps=bandwidth_mbps, loss_percent=loss)
    net.add_link("h1", "s1", cfg)
    net.add_link("h2", "s1", cfg)
    net.start(monitor=False)
    return sim, net


class TestAddressing:
    def test_sequential_ips(self):
        alloc = AddressAllocator()
        a = alloc.allocate("h1")
        b = alloc.allocate("h2")
        assert a.ip == "10.0.0.1"
        assert b.ip == "10.0.0.2"

    def test_allocate_is_idempotent(self):
        alloc = AddressAllocator()
        assert alloc.allocate("h1") is alloc.allocate("h1")
        assert len(alloc) == 1

    def test_lookup_and_resolve(self):
        alloc = AddressAllocator()
        addr = alloc.allocate("h9")
        assert alloc.lookup("h9") == addr
        assert alloc.resolve_ip(addr.ip) == addr
        assert alloc.lookup("nope") is None

    def test_macs_are_unique(self):
        alloc = AddressAllocator()
        macs = {alloc.allocate(f"h{i}").mac for i in range(50)}
        assert len(macs) == 50

    def test_invalid_base_network(self):
        with pytest.raises(ValueError):
            AddressAllocator("not-an-ip")


class TestPacket:
    def test_wire_size_includes_overhead(self):
        packet = Packet(src="a", dst="b", payload=b"x" * 100, size=100)
        assert packet.wire_size == 100 + 66

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(src="a", dst="b", payload=None, size=-1)

    def test_estimate_size_strings_and_bytes(self):
        assert estimate_size("hello world, this is a test") == 27
        assert estimate_size(b"\x00" * 500) == 500
        assert estimate_size(None) == 16
        assert estimate_size({"key": "value"}) >= 8
        assert estimate_size([1, 2, 3]) >= 12

    def test_packet_ids_increase(self):
        p1 = Packet(src="a", dst="b", payload=None)
        p2 = Packet(src="a", dst="b", payload=None)
        assert p2.packet_id > p1.packet_id


class TestLinkConfig:
    def test_serialization_delay(self):
        cfg = LinkConfig(latency_ms=1.0, bandwidth_mbps=8.0)
        # 1000 bytes at 8 Mbps = 1 ms
        assert cfg.serialization_delay(1000) == pytest.approx(0.001)

    def test_unshaped_bandwidth(self):
        cfg = LinkConfig(bandwidth_mbps=None)
        assert cfg.serialization_delay(10**9) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkConfig(latency_ms=-1)
        with pytest.raises(ValueError):
            LinkConfig(bandwidth_mbps=0)
        with pytest.raises(ValueError):
            LinkConfig(loss_percent=150)


class TestDelivery:
    def test_host_to_host_delivery(self):
        sim, net = make_two_host_net(latency_ms=10.0)
        received = []
        net.host("h2").bind(5000, lambda pkt: received.append((pkt.payload, sim.now)))
        net.host("h1").send("h2", "hello", size=100, dst_port=5000)
        sim.run()
        assert len(received) == 1
        payload, at = received[0]
        assert payload == "hello"
        # Two link latencies (10ms each) plus serialization and switching.
        assert 0.020 <= at <= 0.025

    def test_latency_scales_with_link_delay(self):
        arrivals = {}
        for delay in (5.0, 50.0):
            sim, net = make_two_host_net(latency_ms=delay)
            net.host("h2").bind(5000, lambda pkt, d=delay: arrivals.__setitem__(d, sim.now))
            net.host("h1").send("h2", "x", size=10, dst_port=5000)
            sim.run()
        assert arrivals[50.0] > arrivals[5.0] * 5

    def test_bandwidth_serialization_delay(self):
        # 1 MB over 8 Mbps takes ~1 s per hop; the path is two hops
        # (host->switch, switch->host) under store-and-forward.
        sim, net = make_two_host_net(latency_ms=0.0, bandwidth_mbps=8.0)
        seen = []
        net.host("h2").bind(80, lambda pkt: seen.append(sim.now))
        net.host("h1").send("h2", b"", size=1_000_000, dst_port=80)
        sim.run()
        assert seen and seen[0] == pytest.approx(2.0, rel=0.05)

    def test_loopback_delivery(self):
        sim, net = make_two_host_net()
        got = []
        net.host("h1").bind(1234, lambda pkt: got.append(pkt.payload))
        net.host("h1").send("h1", "local", dst_port=1234)
        sim.run()
        assert got == ["local"]

    def test_unbound_port_counts_undeliverable(self):
        sim, net = make_two_host_net()
        net.host("h1").send("h2", "x", dst_port=999)
        sim.run()
        assert net.host("h2").undeliverable == 1

    def test_total_loss_drops_everything(self):
        sim, net = make_two_host_net(loss=100.0)
        received = []
        net.host("h2").bind(5000, lambda pkt: received.append(pkt.payload))
        for _ in range(20):
            net.host("h1").send("h2", "x", size=10, dst_port=5000)
        sim.run()
        assert received == []
        assert net.total_packets_dropped() >= 20

    def test_partial_loss_statistical(self):
        sim, net = make_two_host_net(loss=50.0, seed=3)
        received = []
        net.host("h2").bind(5000, lambda pkt: received.append(pkt.payload))
        for _ in range(200):
            net.host("h1").send("h2", "x", size=10, dst_port=5000)
        sim.run()
        assert 40 < len(received) < 160

    def test_port_stats_counters(self):
        sim, net = make_two_host_net()
        net.host("h2").bind(5000, lambda pkt: None)
        net.host("h1").send("h2", "x", size=100, dst_port=5000)
        sim.run()
        h1 = net.host("h1")
        h2 = net.host("h2")
        assert h1.port.stats.tx_packets == 1
        assert h1.port.stats.tx_bytes == 166
        assert h2.port.stats.rx_packets == 1

    def test_link_down_drops_packets(self):
        sim, net = make_two_host_net()
        received = []
        net.host("h2").bind(5000, lambda pkt: received.append(pkt.payload))
        link = net.link_between("h1", "s1")
        link.set_down()
        net.host("h1").send("h2", "x", size=10, dst_port=5000)
        sim.run()
        assert received == []

    def test_link_recovery_allows_traffic_again(self):
        sim, net = make_two_host_net()
        received = []
        net.host("h2").bind(5000, lambda pkt: received.append(sim.now))
        link = net.link_between("h1", "s1")
        link.set_down()

        def scenario():
            net.host("h1").send("h2", "lost", size=10, dst_port=5000)
            yield sim.timeout(1.0)
            link.set_up()
            net.controller.handle_topology_change()
            net.host("h1").send("h2", "ok", size=10, dst_port=5000)

        sim.process(scenario())
        sim.run()
        assert len(received) == 1


class TestNetworkContainer:
    def test_duplicate_names_rejected(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("h1")
        with pytest.raises(ValueError):
            net.add_host("h1")
        with pytest.raises(ValueError):
            net.add_switch("h1")

    def test_node_lookup(self):
        sim, net = make_two_host_net()
        assert net.node("h1") is net.host("h1")
        assert net.node("s1") is net.switches["s1"]
        with pytest.raises(KeyError):
            net.node("missing")
        with pytest.raises(KeyError):
            net.host("s1")

    def test_link_between(self):
        sim, net = make_two_host_net()
        assert net.link_between("h1", "s1") is not None
        assert net.link_between("s1", "h1") is not None
        assert net.link_between("h1", "h2") is None

    def test_links_of(self):
        sim, net = make_two_host_net()
        assert len(net.links_of("s1")) == 2
        assert len(net.links_of("h1")) == 1

    def test_describe(self):
        sim, net = make_two_host_net()
        info = net.describe()
        assert info["hosts"] == ["h1", "h2"]
        assert info["switches"] == ["s1"]
        assert len(info["links"]) == 2

    def test_host_cpu_validation(self):
        sim = Simulator()
        net = Network(sim)
        with pytest.raises(ValueError):
            net.add_host("h1", cpu_percentage=0)
        with pytest.raises(ValueError):
            net.add_host("h2", cores=0)
