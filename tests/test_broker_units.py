"""Unit tests for partition logs, records, topic state and the coordinator."""

import pytest

from repro.broker.log import PartitionLog
from repro.broker.message import ProducerRecord, RecordMetadata, _stable_hash
from repro.broker.topic import PartitionState, TopicConfig


class TestPartitionLog:
    def make_log(self, n=5, epoch=0):
        log = PartitionLog("t", 0)
        for i in range(n):
            log.append(
                key=f"k{i}", value=f"v{i}", size=10, timestamp=float(i),
                produced_at=float(i), leader_epoch=epoch,
            )
        return log

    def test_append_assigns_sequential_offsets(self):
        log = self.make_log(3)
        assert [r.offset for r in log.all_records()] == [0, 1, 2]
        assert log.log_end_offset == 3

    def test_read_from_offset(self):
        log = self.make_log(5)
        records = log.read(2)
        assert [r.offset for r in records] == [2, 3, 4]

    def test_read_beyond_end_returns_empty(self):
        log = self.make_log(2)
        assert log.read(5) == []

    def test_read_max_records(self):
        log = self.make_log(10)
        assert len(log.read(0, max_records=4)) == 4

    def test_committed_read_respects_high_watermark(self):
        log = self.make_log(5)
        assert log.committed_read(0) == []
        log.advance_high_watermark(3)
        assert [r.offset for r in log.committed_read(0)] == [0, 1, 2]

    def test_high_watermark_never_goes_backwards(self):
        log = self.make_log(5)
        log.advance_high_watermark(4)
        log.advance_high_watermark(2)
        assert log.high_watermark == 4

    def test_high_watermark_capped_at_log_end(self):
        log = self.make_log(3)
        log.advance_high_watermark(100)
        assert log.high_watermark == 3

    def test_truncate_discards_suffix(self):
        log = self.make_log(5)
        discarded = log.truncate_to(2)
        assert [r.offset for r in discarded] == [2, 3, 4]
        assert log.log_end_offset == 2
        assert log.truncated_records == 3

    def test_truncate_beyond_end_is_noop(self):
        log = self.make_log(3)
        assert log.truncate_to(10) == []
        assert log.log_end_offset == 3

    def test_truncate_pulls_back_high_watermark(self):
        log = self.make_log(5)
        log.advance_high_watermark(5)
        log.truncate_to(2)
        assert log.high_watermark == 2

    def test_epoch_boundaries_recorded(self):
        log = PartitionLog("t")
        log.append(key=None, value="a", size=1, timestamp=0, produced_at=0, leader_epoch=0)
        log.append(key=None, value="b", size=1, timestamp=0, produced_at=0, leader_epoch=0)
        log.append(key=None, value="c", size=1, timestamp=0, produced_at=0, leader_epoch=2)
        assert log.epoch_boundaries == [(0, 0), (2, 2)]
        assert log.epoch_start_offset(2) == 2
        assert log.epoch_start_offset(1) is None

    def test_stale_epoch_append_rejected(self):
        log = PartitionLog("t")
        log.append(key=None, value="a", size=1, timestamp=0, produced_at=0, leader_epoch=3)
        with pytest.raises(ValueError):
            log.append(key=None, value="b", size=1, timestamp=0, produced_at=0, leader_epoch=1)

    def test_append_record_requires_contiguity(self):
        log = self.make_log(2)
        other = self.make_log(5)
        with pytest.raises(ValueError):
            log.append_record(other.record_at(4))
        log.append_record(other.record_at(2))
        assert log.log_end_offset == 3

    def test_size_bytes(self):
        log = self.make_log(4)
        assert log.size_bytes == 40

    def test_record_at(self):
        log = self.make_log(3)
        assert log.record_at(1).value == "v1"
        assert log.record_at(9) is None


class TestProducerRecord:
    def test_size_estimated_when_missing(self):
        record = ProducerRecord(topic="t", value="hello world!")
        assert record.size >= 12

    def test_explicit_partition_used(self):
        record = ProducerRecord(topic="t", value="x", partition=2)
        assert record.partition_for(4) == 2

    def test_explicit_partition_out_of_range(self):
        record = ProducerRecord(topic="t", value="x", partition=9)
        with pytest.raises(ValueError):
            record.partition_for(2)

    def test_key_partitioning_is_stable(self):
        a = ProducerRecord(topic="t", value="x", key="user-1")
        b = ProducerRecord(topic="t", value="y", key="user-1")
        assert a.partition_for(8) == b.partition_for(8)

    def test_round_robin_fallback(self):
        record = ProducerRecord(topic="t", value="x")
        assert record.partition_for(4, fallback=5) == 1

    def test_stable_hash_is_deterministic(self):
        assert _stable_hash("abc") == _stable_hash("abc")
        assert _stable_hash("abc") != _stable_hash("abd")

    def test_record_metadata_commit_latency(self):
        metadata = RecordMetadata(
            topic="t", partition=0, offset=1, timestamp=12.5, produced_at=10.0
        )
        assert metadata.commit_latency == pytest.approx(2.5)


class TestTopicState:
    def test_topic_config_validation(self):
        with pytest.raises(ValueError):
            TopicConfig(name="")
        with pytest.raises(ValueError):
            TopicConfig(name="t", partitions=0)
        with pytest.raises(ValueError):
            TopicConfig(name="t", replication_factor=0)

    def test_partition_state_defaults(self):
        state = PartitionState(topic="t", partition=0, replicas=["b1", "b2"])
        assert state.leader == "b1"
        assert state.isr == ["b1", "b2"]
        assert state.preferred_leader == "b1"
        assert state.key == "t-0"

    def test_partition_state_requires_replicas(self):
        with pytest.raises(ValueError):
            PartitionState(topic="t", partition=0, replicas=[])

    def test_isr_shrink_and_expand(self):
        state = PartitionState(topic="t", partition=0, replicas=["b1", "b2", "b3"])
        state.shrink_isr("b2")
        assert state.isr == ["b1", "b3"]
        state.expand_isr("b2")
        assert set(state.isr) == {"b1", "b2", "b3"}
        state.expand_isr("b9")
        assert "b9" not in state.isr

    def test_isr_never_shrinks_to_empty(self):
        state = PartitionState(topic="t", partition=0, replicas=["b1"])
        state.shrink_isr("b1")
        assert state.isr == ["b1"]

    def test_copy_is_independent(self):
        state = PartitionState(topic="t", partition=0, replicas=["b1", "b2"])
        clone = state.copy()
        clone.shrink_isr("b2")
        assert state.isr == ["b1", "b2"]
