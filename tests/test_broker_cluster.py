"""Integration tests for the event streaming platform over the emulated network."""

import pytest

from repro.broker import (
    BrokerCluster,
    ClusterConfig,
    ConsumerConfig,
    CoordinationMode,
    ProducerConfig,
    ProducerRecord,
    TopicConfig,
)
from repro.network.faults import FaultInjector, NodeDisconnection
from repro.network.link import LinkConfig
from repro.network.topology import star_topology
from repro.simulation import Simulator


def build_cluster(
    n_sites=3,
    mode=CoordinationMode.ZOOKEEPER,
    replication=2,
    topics=("topicA",),
    preferred_leaders=None,
    seed=1,
    session_timeout=6.0,
    preferred_election_interval=20.0,
):
    """Small star-topology cluster helper used by the integration tests."""
    sim = Simulator(seed=seed)
    network, sites = star_topology(
        sim, n_sites, link_config=LinkConfig(latency_ms=2.0, bandwidth_mbps=100.0)
    )
    cluster = BrokerCluster(
        network,
        coordinator_host=sites[0],
        config=ClusterConfig(
            mode=mode,
            session_timeout=session_timeout,
            preferred_election_interval=preferred_election_interval,
        ),
    )
    for site in sites:
        cluster.add_broker(site)
    preferred_leaders = preferred_leaders or {}
    for topic in topics:
        cluster.add_topic(
            TopicConfig(
                name=topic,
                partitions=1,
                replication_factor=replication,
                preferred_leader=preferred_leaders.get(topic),
            )
        )
    cluster.start(settle_time=2.0)
    return sim, network, sites, cluster


class TestClusterBringUp:
    def test_brokers_register_and_topic_created(self):
        sim, network, sites, cluster = build_cluster()
        sim.run(until=10.0)
        assert set(cluster.coordinator.alive_brokers()) == {
            f"broker-{site}" for site in sites
        }
        state = cluster.coordinator.partition_state("topicA")
        assert state is not None
        assert state.leader is not None
        assert len(state.replicas) == 2

    def test_preferred_leader_respected(self):
        sim, network, sites, cluster = build_cluster(
            preferred_leaders={"topicA": "broker-site3"}
        )
        sim.run(until=10.0)
        assert cluster.coordinator.leader_of("topicA") == "broker-site3"

    def test_duplicate_topic_rejected(self):
        sim, network, sites, cluster = build_cluster()
        with pytest.raises(ValueError):
            cluster.add_topic(TopicConfig(name="topicA"))

    def test_replication_factor_larger_than_cluster_rejected(self):
        sim, network, sites, cluster = build_cluster()
        sim.run(until=10.0)
        with pytest.raises(ValueError):
            cluster.coordinator.create_topic(
                TopicConfig(name="huge", replication_factor=10)
            )

    def test_describe(self):
        sim, network, sites, cluster = build_cluster()
        info = cluster.describe()
        assert info["mode"] == "zookeeper"
        assert info["topics"] == ["topicA"]
        assert len(info["brokers"]) == 3


class TestProduceConsume:
    def test_end_to_end_delivery(self):
        sim, network, sites, cluster = build_cluster()
        producer = cluster.create_producer(sites[0])
        consumer = cluster.create_consumer(sites[2])
        consumer.subscribe(["topicA"])

        def workload():
            yield sim.timeout(10.0)
            producer.start()
            consumer.start()
            for i in range(20):
                producer.send(ProducerRecord(topic="topicA", key=i, value=f"msg-{i}", size=200))
                yield sim.timeout(0.1)

        sim.process(workload())
        sim.run(until=40.0)
        assert producer.records_acked == 20
        assert consumer.records_consumed == 20
        assert [r.key for r in consumer.received] == list(range(20))

    def test_fire_and_forget_send_noreport(self):
        """send_noreport delivers identically to send but allocates no
        futures or delivery reports (the acks=0-style throughput path)."""
        sim, network, sites, cluster = build_cluster()
        producer = cluster.create_producer(sites[0])
        consumer = cluster.create_consumer(sites[2])
        consumer.subscribe(["topicA"])

        def workload():
            yield sim.timeout(10.0)
            producer.start()
            consumer.start()
            for i in range(20):
                producer.send_noreport(
                    ProducerRecord(topic="topicA", key=i, value=f"msg-{i}", size=200)
                )
                yield sim.timeout(0.1)

        sim.process(workload())
        sim.run(until=40.0)
        assert producer.records_sent == 20
        assert producer.records_acked == 20
        assert producer.records_failed == 0
        assert producer.reports == []  # no per-record report allocation
        assert producer.buffer_used == 0  # buffer.memory fully released
        assert consumer.records_consumed == 20
        assert [r.key for r in consumer.received] == list(range(20))

    def test_noreport_delivery_matches_reported_send(self):
        """The wire behavior of the two send paths is identical: same keys,
        same bytes, same consumed order for the same seeded run."""

        def run_once(noreport: bool):
            sim, network, sites, cluster = build_cluster()
            producer = cluster.create_producer(sites[0])
            consumer = cluster.create_consumer(sites[2])
            consumer.subscribe(["topicA"])
            send = producer.send_noreport if noreport else producer.send

            def workload():
                yield sim.timeout(10.0)
                producer.start()
                consumer.start()
                for i in range(30):
                    send(ProducerRecord(topic="topicA", key=i, value=f"m-{i}", size=150))
                    yield sim.timeout(0.05)

            sim.process(workload())
            sim.run(until=40.0)
            return (
                [r.key for r in consumer.received],
                consumer.bytes_consumed,
                producer.records_acked,
            )

        assert run_once(noreport=False) == run_once(noreport=True)

    def test_interleaved_send_paths_share_partition_round_robin(self):
        """Keyless round-robin placement is one shared counter: interleaving
        send and send_noreport spreads records exactly like all-send would."""
        sim, network, sites, cluster = build_cluster()
        producer = cluster.create_producer(sites[0])
        producer.metadata = {
            "version": 1,
            "brokers": {},
            "partitions": {
                "t-0": {"topic": "t", "partition": 0, "leader": None},
                "t-1": {"topic": "t", "partition": 1, "leader": None},
            },
        }
        for i in range(2):
            producer.send(ProducerRecord(topic="t", value=f"r{i}", size=10))
            producer.send_noreport(ProducerRecord(topic="t", value=f"n{i}", size=10))
        # Fallback sequence 0,1,2,3 -> partitions 0,1,0,1 across both paths.
        assert [p.record.value for p in producer._accumulator["t-0"]] == ["r0", "r1"]
        assert [p.record.value for p in producer._accumulator["t-1"]] == ["n0", "n1"]

    def test_consumer_latency_accounting(self):
        sim, network, sites, cluster = build_cluster()
        producer = cluster.create_producer(sites[1])
        consumer = cluster.create_consumer(sites[2])
        consumer.subscribe(["topicA"])

        def workload():
            yield sim.timeout(10.0)
            producer.start()
            consumer.start()
            for i in range(5):
                producer.send(ProducerRecord(topic="topicA", value=f"m{i}", size=100))
                yield sim.timeout(0.5)

        sim.process(workload())
        sim.run(until=30.0)
        latencies = consumer.latencies("topicA")
        assert len(latencies) == 5
        assert all(0 < latency < 2.0 for latency in latencies)

    def test_replication_to_followers(self):
        sim, network, sites, cluster = build_cluster(replication=3)
        producer = cluster.create_producer(sites[0])

        def workload():
            yield sim.timeout(10.0)
            producer.start()
            for i in range(10):
                producer.send(ProducerRecord(topic="topicA", value=f"m{i}", size=100))
            yield sim.timeout(10.0)

        sim.process(workload())
        sim.run(until=30.0)
        logs = [
            broker.log_for("topicA")
            for broker in cluster.brokers.values()
            if broker.log_for("topicA") is not None
        ]
        assert len(logs) == 3
        assert all(log.log_end_offset == 10 for log in logs)
        assert all(log.high_watermark == 10 for log in logs)

    def test_producer_metadata_discovers_new_topics(self):
        sim, network, sites, cluster = build_cluster()
        producer = cluster.create_producer(sites[1])
        consumer = cluster.create_consumer(sites[0])
        consumer.subscribe(["topicA"])

        def workload():
            # Start clients *before* the topic exists; they must catch up.
            producer.start()
            consumer.start()
            yield sim.timeout(12.0)
            producer.send(ProducerRecord(topic="topicA", value="late", size=50))

        sim.process(workload())
        sim.run(until=40.0)
        assert producer.records_acked == 1
        assert consumer.records_consumed == 1

    def test_multiple_topics_are_isolated(self):
        sim, network, sites, cluster = build_cluster(topics=("alpha", "beta"))
        producer = cluster.create_producer(sites[0])
        consumer_alpha = cluster.create_consumer(sites[1], name="calpha")
        consumer_alpha.subscribe(["alpha"])
        consumer_beta = cluster.create_consumer(sites[2], name="cbeta")
        consumer_beta.subscribe(["beta"])

        def workload():
            yield sim.timeout(10.0)
            producer.start()
            consumer_alpha.start()
            consumer_beta.start()
            for i in range(6):
                topic = "alpha" if i % 2 == 0 else "beta"
                producer.send(ProducerRecord(topic=topic, value=i, size=50))
                yield sim.timeout(0.2)

        sim.process(workload())
        sim.run(until=30.0)
        assert consumer_alpha.records_consumed == 3
        assert consumer_beta.records_consumed == 3
        assert all(r.topic == "alpha" for r in consumer_alpha.received)

    def test_producer_buffer_accounting_returns_to_zero(self):
        sim, network, sites, cluster = build_cluster()
        producer = cluster.create_producer(
            sites[0], config=ProducerConfig(buffer_memory=10_000)
        )

        def workload():
            yield sim.timeout(10.0)
            producer.start()
            for i in range(50):
                producer.send(ProducerRecord(topic="topicA", value=i, size=500))
            yield sim.timeout(10.0)

        sim.process(workload())
        sim.run(until=40.0)
        assert producer.records_acked == 50
        assert producer.buffer_used == 0
        assert producer.flush_pending() == 0


class TestFailover:
    def _run_partition_scenario(self, mode, disconnect_for=40.0, until=140.0, acks=1):
        sim, network, sites, cluster = build_cluster(
            n_sites=4,
            mode=mode,
            replication=3,
            preferred_leaders={"topicA": "broker-site3"},
            session_timeout=6.0,
            preferred_election_interval=15.0,
        )
        injector = FaultInjector(network)
        # Producer co-located with the topicA leader (site3), which gets cut off.
        local_producer = cluster.create_producer(
            "site3",
            config=ProducerConfig(delivery_timeout=200.0, request_timeout=1.0, acks=acks),
            name="colocated-producer",
        )
        remote_producer = cluster.create_producer(
            "site2",
            config=ProducerConfig(delivery_timeout=200.0, request_timeout=1.0, acks=acks),
            name="remote-producer",
        )
        consumer = cluster.create_consumer("site4", name="observer")
        consumer.subscribe(["topicA"])
        injector.schedule_node_disconnection(
            NodeDisconnection(node="site3", start=30.0, duration=disconnect_for)
        )

        def workload():
            yield sim.timeout(10.0)
            local_producer.start()
            remote_producer.start()
            consumer.start()
            for i in range(100):
                local_producer.send(
                    ProducerRecord(topic="topicA", key=f"local-{i}", value=i, size=200)
                )
                remote_producer.send(
                    ProducerRecord(topic="topicA", key=f"remote-{i}", value=i, size=200)
                )
                yield sim.timeout(1.0)

        sim.process(workload())
        sim.run(until=until)
        return sim, cluster, local_producer, remote_producer, consumer

    def test_new_leader_elected_after_disconnection(self):
        sim, cluster, *_ = self._run_partition_scenario(CoordinationMode.ZOOKEEPER)
        elections = [e for e in cluster.coordinator.elections if e.reason == "leader-failure"]
        assert elections, "expected a leader election after the disconnection"
        assert elections[0].new_leader != "broker-site3"

    def test_preferred_leader_reelected_after_recovery(self):
        sim, cluster, *_ = self._run_partition_scenario(CoordinationMode.ZOOKEEPER)
        # After reconnection and catch-up the preferred replica (site3) should lead again.
        assert cluster.coordinator.leader_of("topicA") == "broker-site3"
        reasons = [e.reason for e in cluster.coordinator.elections]
        assert "preferred-replica-election" in reasons

    def test_zookeeper_mode_silently_loses_acked_records(self):
        sim, cluster, local_producer, remote_producer, consumer = (
            self._run_partition_scenario(CoordinationMode.ZOOKEEPER)
        )
        received_keys = set(consumer.received_keys("topicA"))
        acked_local = {
            report.key
            for report in local_producer.reports
            if report.acknowledged
        }
        lost = acked_local - received_keys
        assert cluster.total_lost_records() > 0
        assert lost, "ZooKeeper mode should lose some acknowledged records"
        assert all(str(key).startswith("local-") for key in lost)

    def test_kraft_mode_does_not_lose_acked_records(self):
        # Raft-based clusters acknowledge writes only once they are quorum
        # replicated (acks=all), which is what prevents the silent loss.
        sim, cluster, local_producer, remote_producer, consumer = (
            self._run_partition_scenario(CoordinationMode.KRAFT, until=200.0, acks="all")
        )
        received_keys = set(consumer.received_keys("topicA"))
        acked = {
            report.key
            for report in list(local_producer.reports) + list(remote_producer.reports)
            if report.acknowledged
        }
        lost = acked - received_keys
        assert lost == set(), f"KRaft mode must not silently lose acked records: {lost}"

    def test_remote_producer_keeps_delivering_through_failover(self):
        sim, cluster, local_producer, remote_producer, consumer = (
            self._run_partition_scenario(CoordinationMode.ZOOKEEPER)
        )
        # The remote producer should have routed around the failed leader.
        remote_acked = [r for r in remote_producer.reports if r.acknowledged]
        assert len(remote_acked) > 80
        remote_received = {
            key for key in consumer.received_keys("topicA") if str(key).startswith("remote-")
        }
        assert len(remote_received) > 80
