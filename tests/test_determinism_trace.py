"""Seeded-determinism trace regression test.

Runs a small broker + producer + consumer experiment twice with the same seed
and asserts the *full simulated trace* is identical: processed event count,
final clock, per-link delivered/dropped counters and client-side record
accounting.  This locks in the behavior-preservation claim of the simulator
fast path: optimizations may change wall-clock speed, never simulated results.
"""

from repro.broker.cluster import BrokerCluster, ClusterConfig
from repro.broker.consumer import ConsumerConfig
from repro.broker.message import ProducerRecord
from repro.broker.producer import ProducerConfig
from repro.broker.topic import TopicConfig
from repro.network.link import LinkConfig
from repro.network.topology import star_topology
from repro.simulation import Simulator

DURATION = 40.0


def run_trace(seed: int) -> dict:
    """One small seeded run; returns every observable counter of the trace."""
    sim = Simulator(seed=seed)
    network, _sites = star_topology(
        sim,
        3,
        link_config=LinkConfig(latency_ms=2.0, bandwidth_mbps=100.0, loss_percent=1.0),
    )
    cluster = BrokerCluster(network, coordinator_host="site1", config=ClusterConfig())
    cluster.add_broker("site1")
    cluster.add_broker("site2")
    cluster.add_topic(TopicConfig(name="events", replication_factor=2))
    cluster.start(settle_time=1.0)

    producer = cluster.create_producer(
        "site3", config=ProducerConfig(linger=0.05, request_timeout=1.0)
    )
    consumer = cluster.create_consumer(
        "site3", config=ConsumerConfig(poll_interval=0.1)
    )
    consumer.subscribe(["events"])

    rng = sim.rng("workload")

    def workload():
        yield sim.timeout(5.0)
        producer.start()
        consumer.start()
        for i in range(200):
            producer.send(ProducerRecord(topic="events", key=i, value=f"payload-{i}"))
            yield sim.timeout(rng.exponential(20.0))

    sim.process(workload(), name="workload")
    sim.run(until=DURATION)

    links = {}
    for link in network.links:
        links[link.name] = (
            link.packets_delivered,
            link.packets_dropped_loss,
            link.packets_dropped_down,
        )
    return {
        "processed_events": sim.processed_events,
        "final_clock": sim.now,
        "links": links,
        "records_sent": producer.records_sent,
        "records_acked": producer.records_acked,
        "records_failed": producer.records_failed,
        "records_consumed": consumer.records_consumed,
        "bytes_consumed": consumer.bytes_consumed,
        "consumed_keys": consumer.received_keys("events"),
        "metadata_version": producer.metadata.get("version"),
    }


def test_same_seed_produces_identical_trace():
    first = run_trace(seed=42)
    second = run_trace(seed=42)
    assert first == second
    # Sanity: the run exercised the full data plane (traffic actually flowed
    # and the lossy links dropped something, so the RNG path is covered too).
    assert first["records_consumed"] > 0
    assert first["processed_events"] > 1000
    assert sum(dropped for _, dropped, _ in first["links"].values()) > 0


def test_different_seeds_diverge():
    base = run_trace(seed=42)
    other = run_trace(seed=43)
    # The workload draws from the seeded RNG, so a different seed must change
    # the trace (guards against the RNG being silently unseeded/ignored).
    assert base["processed_events"] != other["processed_events"]
