"""Seeded-determinism trace regression tests.

Runs a small broker + producer + consumer experiment twice with the same seed
and asserts the *full simulated trace* is identical: processed event count,
final clock, per-link delivered/dropped counters and client-side record
accounting.  This locks in the behavior-preservation claim of the simulator
fast path: optimizations may change wall-clock speed, never simulated results.

Two golden tests additionally pin the trace and a figure output to values
captured on the *per-record-dict* wire format (pre RecordBatch, PR 1): the
batch-native record plane must reproduce those runs byte-for-byte.  If an
intentional behavior change ever breaks them, re-capture the constants and
say so in the PR.
"""

import pytest

from repro.broker.cluster import BrokerCluster, ClusterConfig
from repro.broker.consumer import ConsumerConfig
from repro.broker.message import ProducerRecord
from repro.broker.producer import ProducerConfig
from repro.broker.segment import default_log_backend
from repro.broker.topic import TopicConfig
from repro.network.link import LinkConfig
from repro.network.topology import star_topology
from repro.simulation import Simulator

# The goldens below were captured on the flat in-memory log layout.  Under
# ``--log-backend=segments`` fetch replies stop at 512-record segment
# boundaries, which changes simulated timing (not delivered data) — the
# byte-exact trace constants only hold on the memory backend.
pytestmark = pytest.mark.skipif(
    default_log_backend() == "segments",
    reason="determinism goldens are pinned to the flat memory log backend",
)

DURATION = 40.0


def run_trace(seed: int) -> dict:
    """One small seeded run; returns every observable counter of the trace."""
    sim = Simulator(seed=seed)
    network, _sites = star_topology(
        sim,
        3,
        link_config=LinkConfig(latency_ms=2.0, bandwidth_mbps=100.0, loss_percent=1.0),
    )
    cluster = BrokerCluster(network, coordinator_host="site1", config=ClusterConfig())
    cluster.add_broker("site1")
    cluster.add_broker("site2")
    cluster.add_topic(TopicConfig(name="events", replication_factor=2))
    cluster.start(settle_time=1.0)

    producer = cluster.create_producer(
        "site3", config=ProducerConfig(linger=0.05, request_timeout=1.0)
    )
    consumer = cluster.create_consumer(
        "site3", config=ConsumerConfig(poll_interval=0.1)
    )
    consumer.subscribe(["events"])

    rng = sim.rng("workload")

    def workload():
        yield sim.timeout(5.0)
        producer.start()
        consumer.start()
        for i in range(200):
            producer.send(ProducerRecord(topic="events", key=i, value=f"payload-{i}"))
            yield sim.timeout(rng.exponential(20.0))

    sim.process(workload(), name="workload")
    sim.run(until=DURATION)

    links = {}
    for link in network.links:
        links[link.name] = (
            link.packets_delivered,
            link.packets_dropped_loss,
            link.packets_dropped_down,
        )
    return {
        "processed_events": sim.processed_events,
        "final_clock": sim.now,
        "links": links,
        "records_sent": producer.records_sent,
        "records_acked": producer.records_acked,
        "records_failed": producer.records_failed,
        "records_consumed": consumer.records_consumed,
        "bytes_consumed": consumer.bytes_consumed,
        "consumed_keys": consumer.received_keys("events"),
        "metadata_version": producer.metadata.get("version"),
    }


def test_same_seed_produces_identical_trace():
    first = run_trace(seed=42)
    second = run_trace(seed=42)
    assert first == second
    # Sanity: the run exercised the full data plane (traffic actually flowed
    # and the lossy links dropped something, so the RNG path is covered too).
    assert first["records_consumed"] > 0
    assert first["processed_events"] > 1000
    assert sum(dropped for _, dropped, _ in first["links"].values()) > 0


def test_different_seeds_diverge():
    base = run_trace(seed=42)
    other = run_trace(seed=43)
    # The workload draws from the seeded RNG, so a different seed must change
    # the trace (guards against the RNG being silently unseeded/ignored).
    assert base["processed_events"] != other["processed_events"]


# -- golden locks (captured on the per-record wire format, pre RecordBatch) ---

#: run_trace(seed=42) observables on the PR 1 code.
GOLDEN_TRACE_SEED42 = {
    "processed_events": 14097,
    "final_clock": 40.0,
    "records_sent": 200,
    "records_acked": 200,
    "records_failed": 0,
    "records_consumed": 201,  # one duplicate delivery from a lossy-link retry
    "bytes_consumed": 4824,
    "metadata_version": 3,
    "links": {
        "site1:1<->s0:1": (1230, 11, 0),
        "site2:1<->s0:2": (606, 5, 0),
        "site3:1<->s0:3": (626, 7, 0),
    },
}


def test_trace_matches_pre_batch_golden():
    """The batch-native wire format replays the PR 1 trace byte-for-byte."""
    trace = run_trace(seed=42)
    consumed_keys = trace.pop("consumed_keys")
    assert trace == GOLDEN_TRACE_SEED42
    assert consumed_keys[:5] == [0, 1, 2, 3, 4]
    assert len(consumed_keys) == GOLDEN_TRACE_SEED42["records_consumed"]


def test_fig7b_figure_output_locked():
    """Figure outputs (mean runtimes, normalized series, input counts) are
    byte-identical to the pre-refactor capture for the same seed."""
    from repro.experiments.fig7b_traffic_monitoring import Fig7bConfig, run_fig7b

    result = run_fig7b(Fig7bConfig(user_counts=[20, 60], slots=10))
    assert result.input_records == {20: 200, 60: 600}
    assert repr(result.mean_runtime_s[20]) == "0.1625230502499999"
    assert repr(result.mean_runtime_s[60]) == "0.23757060875000002"
    assert repr(result.normalized[60]) == "1.4617656288419318"
