"""Tests for the zero-allocation fast path and its satellite fixes.

Covers ``Simulator.call_later`` semantics, link drop accounting, condition
fast paths, precomputed link shaping parameters, and transport pending-request
cleanup (late replies must neither leak memory nor resolve stale ids).
"""

import pytest

from repro.network import LinkConfig, Network
from repro.network.transport import RequestTimeout, Transport
from repro.simulation import Interrupt, Simulator
from repro.simulation.engine import EmptySchedule


def make_two_host_net(latency_ms=10.0, bandwidth_mbps=100.0, loss=0.0, seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_switch("s1")
    net.add_host("h1")
    net.add_host("h2")
    cfg = LinkConfig(latency_ms=latency_ms, bandwidth_mbps=bandwidth_mbps, loss_percent=loss)
    net.add_link("h1", "s1", cfg)
    net.add_link("h2", "s1", cfg)
    net.start(monitor=False)
    return sim, net


class TestCallLater:
    def test_runs_at_delay_with_args(self):
        sim = Simulator()
        fired = []
        sim.call_later(2.5, lambda a, b: fired.append((sim.now, a, b)), "x", 42)
        sim.run()
        assert fired == [(2.5, "x", 42)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.call_later(-0.1, lambda: None)

    def test_preserves_scheduling_order_at_same_time(self):
        sim = Simulator()
        order = []
        sim.call_later(1.0, order.append, "first")
        sim.timeout(1.0)
        sim.call_later(1.0, order.append, "second")
        sim.run()
        assert order == ["first", "second"]

    def test_counts_as_processed_event(self):
        sim = Simulator()
        sim.call_later(1.0, lambda: None)
        sim.run()
        assert sim.processed_events == 1

    def test_callback_may_schedule_more_work(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) < 5:
                sim.call_later(1.0, tick)

        sim.call_later(1.0, tick)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_step_dispatches_callbacks(self):
        sim = Simulator()
        fired = []
        sim.call_later(0.5, fired.append, "a")
        sim.step()
        assert fired == ["a"]
        with pytest.raises(EmptySchedule):
            sim.step()

    def test_run_until_idle_bounded_with_callbacks(self):
        sim = Simulator()
        seen = []
        for delay in (1.0, 2.0, 9.0):
            sim.call_later(delay, seen.append, delay)
        now = sim.run_until_idle(max_time=5.0)
        assert now == 5.0
        assert seen == [1.0, 2.0]


class TestConditionFastPaths:
    def test_any_of_with_already_processed_event(self):
        sim = Simulator()
        done = []

        def proc():
            fast = sim.timeout(1.0, value="fast")
            yield fast  # process it fully
            slow = sim.timeout(100.0, value="slow")
            result = yield sim.any_of([fast, slow])
            done.append((fast in result, slow in result, result[fast]))

        sim.process(proc())
        sim.run_until_idle(max_time=10.0)
        assert done == [(True, False, "fast")]

    def test_all_of_with_all_processed_events(self):
        sim = Simulator()
        done = []

        def proc():
            t1 = sim.timeout(1.0, value=1)
            t2 = sim.timeout(2.0, value=2)
            yield t1
            yield t2
            result = yield sim.all_of([t1, t2])
            done.append([result[t1], result[t2]])

        sim.process(proc())
        sim.run()
        assert done == [[1, 2]]

    def test_condition_value_membership_and_keyerror(self):
        sim = Simulator()
        outcome = {}

        def proc():
            t1 = sim.timeout(1.0, value="a")
            t2 = sim.timeout(5.0, value="b")
            result = yield sim.any_of([t1, t2])
            outcome["contains"] = (t1 in result, t2 in result)
            with pytest.raises(KeyError):
                result[t2]

        sim.process(proc())
        sim.run()
        assert outcome["contains"] == (True, False)


class TestLinkConfigDerived:
    def test_derived_values_follow_mutation(self):
        cfg = LinkConfig(latency_ms=10.0, bandwidth_mbps=100.0, loss_percent=0.0)
        assert cfg.latency_s == pytest.approx(0.010)
        assert cfg.loss_probability == 0.0
        # Fault injectors mutate the config mid-run; derived floats must track.
        cfg.loss_percent = 25.0
        cfg.latency_ms = 200.0
        cfg.bandwidth_mbps = 10.0
        assert cfg.loss_probability == pytest.approx(0.25)
        assert cfg.latency_s == pytest.approx(0.2)
        assert cfg.serialization_delay(1000) == pytest.approx(1000 * 8 / 10e6)

    def test_unshaped_bandwidth_gives_zero_delay(self):
        cfg = LinkConfig(bandwidth_mbps=None)
        assert cfg.serialization_delay(10**9) == 0.0


class TestLossDropAccounting:
    def test_random_loss_is_counted_on_port_stats(self):
        sim, net = make_two_host_net(loss=100.0)
        net.host("h2").bind(5000, lambda pkt: None)
        for _ in range(10):
            net.host("h1").send("h2", "x", size=10, dst_port=5000)
        sim.run()
        link = net.link_between("h1", "s1")
        assert link.packets_dropped_loss == 10
        # The loss path must account drops like the link-down path does.
        assert net.host("h1").port.stats.tx_dropped == 10

    def test_link_down_and_loss_accounting_agree(self):
        sim, net = make_two_host_net()
        link = net.link_between("h1", "s1")
        link.set_down()
        net.host("h1").send("h2", "x", size=10, dst_port=5000)
        sim.run()
        # Port.transmit refuses packets while the link is down.
        assert net.host("h1").port.stats.tx_dropped == 1


class TestTransportPendingCleanup:
    def _two_hosts(self):
        sim, net = make_two_host_net(latency_ms=5.0)
        client = Transport(net.host("h1"))
        server = Transport(net.host("h2"))
        return sim, net, client, server

    def test_late_reply_after_timeout_is_dropped(self):
        sim, net, client, server = self._two_hosts()

        def slow_handler(request):
            yield sim.timeout(1.0)  # far longer than the client's timeout
            return "late"

        server.register(80, slow_handler)
        outcomes = []

        def caller():
            try:
                yield from client.request("h2", 80, "ping", timeout=0.1, retries=0)
                outcomes.append("replied")
            except RequestTimeout:
                outcomes.append("timeout")

        sim.process(caller())
        sim.run_until_idle(max_time=30.0)
        assert outcomes == ["timeout"]
        # The late reply must not leak a pending entry or resolve a stale id.
        assert client._pending == {}
        assert client.requests_failed == 1

    def test_interrupted_request_leaves_no_pending_entry(self):
        sim, net, client, server = self._two_hosts()
        # No handler registered: the request would wait out its full timeout.

        def caller():
            try:
                yield from client.request("h2", 80, "ping", timeout=60.0, retries=0)
            except Interrupt:
                pass

        proc = sim.process(caller())

        def interrupter():
            yield sim.timeout(0.5)
            proc.interrupt("teardown")

        sim.process(interrupter())
        sim.run_until_idle(max_time=5.0)
        assert client._pending == {}

    def test_successful_request_cleans_up(self):
        sim, net, client, server = self._two_hosts()
        server.register(80, lambda request: {"pong": request.payload})
        results = []

        def caller():
            reply = yield from client.request("h2", 80, "hi")
            results.append(reply)

        sim.process(caller())
        sim.run_until_idle(max_time=10.0)
        assert results == [{"pong": "hi"}]
        assert client._pending == {}
