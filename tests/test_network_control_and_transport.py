"""Tests for the controller, topologies, fault injection and transport layer."""

import pytest

from repro.network import LinkConfig, Network, RequestTimeout, RemoteError, Transport
from repro.network.faults import FaultInjector, LinkFault, NodeDisconnection
from repro.network.topology import (
    TopologyBuilder,
    linear_topology,
    one_big_switch,
    star_topology,
)
from repro.network.transport import Request, Response
from repro.simulation import Simulator


class TestController:
    def test_routes_installed_for_all_hosts(self):
        sim = Simulator()
        net = one_big_switch(sim, ["h1", "h2", "h3"])
        switch = net.switches["s1"]
        assert set(switch.forwarding_table) == {"h1", "h2", "h3"}

    def test_multi_switch_path(self):
        sim = Simulator()
        net = linear_topology(sim, 3)
        path = net.controller.path_between("h1", "h3")
        assert path == ("h1", "s1", "s2", "s3", "h3")

    def test_delivery_across_multiple_switches(self):
        sim = Simulator()
        net = linear_topology(sim, 4, link_config=LinkConfig(latency_ms=1.0))
        got = []
        net.host("h4").bind(42, lambda pkt: got.append(pkt.payload))
        net.host("h1").send("h4", "far away", size=20, dst_port=42)
        sim.run()
        assert got == ["far away"]

    def test_reroute_after_link_failure(self):
        # Triangle of switches: traffic should survive one inter-switch failure.
        sim = Simulator()
        builder = TopologyBuilder()
        for s in ("s1", "s2", "s3"):
            builder.add_switch(s)
        builder.add_host("h1").add_host("h2")
        cfg = LinkConfig(latency_ms=1.0)
        builder.add_link("h1", "s1", cfg).add_link("h2", "s2", cfg)
        builder.add_link("s1", "s2", cfg).add_link("s2", "s3", cfg).add_link("s1", "s3", cfg)
        net = builder.build(sim)
        net.start(monitor=False)
        got = []
        net.host("h2").bind(7, lambda pkt: got.append(sim.now))

        def scenario():
            net.host("h1").send("h2", "before", size=10, dst_port=7)
            yield sim.timeout(1.0)
            net.link_between("s1", "s2").set_down()
            net.controller.handle_topology_change()
            net.host("h1").send("h2", "after", size=10, dst_port=7)

        sim.process(scenario())
        sim.run()
        assert len(got) == 2

    def test_reachability_matrix_under_partition(self):
        sim = Simulator()
        net = one_big_switch(sim, ["h1", "h2", "h3"])
        net.link_between("h3", "s1").set_down()
        matrix = net.controller.reachability()
        assert matrix["h1"]["h2"] is True
        assert matrix["h1"]["h3"] is False
        assert matrix["h3"]["h3"] is True

    def test_spanning_tree_routing_mode(self):
        sim = Simulator()
        net = Network(sim, routing="spanning-tree")
        net.add_switch("s1")
        net.add_switch("s2")
        net.add_host("h1")
        net.add_host("h2")
        cfg = LinkConfig(latency_ms=1.0)
        net.add_link("h1", "s1", cfg)
        net.add_link("h2", "s2", cfg)
        net.add_link("s1", "s2", cfg)
        net.start(monitor=False)
        got = []
        net.host("h2").bind(1, lambda pkt: got.append(pkt.payload))
        net.host("h1").send("h2", "ok", size=10, dst_port=1)
        sim.run()
        assert got == ["ok"]

    def test_invalid_routing_mode(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Network(sim, routing="magic")


class TestTopologies:
    def test_builder_validates_unknown_nodes(self):
        builder = TopologyBuilder()
        builder.add_host("h1")
        builder.add_link("h1", "ghost")
        with pytest.raises(ValueError, match="unknown node"):
            builder.validate()

    def test_builder_rejects_disconnected_graphs(self):
        builder = TopologyBuilder()
        builder.add_host("h1").add_host("h2")
        with pytest.raises(ValueError, match="not connected"):
            builder.validate()

    def test_builder_duplicate_names(self):
        builder = TopologyBuilder()
        builder.add_host("x")
        with pytest.raises(ValueError):
            builder.add_switch("x")

    def test_star_topology_shape(self):
        sim = Simulator()
        net, sites = star_topology(sim, 5)
        assert len(sites) == 5
        assert len(net.hosts) == 5
        assert len(net.links) == 5
        assert len(net.switches) == 1

    def test_star_topology_requires_positive_sites(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            star_topology(sim, 0)

    def test_one_big_switch_custom_link(self):
        sim = Simulator()
        net = one_big_switch(
            sim,
            ["h1", "h2"],
            link_configs={"h1": LinkConfig(latency_ms=150.0)},
        )
        assert net.link_between("h1", "s1").config.latency_ms == 150.0
        assert net.link_between("h2", "s1").config.latency_ms == 1.0


class TestFaultInjection:
    def test_scheduled_link_fault_and_recovery(self):
        sim = Simulator()
        net = one_big_switch(sim, ["h1", "h2"])
        injector = FaultInjector(net)
        injector.schedule_link_fault(LinkFault(endpoints=("h1", "s1"), start=5.0, duration=10.0))
        link = net.link_between("h1", "s1")

        states = {}

        def probe():
            yield sim.timeout(6.0)
            states["during"] = link.up
            yield sim.timeout(10.0)
            states["after"] = link.up

        sim.process(probe())
        sim.run(until=30.0)
        assert states == {"during": False, "after": True}
        actions = [event.action for event in injector.history()]
        assert actions == ["link-down", "link-up"]

    def test_node_disconnection_cuts_all_links(self):
        sim = Simulator()
        net, sites = star_topology(sim, 3)
        injector = FaultInjector(net)
        injector.schedule_node_disconnection(
            NodeDisconnection(node=sites[0], start=1.0, duration=2.0)
        )
        sim.run(until=1.5)
        assert all(not link.up for link in net.links_of(sites[0]))
        sim.run(until=4.0)
        assert all(link.up for link in net.links_of(sites[0]))

    def test_partition_between_groups(self):
        sim = Simulator()
        net = one_big_switch(sim, ["h1", "h2"])
        injector = FaultInjector(net)
        injector.partition(["h1"], ["s1"], start=0.5)
        sim.run(until=1.0)
        assert not net.link_between("h1", "s1").up
        assert net.link_between("h2", "s1").up

    def test_fault_validation(self):
        with pytest.raises(ValueError):
            LinkFault(endpoints=("a", "b"), start=-1.0)
        with pytest.raises(ValueError):
            LinkFault(endpoints=("a", "b"), start=0.0, duration=0.0)


class TestTransport:
    def _net(self, latency_ms=5.0, loss=0.0, seed=1):
        sim = Simulator(seed=seed)
        net = one_big_switch(
            sim,
            ["client", "server"],
            default_config=LinkConfig(latency_ms=latency_ms, loss_percent=loss),
        )
        client = Transport(net.host("client"))
        server = Transport(net.host("server"))
        return sim, net, client, server

    def test_request_response_roundtrip(self):
        sim, net, client, server = self._net()
        server.register(9000, lambda req: {"echo": req.payload})
        results = []

        def caller():
            response = yield from client.request("server", 9000, "ping")
            results.append((response, sim.now))

        sim.process(caller())
        sim.run()
        assert results[0][0] == {"echo": "ping"}
        # 4 link traversals at 5 ms each = at least 20 ms round trip.
        assert results[0][1] >= 0.020

    def test_generator_handler_takes_time(self):
        sim, net, client, server = self._net()

        def slow_handler(request):
            yield sim.timeout(1.0)
            return Response(payload="done", size=10)

        server.register(9000, slow_handler)
        results = []

        def caller():
            response = yield from client.request("server", 9000, "work", timeout=5.0)
            results.append((response, sim.now))

        sim.process(caller())
        sim.run()
        assert results[0][0] == "done"
        assert results[0][1] >= 1.0

    def test_timeout_and_retry_on_loss(self):
        # 100% loss: every attempt times out and RequestTimeout is raised.
        sim, net, client, server = self._net(loss=100.0)
        server.register(9000, lambda req: "never")
        outcome = []

        def caller():
            try:
                yield from client.request("server", 9000, "ping", timeout=0.2, retries=2)
            except RequestTimeout:
                outcome.append(("timeout", sim.now))

        sim.process(caller())
        sim.run()
        assert outcome and outcome[0][0] == "timeout"
        assert outcome[0][1] == pytest.approx(0.6, rel=0.05)
        assert client.requests_retried == 2
        assert client.requests_failed == 1

    def test_retry_recovers_from_transient_loss(self):
        # 10% per-hop loss (four hops per round trip) with retries should
        # still deliver every request.
        sim, net, client, server = self._net(loss=10.0, seed=11)
        server.register(9000, lambda req: "pong")
        successes = []

        def caller(i):
            response = yield from client.request(
                "server", 9000, f"ping{i}", timeout=0.5, retries=5
            )
            successes.append(response)

        for i in range(10):
            sim.process(caller(i))
        sim.run()
        assert len(successes) == 10

    def test_remote_error_propagates(self):
        sim, net, client, server = self._net()

        def bad_handler(request):
            raise ValueError("bad request")

        server.register(9000, bad_handler)
        errors = []

        def caller():
            try:
                yield from client.request("server", 9000, "x")
            except RemoteError as exc:
                errors.append(str(exc))

        sim.process(caller())
        sim.run()
        assert errors and "bad request" in errors[0]

    def test_notify_is_one_way(self):
        sim, net, client, server = self._net()
        seen = []
        server.register(9000, lambda req: seen.append(req.payload))
        client.notify("server", 9000, {"metric": 1})
        sim.run()
        assert seen == [{"metric": 1}]

    def test_reserved_port_rejected(self):
        sim, net, client, server = self._net()
        with pytest.raises(ValueError):
            server.register(60000, lambda req: None)

    def test_request_event_fanout(self):
        sim, net, client, server = self._net()
        server.register(9000, lambda req: req.payload * 2)
        results = []

        def caller():
            events = [
                client.request_event("server", 9000, i) for i in range(3)
            ]
            outcome = yield sim.all_of(events)
            results.extend(sorted(outcome[e] for e in events))

        sim.process(caller())
        sim.run()
        assert results == [0, 2, 4]
