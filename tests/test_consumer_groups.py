"""Consumer groups and the partition-aware data plane, end to end.

Covers the acceptance contract of the sharded-topics refactor:

* deterministic range / round-robin assignment (pure functions of sorted
  members and sorted partitions);
* a 4-partition topic with a 4-member group delivers every produced record
  exactly once per group, per-key order preserved, and the whole observable
  trace is bitwise-identical across same-seed runs;
* rebalance on graceful member stop (leave commits offsets: no loss, no
  re-delivery) and on broker failure (elections + generation bump, every log
  position still consumed exactly once per group);
* per-partition ``seek``/``position``;
* manual assignment and the sharded SPE ingest plane (one source instance
  per partition, merged deterministically, per-key order across operators).
"""

import pytest

from repro.broker.cluster import BrokerCluster, ClusterConfig
from repro.broker.consumer import ConsumerConfig
from repro.broker.coordinator import assign_range, assign_roundrobin
from repro.broker.message import ProducerRecord
from repro.broker.producer import ProducerConfig
from repro.broker.topic import TopicConfig
from repro.network.link import LinkConfig
from repro.network.topology import one_big_switch, star_topology
from repro.simulation import Simulator


# -- assignors are deterministic pure functions --------------------------------------


class TestAssignors:
    def test_range_contiguous_chunks_with_remainder_to_first_members(self):
        members = {"m-b": ["t"], "m-a": ["t"]}
        partitions = {"t": [f"t-{p}" for p in range(5)]}
        assignment = assign_range(members, partitions)
        # Sorted member order: m-a first, so it gets the extra partition.
        assert assignment == {"m-a": ["t-0", "t-1", "t-2"], "m-b": ["t-3", "t-4"]}

    def test_roundrobin_deals_partitions_cyclically(self):
        members = {"m2": ["t"], "m1": ["t"], "m3": ["t"]}
        partitions = {"t": [f"t-{p}" for p in range(5)]}
        assignment = assign_roundrobin(members, partitions)
        assert assignment == {"m1": ["t-0", "t-3"], "m2": ["t-1", "t-4"], "m3": ["t-2"]}

    def test_assignors_ignore_unsubscribed_topics(self):
        members = {"m1": ["a"], "m2": ["a", "b"]}
        partitions = {"a": ["a-0", "a-1"], "b": ["b-0"]}
        for assignor in (assign_range, assign_roundrobin):
            assignment = assignor(members, partitions)
            assert "b-0" in assignment["m2"]
            assert all(not key.startswith("b") for key in assignment["m1"])

    def test_assignment_independent_of_dict_order(self):
        partitions = {"t": [f"t-{p}" for p in range(7)]}
        forward = assign_range({f"m{i}": ["t"] for i in range(4)}, partitions)
        backward = assign_range({f"m{i}": ["t"] for i in reversed(range(4))}, partitions)
        assert forward == backward


# -- the 4-partition / 4-member acceptance scenario -----------------------------------


def run_group_trace(seed: int, n_records: int = 300, n_keys: int = 23) -> dict:
    """One seeded 4-partition, 4-member group run; returns all observables."""
    sim = Simulator(seed=seed)
    network = one_big_switch(
        sim,
        ["broker", "c0", "c1", "c2", "c3", "source"],
        default_config=LinkConfig(latency_ms=1.0, bandwidth_mbps=1000.0),
    )
    cluster = BrokerCluster(network, coordinator_host="broker", config=ClusterConfig())
    cluster.add_broker("broker")
    cluster.add_topic(TopicConfig(name="events", partitions=4))
    cluster.start(settle_time=1.0)

    producer = cluster.create_producer("source", config=ProducerConfig(linger=0.01))
    members = []
    for index in range(4):
        member = cluster.create_consumer(
            f"c{index}",
            config=ConsumerConfig(group="workers", poll_interval=0.05),
            name=f"member-{index}",
        )
        member.subscribe(["events"])
        members.append(member)

    rng = sim.rng("group-workload")

    def drive():
        yield sim.timeout(3.0)
        producer.start()
        for member in members:
            member.start()
        # Let the group stabilize (4 joins) before traffic flows, like a
        # deployed group that subscribes before the producers ramp up.
        yield sim.timeout(5.0)
        for i in range(n_records):
            producer.send(
                ProducerRecord(topic="events", key=f"k{i % n_keys}", value=i)
            )
            if i % 25 == 24:
                yield sim.timeout(rng.exponential(20.0))

    sim.process(drive(), name="group-drive")
    sim.run(until=40.0)

    group = cluster.coordinator.group_state("workers")
    per_member = {
        member.name: [
            (record.partition, record.offset, record.key, record.value)
            for record in member.received
        ]
        for member in members
    }
    return {
        "processed_events": sim.processed_events,
        "acked": producer.records_acked,
        "assignments": {member.name: member.assignment() for member in members},
        "generations": sorted({member.generation for member in members}),
        "group_generation": group.generation,
        "committed": dict(group.committed),
        "per_member": per_member,
    }


class TestGroupExactlyOnce:
    def setup_method(self):
        self.trace = run_group_trace(seed=7)

    def test_every_record_consumed_exactly_once_per_group(self):
        trace = self.trace
        assert trace["acked"] == 300
        consumed = [
            entry for records in trace["per_member"].values() for entry in records
        ]
        assert len(consumed) == 300
        # No (partition, offset) consumed twice, no value seen twice.
        positions = [(partition, offset) for partition, offset, _, _ in consumed]
        assert len(set(positions)) == 300
        values = sorted(value for _, _, _, value in consumed)
        assert values == list(range(300))

    def test_one_partition_per_member_and_committed_offsets_cover_log(self):
        trace = self.trace
        assignments = trace["assignments"]
        owned = [key for keys in assignments.values() for key in keys]
        assert sorted(owned) == [f"events-{p}" for p in range(4)]
        assert all(len(keys) == 1 for keys in assignments.values())
        # Heartbeat-committed offsets account for the full consumed log.
        assert sum(trace["committed"].values()) == 300

    def test_per_key_order_preserved_across_sharding(self):
        for records in self.trace["per_member"].values():
            by_key = {}
            for _, _, key, value in records:
                by_key.setdefault(key, []).append(value)
            for values in by_key.values():
                assert values == sorted(values)

    def test_trace_bitwise_identical_for_identical_seed(self):
        assert run_group_trace(seed=7) == self.trace

    def test_different_seed_changes_the_trace(self):
        assert run_group_trace(seed=8)["processed_events"] != self.trace["processed_events"]


# -- rebalance on graceful member stop ------------------------------------------------


def test_rebalance_on_member_stop_no_loss_no_redelivery():
    sim = Simulator(seed=5)
    network = one_big_switch(
        sim,
        ["broker", "c0", "c1", "source"],
        default_config=LinkConfig(latency_ms=1.0, bandwidth_mbps=1000.0),
    )
    cluster = BrokerCluster(network, coordinator_host="broker", config=ClusterConfig())
    cluster.add_broker("broker")
    cluster.add_topic(TopicConfig(name="events", partitions=4))
    cluster.start(settle_time=1.0)
    producer = cluster.create_producer("source", config=ProducerConfig(linger=0.01))
    members = []
    for index in range(2):
        member = cluster.create_consumer(
            f"c{index}",
            config=ConsumerConfig(group="g", poll_interval=0.05),
            name=f"member-{index}",
        )
        member.subscribe(["events"])
        members.append(member)

    def drive():
        yield sim.timeout(3.0)
        producer.start()
        for member in members:
            member.start()
        yield sim.timeout(4.0)
        for i in range(200):
            producer.send(ProducerRecord(topic="events", key=f"k{i % 13}", value=i))
            if i == 99:
                # Mid-stream, member-1 leaves gracefully (commits its offsets).
                members[1].stop()
                yield sim.timeout(2.0)
            elif i % 20 == 19:
                yield sim.timeout(0.1)

    sim.process(drive())
    sim.run(until=45.0)

    group = cluster.coordinator.group_state("g")
    assert "member-1" not in group.members
    # The survivor inherited every partition.
    assert members[0].assignment() == [f"events-{p}" for p in range(4)]
    events = [e for e in cluster.coordinator.event_log if e["event"] == "group-rebalance"]
    assert any(e["reason"] == "member-left" for e in events)
    consumed = [
        (record.partition, record.offset, record.value)
        for member in members
        for record in member.received
    ]
    # Exactly once per group across the membership change: the leaving
    # member's committed offsets hand its partitions over without gaps or
    # re-delivery.
    assert len(consumed) == 200
    assert len({(partition, offset) for partition, offset, _ in consumed}) == 200
    assert sorted(value for _, _, value in consumed) == list(range(200))


# -- rebalance and continuity across a broker failure ---------------------------------


def test_group_rides_through_broker_failure():
    sim = Simulator(seed=11)
    network, sites = star_topology(
        sim, 5, link_config=LinkConfig(latency_ms=1.0, bandwidth_mbps=1000.0)
    )
    cluster = BrokerCluster(
        network,
        coordinator_host=sites[0],
        config=ClusterConfig(session_timeout=3.0),
    )
    cluster.add_broker(sites[1])
    cluster.add_broker(sites[2])
    cluster.add_topic(TopicConfig(name="events", partitions=4, replication_factor=2))
    cluster.start(settle_time=1.0)
    producer = cluster.create_producer(
        sites[3], config=ProducerConfig(linger=0.01, acks="all", request_timeout=1.0)
    )
    members = []
    for index in (3, 4):
        member = cluster.create_consumer(
            sites[index],
            config=ConsumerConfig(group="g", poll_interval=0.05),
            name=f"member-{index}",
        )
        member.subscribe(["events"])
        members.append(member)
    doomed = cluster.brokers[f"broker-{sites[2]}"]

    def drive():
        yield sim.timeout(3.0)
        producer.start()
        for member in members:
            member.start()
        yield sim.timeout(5.0)
        for i in range(100):
            producer.send(ProducerRecord(topic="events", key=f"k{i % 11}", value=i))
        yield sim.timeout(10.0)
        doomed.stop()  # crash: no heartbeats, session expires, leaders move
        yield sim.timeout(15.0)
        for i in range(100, 200):
            producer.send(ProducerRecord(topic="events", key=f"k{i % 11}", value=i))

    sim.process(drive())
    sim.run(until=90.0)

    coordinator = cluster.coordinator
    # The failed broker led at least one of the rotated partitions, so the
    # failure triggered per-partition elections...
    elections = [e for e in coordinator.elections if e.reason == "leader-failure"]
    assert elections
    # ...and bumped the group generation so members re-synced promptly.
    events = [e for e in coordinator.event_log if e["event"] == "group-rebalance"]
    assert any(e["reason"] == "broker-failure" for e in events)
    assert all(member.generation == coordinator.group_state("g").generation
               for member in members)
    # Every acknowledged record survives the failover (acks=all) and every
    # log position is consumed exactly once per group.
    consumed = [
        (record.partition, record.offset, record.value)
        for member in members
        for record in member.received
    ]
    positions = [(partition, offset) for partition, offset, _ in consumed]
    assert len(positions) == len(set(positions))
    acked_values = {i for i in range(200)} - {
        report.sequence for report in producer.reports if not report.acknowledged
    }
    assert acked_values <= {value for _, _, value in consumed}


# -- seek / position generalize per partition -----------------------------------------


def test_seek_and_position_per_partition():
    sim = Simulator(seed=3)
    network = one_big_switch(
        sim,
        ["broker", "sink", "source"],
        default_config=LinkConfig(latency_ms=1.0, bandwidth_mbps=1000.0),
    )
    cluster = BrokerCluster(network, coordinator_host="broker", config=ClusterConfig())
    cluster.add_broker("broker")
    cluster.add_topic(TopicConfig(name="events", partitions=3))
    cluster.start(settle_time=1.0)
    producer = cluster.create_producer("source", config=ProducerConfig(linger=0.01))
    consumer = cluster.create_consumer(
        "sink", config=ConsumerConfig(poll_interval=0.05)
    )
    consumer.subscribe(["events"])

    def drive():
        yield sim.timeout(3.0)
        producer.start()
        for i in range(90):
            # Explicit partition: 30 records in each of the three partitions.
            producer.send(ProducerRecord(topic="events", value=i, partition=i % 3))
        yield sim.timeout(5.0)
        consumer.start()

    sim.process(drive())
    sim.run(until=20.0)
    assert consumer.records_consumed == 90
    assert [consumer.position("events", p) for p in range(3)] == [30, 30, 30]

    # Rewind only partition 1 and drain again: exactly that partition's
    # records re-deliver, the other positions stay put.
    before = consumer.records_consumed
    consumer.seek("events", 1, 10)
    assert consumer.position("events", 1) == 10
    sim.run(until=30.0)
    assert consumer.records_consumed == before + 20
    assert [consumer.position("events", p) for p in range(3)] == [30, 30, 30]


# -- manual assignment ----------------------------------------------------------------


def test_manual_assignment_splits_partitions_without_a_group():
    sim = Simulator(seed=9)
    network = one_big_switch(
        sim,
        ["broker", "a", "b", "source"],
        default_config=LinkConfig(latency_ms=1.0, bandwidth_mbps=1000.0),
    )
    cluster = BrokerCluster(network, coordinator_host="broker", config=ClusterConfig())
    cluster.add_broker("broker")
    cluster.add_topic(TopicConfig(name="events", partitions=4))
    cluster.start(settle_time=1.0)
    producer = cluster.create_producer("source", config=ProducerConfig(linger=0.01))
    left = cluster.create_consumer("a", config=ConsumerConfig(poll_interval=0.05))
    left.assign("events", [0, 1])
    right = cluster.create_consumer("b", config=ConsumerConfig(poll_interval=0.05))
    right.assign("events", [2, 3])

    def drive():
        yield sim.timeout(3.0)
        producer.start()
        left.start()
        right.start()
        yield sim.timeout(2.0)
        for i in range(120):
            producer.send(ProducerRecord(topic="events", key=f"k{i % 19}", value=i))

    sim.process(drive())
    sim.run(until=20.0)
    assert left.assignment() == ["events-0", "events-1"]
    assert right.assignment() == ["events-2", "events-3"]
    assert {record.partition for record in left.received} <= {0, 1}
    assert {record.partition for record in right.received} <= {2, 3}
    values = sorted(
        record.value for consumer in (left, right) for record in consumer.received
    )
    assert values == list(range(120))


def test_manual_assign_rejects_group_mode():
    sim = Simulator(seed=1)
    network = one_big_switch(
        sim, ["broker"], default_config=LinkConfig(latency_ms=1.0, bandwidth_mbps=1000.0)
    )
    cluster = BrokerCluster(network, coordinator_host="broker", config=ClusterConfig())
    cluster.add_broker("broker")
    consumer = cluster.create_consumer(
        "broker", config=ConsumerConfig(group="g")
    )
    with pytest.raises(RuntimeError, match="manual assign"):
        consumer.assign("events", [0])


# -- producer placement under deferred metadata ---------------------------------------


def test_pre_metadata_keyed_sends_colocate_with_later_sends():
    """Keyed records sent before the first metadata refresh wait for the real
    partition count instead of being hashed against a guess — one key never
    splits across partitions."""
    sim = Simulator(seed=2)
    network = one_big_switch(
        sim,
        ["broker", "sink", "source"],
        default_config=LinkConfig(latency_ms=1.0, bandwidth_mbps=1000.0),
    )
    cluster = BrokerCluster(network, coordinator_host="broker", config=ClusterConfig())
    cluster.add_broker("broker")
    cluster.add_topic(TopicConfig(name="events", partitions=4))
    cluster.start(settle_time=1.0)
    producer = cluster.create_producer("source", config=ProducerConfig(linger=0.02))
    consumer = cluster.create_consumer("sink", config=ConsumerConfig(poll_interval=0.05))
    consumer.subscribe(["events"])

    def drive():
        yield sim.timeout(2.0)
        producer.start()
        consumer.start()
        # Same keys before the metadata reply arrives and well after it.
        for i in range(20):
            producer.send(ProducerRecord(topic="events", key=f"k{i % 5}", value=i))
        yield sim.timeout(3.0)
        for i in range(20, 40):
            producer.send(ProducerRecord(topic="events", key=f"k{i % 5}", value=i))

    sim.process(drive())
    sim.run(until=15.0)
    assert consumer.records_consumed == 40
    partitions_by_key = {}
    for record in consumer.received:
        partitions_by_key.setdefault(record.key, set()).add(record.partition)
    assert all(len(partitions) == 1 for partitions in partitions_by_key.values())
    assert len({p for parts in partitions_by_key.values() for p in parts}) > 1


def test_unknown_topic_send_fails_at_delivery_timeout():
    """A record for a topic that never appears in the metadata still fails at
    ``delivery_timeout`` (it must not park forever awaiting placement)."""
    sim = Simulator(seed=2)
    network = one_big_switch(
        sim,
        ["broker", "source"],
        default_config=LinkConfig(latency_ms=1.0, bandwidth_mbps=1000.0),
    )
    cluster = BrokerCluster(network, coordinator_host="broker", config=ClusterConfig())
    cluster.add_broker("broker")
    cluster.add_topic(TopicConfig(name="events"))
    cluster.start(settle_time=1.0)
    producer = cluster.create_producer(
        "source", config=ProducerConfig(linger=0.02, delivery_timeout=5.0)
    )

    def drive():
        yield sim.timeout(2.0)
        producer.start()
        producer.send(ProducerRecord(topic="no-such-topic", key="k", value=1))

    sim.process(drive())
    sim.run(until=20.0)
    assert producer.records_failed == 1
    assert producer.reports[0].failed_at is not None
    assert producer.flush_pending() == 0


# -- the partition-aware SPE ingest plane ---------------------------------------------


def run_sharded_spe_trace(seed: int, partitions: int = 4) -> dict:
    """Produce keyed records into a sharded topic; consume via one SPE source
    instance per partition with a repartition-by-key stage."""
    from repro.engine import StreamingConfig, StreamingContext

    sim = Simulator(seed=seed)
    network = one_big_switch(
        sim,
        ["broker", "spark", "source"],
        default_config=LinkConfig(latency_ms=1.0, bandwidth_mbps=1000.0),
    )
    cluster = BrokerCluster(network, coordinator_host="broker", config=ClusterConfig())
    cluster.add_broker("broker")
    cluster.add_topic(TopicConfig(name="events", partitions=partitions))
    cluster.start(settle_time=1.0)
    producer = cluster.create_producer("source", config=ProducerConfig(linger=0.01))

    ctx = StreamingContext(
        network.host("spark"),
        config=StreamingConfig(batch_interval=0.5),
        cluster=cluster,
        name="sharded-spe",
    )
    stream = ctx.sharded_kafka_stream("events", partitions=list(range(partitions)))
    seen = []
    stream.repartition_by_key().to_callback(
        lambda record, now: seen.append((record.key, record.value))
    )

    def drive():
        yield sim.timeout(3.0)
        producer.start()
        ctx.start()
        yield sim.timeout(1.0)
        for i in range(150):
            producer.send(ProducerRecord(topic="events", key=f"k{i % 7}", value=i))
            if i % 30 == 29:
                yield sim.timeout(0.3)

    sim.process(drive())
    sim.run(until=20.0)
    return {"seen": list(seen), "ingested": ctx.total_input_records()}


def test_sharded_spe_ingest_preserves_per_key_order():
    trace = run_sharded_spe_trace(seed=21)
    assert trace["ingested"] == 150
    assert len(trace["seen"]) == 150
    by_key = {}
    for key, value in trace["seen"]:
        by_key.setdefault(key, []).append(value)
    assert len(by_key) == 7
    for values in by_key.values():
        # Keyed partitioning puts one key on one partition; partition FIFO +
        # deterministic merge + stable repartition keep per-key send order.
        assert values == sorted(values)


def test_sharded_spe_ingest_deterministic_per_seed():
    assert run_sharded_spe_trace(seed=21) == run_sharded_spe_trace(seed=21)


# -- fig6's multi-partition arm -------------------------------------------------------


def test_fig6_multi_partition_arm_elects_per_partition():
    """The partition-fault study at partitions=3: round-robin placement
    spreads topic A's partition leaders across sites, the pinned site still
    leads partition 0, and its failure triggers exactly that partition's
    election — the fault's loss surface stays confined under sharding."""
    from repro.broker.coordinator import CoordinationMode
    from repro.experiments.fig6_partition import Fig6Config, run_fig6

    config = Fig6Config(
        n_sites=4,
        duration=120.0,
        disconnect_start=40.0,
        disconnect_duration=30.0,
        mode=CoordinationMode.ZOOKEEPER,
        partitions=3,
        seed=3,
    )
    result = run_fig6(config)
    led = f"broker-site{config.leader_site_index}"
    created = {
        event["partition"]: event["leader"]
        for event in result.events
        if event.get("event") == "partition-created"
    }
    topic_a_leaders = [created[f"topicA-{p}"] for p in range(3)]
    assert topic_a_leaders[0] == led  # preferred leader pins partition 0
    assert len(set(topic_a_leaders)) >= 2  # rotation spreads the other leads
    elections = [e for e in result.events if e.get("event") == "leader-elected"]
    failed_partitions = {e["partition"] for e in elections if e["old_leader"] == led}
    assert "topicA-0" in failed_partitions
    assert result.messages_consumed > 0


def test_eager_join_at_least_once_window_is_at_most_one_heartbeat():
    """Regression lock for the documented eager-join delivery window.

    ``docs/partitioning.md`` claims: a member joining mid-consumption opens
    an at-least-once window, because assignment is handed out eagerly (not
    revoke-before-assign) and the old owner only discovers the rebalance on
    its next heartbeat — so re-delivery is bounded by one heartbeat interval.
    This test pins all three halves of that claim: (1) nothing is lost,
    (2) re-deliveries happen only on the partitions that changed owner, and
    (3) the old owner stops fetching a reassigned partition within one
    heartbeat interval (plus one in-flight fetch) of the rebalance.
    """
    heartbeat = 1.0
    sim = Simulator(seed=5)
    network = one_big_switch(
        sim,
        ["broker", "a", "b", "source"],
        default_config=LinkConfig(latency_ms=1.0, bandwidth_mbps=1000.0),
    )
    cluster = BrokerCluster(network, coordinator_host="broker", config=ClusterConfig())
    cluster.add_broker("broker")
    cluster.add_topic(TopicConfig(name="events", partitions=2))
    cluster.start(settle_time=1.0)
    producer = cluster.create_producer("source", config=ProducerConfig(linger=0.01))

    def make_member(host, name):
        member = cluster.create_consumer(
            host,
            config=ConsumerConfig(
                group="workers",
                poll_interval=0.05,
                group_heartbeat_interval=heartbeat,
            ),
            name=name,
        )
        member.subscribe(["events"])
        return member

    veteran = make_member("a", "member-a")
    joiner = make_member("b", "member-b")
    n_records = 500
    join_at = 11.0

    def drive():
        yield sim.timeout(3.0)
        producer.start()
        veteran.start()
        yield sim.timeout(2.0)
        for i in range(n_records):
            producer.send(ProducerRecord(topic="events", key=f"k{i % 7}", value=i))
            yield sim.timeout(0.02)

    def late_join():
        yield sim.timeout(join_at)
        joiner.start()

    sim.process(drive())
    sim.process(late_join())
    sim.run(until=35.0)

    assert producer.records_acked == n_records
    # The joiner really did take partitions over mid-consumption.
    taken = set(joiner.assignment() or ())
    assert taken and taken < {"events-0", "events-1"}
    rebalance_time = next(
        event["time"]
        for event in cluster.coordinator.event_log
        if event["event"] == "group-rebalance"
        and event["reason"] == "member-joined"
        and "member-b" in event["members"]
    )

    deliveries = {}
    for member in (veteran, joiner):
        for record in member.received:
            key = (record.partition, record.offset)
            deliveries.setdefault(key, []).append((member.name, record.received_at))
    # (1) At-least-once: every produced log position was delivered.
    produced_positions = {
        (int(partition_key.rsplit("-", 1)[1]), offset)
        for partition_key, log in cluster.brokers["broker-broker"].logs.items()
        if partition_key.startswith("events-")
        for offset in range(log.log_end_offset)
    }
    missing = produced_positions - set(deliveries)
    assert missing == set(), f"lost positions: {sorted(missing)[:5]}"
    # (2) The window is real (commits trail consumption) but confined to the
    # partitions that changed owner.
    duplicated = {key for key, owners in deliveries.items() if len(owners) > 1}
    assert duplicated, "expected re-deliveries inside the eager-join window"
    taken_partitions = {int(key.rsplit("-", 1)[1]) for key in taken}
    assert {partition for partition, _ in duplicated} <= taken_partitions
    # (3) ...and closes within one heartbeat (+ one in-flight fetch) of the
    # rebalance: after that, the old owner never delivers from a partition
    # it no longer owns.
    fetch_slack = 0.25
    veteran_tail = max(
        (
            record.received_at
            for record in veteran.received
            if record.partition in taken_partitions
        ),
        default=0.0,
    )
    assert veteran_tail <= rebalance_time + heartbeat + fetch_slack, (
        f"old owner kept delivering {veteran_tail - rebalance_time:.2f}s past "
        f"the rebalance (heartbeat={heartbeat})"
    )
