"""Transactional produce: state machine, markers, LSO, fencing, isolation.

Pins the mechanisms behind atomic multi-partition commits (see
``docs/exactly_once.md``): the coordinator's per-transactional-id state
machine and marker fan-out, the partition log's control records /
last-stable-offset / aborted-transaction index, the producer's
begin/commit/abort API, and the consumer's ``read_committed`` isolation
level.  The seeded transactional chaos matrix lives in
``tests/test_chaos_exactly_once.py``; this file proves each piece alone.
"""

import pytest

from repro.broker import (
    BrokerCluster,
    ClusterConfig,
    CoordinationMode,
    ConsumerConfig,
    ProducerConfig,
    ProducerRecord,
    TopicConfig,
)
from repro.broker.batch import RecordBatch
from repro.broker.coordinator import TransactionState
from repro.broker.errors import (
    DeliveryFailed,
    InvalidTxnStateError,
    ProducerFencedError,
)
from repro.broker.log import PartitionLog
from repro.network.link import LinkConfig
from repro.network.topology import star_topology
from repro.simulation import Simulator


def build_cluster(
    n_sites=3,
    partitions=2,
    replication=2,
    mode=CoordinationMode.ZOOKEEPER,
    seed=1,
    session_timeout=6.0,
    preferred_leader=None,
    transaction_timeout=60.0,
):
    sim = Simulator(seed=seed)
    network, sites = star_topology(
        sim, n_sites, link_config=LinkConfig(latency_ms=2.0, bandwidth_mbps=100.0)
    )
    cluster = BrokerCluster(
        network,
        coordinator_host=sites[0],
        config=ClusterConfig(
            mode=mode,
            session_timeout=session_timeout,
            transaction_timeout=transaction_timeout,
        ),
    )
    for site in sites:
        cluster.add_broker(site)
    cluster.add_topic(
        TopicConfig(
            name="topicA",
            partitions=partitions,
            replication_factor=replication,
            preferred_leader=preferred_leader,
        )
    )
    cluster.start(settle_time=2.0)
    return sim, network, sites, cluster


# ---------------------------------------------------------------------------
# Transaction state machine
# ---------------------------------------------------------------------------
class TestTransactionStateMachine:
    def test_full_commit_and_abort_cycles_are_legal(self):
        txn = TransactionState("tx", producer_id=0, producer_epoch=0)
        for state in ("Ongoing", "PrepareCommit", "CompleteCommit", "Ongoing",
                      "PrepareAbort", "CompleteAbort", "Ongoing"):
            txn.transition(state)
        assert txn.state == "Ongoing"

    @pytest.mark.parametrize(
        "path",
        [
            ("PrepareCommit",),  # end before begin
            ("Ongoing", "CompleteCommit"),  # skip the prepare stage
            ("Ongoing", "PrepareCommit", "PrepareAbort"),  # flip mid-commit
            ("Ongoing", "PrepareCommit", "CompleteAbort"),  # cross outcomes
            ("Ongoing", "PrepareAbort", "CompleteCommit"),
            ("Ongoing", "Ongoing"),  # nested begin
        ],
    )
    def test_illegal_transitions_raise(self, path):
        txn = TransactionState("tx", producer_id=0, producer_epoch=0)
        with pytest.raises(InvalidTxnStateError):
            for state in path:
                txn.transition(state)


# ---------------------------------------------------------------------------
# Coordinator handlers
# ---------------------------------------------------------------------------
class TestCoordinatorTransactions:
    def test_init_with_transactional_id_creates_empty_transaction(self):
        sim, network, sites, cluster = build_cluster()
        coordinator = cluster.coordinator
        reply = coordinator._handle_init_producer_id({"transactional_id": "tx1"})
        assert reply["error"] is None
        txn = coordinator.transaction_state("tx1")
        assert txn.state == "Empty"
        assert (txn.producer_id, txn.producer_epoch) == (
            reply["producer_id"], reply["producer_epoch"]
        )
        # The registry is keyed by the transactional id, not the instance
        # name: a restarted producer with a new name still fences its
        # predecessor.
        again = coordinator._handle_init_producer_id(
            {"transactional_id": "tx1", "name": "other-instance"}
        )
        assert again["producer_id"] == reply["producer_id"]
        assert again["producer_epoch"] == reply["producer_epoch"] + 1

    def test_reinit_aborts_the_predecessors_open_transaction(self):
        sim, network, sites, cluster = build_cluster()
        sim.run(until=8.0)  # brokers registered, topic created
        coordinator = cluster.coordinator
        first = coordinator._handle_init_producer_id({"transactional_id": "tx1"})
        coordinator._handle_add_partitions_to_txn(
            {"transactional_id": "tx1", "producer_id": first["producer_id"],
             "producer_epoch": first["producer_epoch"], "partitions": ["topicA-0"]}
        )
        assert coordinator.transaction_state("tx1").state == "Ongoing"
        second = coordinator._handle_init_producer_id({"transactional_id": "tx1"})
        txn = coordinator.transaction_state("tx1")
        assert txn.state == "PrepareAbort"
        assert txn.producer_epoch == second["producer_epoch"]
        sim.run(until=sim.now + 5.0)  # marker fan-out completes
        assert txn.state == "CompleteAbort"
        assert coordinator.txn_metrics["transactions_aborted"] == 1
        # The abort marker carries the *bumped* epoch: partition leaders now
        # fence the zombie's in-flight data batches.
        log = cluster.leader_broker("topicA", 0).log_for("topicA", 0)
        entry = log.producer_entry(first["producer_id"])
        assert entry.epoch == second["producer_epoch"]
        assert log.check_producer_batch(
            first["producer_id"], first["producer_epoch"], 0
        ) == "fenced"

    def test_add_partitions_requires_matching_producer(self):
        sim, network, sites, cluster = build_cluster()
        coordinator = cluster.coordinator
        reply = coordinator._handle_init_producer_id({"transactional_id": "tx1"})
        unknown = coordinator._handle_add_partitions_to_txn(
            {"transactional_id": "nope", "producer_id": 0, "producer_epoch": 0}
        )
        assert unknown["error"] == "invalid_txn_state"
        stale = coordinator._handle_add_partitions_to_txn(
            {"transactional_id": "tx1", "producer_id": reply["producer_id"],
             "producer_epoch": reply["producer_epoch"] - 1,
             "partitions": ["topicA-0"]}
        )
        assert stale["error"] == "producer_fenced"
        assert coordinator.transaction_state("tx1").state == "Empty"

    def test_add_partitions_accumulates_sorted_unique(self):
        sim, network, sites, cluster = build_cluster()
        coordinator = cluster.coordinator
        reply = coordinator._handle_init_producer_id({"transactional_id": "tx1"})
        caller = {"transactional_id": "tx1", "producer_id": reply["producer_id"],
                  "producer_epoch": reply["producer_epoch"]}
        coordinator._handle_add_partitions_to_txn(
            dict(caller, partitions=["topicA-1"])
        )
        coordinator._handle_add_partitions_to_txn(
            dict(caller, partitions=["topicA-0", "topicA-1"])
        )
        txn = coordinator.transaction_state("tx1")
        assert txn.state == "Ongoing"
        assert txn.partitions == ["topicA-0", "topicA-1"]
        assert txn.started_at >= 0

    def test_end_txn_rejects_wrong_state_and_fences_stale_epochs(self):
        sim, network, sites, cluster = build_cluster()
        coordinator = cluster.coordinator
        reply = coordinator._handle_init_producer_id({"transactional_id": "tx1"})
        caller = {"transactional_id": "tx1", "producer_id": reply["producer_id"],
                  "producer_epoch": reply["producer_epoch"]}
        # Committing a transaction that never began: illegal.
        refused = coordinator._handle_end_txn(dict(caller, outcome="commit"))
        assert refused["error"] == "invalid_txn_state"
        stale = coordinator._handle_end_txn(
            dict(caller, producer_epoch=caller["producer_epoch"] - 1,
                 outcome="commit")
        )
        assert stale["error"] == "producer_fenced"
        assert coordinator.txn_metrics["fenced_end_txn"] == 1

    def test_txn_log_replay_restores_state_and_resumes_markers(self):
        sim, network, sites, cluster = build_cluster()
        sim.run(until=8.0)
        coordinator = cluster.coordinator
        reply = coordinator._handle_init_producer_id({"transactional_id": "tx1"})
        caller = {"transactional_id": "tx1", "producer_id": reply["producer_id"],
                  "producer_epoch": reply["producer_epoch"]}
        coordinator._handle_add_partitions_to_txn(
            dict(caller, partitions=["topicA-0"])
        )
        coordinator._handle_end_txn(dict(caller, outcome="commit"))
        # Snapshot the durable txn log at the PrepareCommit point and replay
        # it into a blank coordinator state (what a restart does).
        entries = [dict(entry) for entry in coordinator.txn_log]
        assert entries[-1]["state"] == "PrepareCommit"
        coordinator.transactions.clear()
        coordinator.producer_ids.clear()
        coordinator._next_producer_id = 0
        coordinator.restore_transactions(entries)
        restored = coordinator.transaction_state("tx1")
        assert restored.state == "PrepareCommit"
        assert restored.partitions == ["topicA-0"]
        assert coordinator.producer_ids["tx1"] == [
            reply["producer_id"], reply["producer_epoch"]
        ]
        assert coordinator._next_producer_id == reply["producer_id"] + 1
        # The restored Prepare* transaction resumes its marker fan-out.
        sim.run(until=sim.now + 5.0)
        assert restored.state == "CompleteCommit"
        log = cluster.leader_broker("topicA", 0).log_for("topicA", 0)
        assert log.last_markers[reply["producer_id"]][1] == "commit"

    def test_timeout_sweeper_aborts_stuck_transactions(self):
        sim, network, sites, cluster = build_cluster(transaction_timeout=3.0)
        sim.run(until=8.0)
        coordinator = cluster.coordinator
        reply = coordinator._handle_init_producer_id({"transactional_id": "tx1"})
        coordinator._handle_add_partitions_to_txn(
            {"transactional_id": "tx1", "producer_id": reply["producer_id"],
             "producer_epoch": reply["producer_epoch"], "partitions": ["topicA-0"]}
        )
        sim.run(until=sim.now + 10.0)
        txn = coordinator.transaction_state("tx1")
        assert txn.state == "CompleteAbort"
        assert coordinator.txn_metrics["transactions_timed_out"] == 1
        assert coordinator.txn_metrics["transactions_aborted"] == 1


# ---------------------------------------------------------------------------
# Partition log: control records, LSO, aborted-transaction index
# ---------------------------------------------------------------------------
class TestPartitionLogTransactions:
    def txn_batch(self, pid, epoch, base_seq, n=2):
        batch = RecordBatch("t", 0)
        for i in range(n):
            batch.append(key=f"k{i}", value=base_seq + i, size=10, produced_at=0.0)
        batch.producer_id = pid
        batch.producer_epoch = epoch
        batch.base_sequence = base_seq
        batch.transactional = True
        return batch

    def test_open_transaction_pins_the_lso(self):
        log = PartitionLog("t")
        log.append(key="plain", value=0, size=10, timestamp=0.0,
                   produced_at=0.0, leader_epoch=0)
        log.append_batch(self.txn_batch(7, 0, 0), timestamp=1.0, leader_epoch=0)
        log.advance_high_watermark(3)
        assert log.high_watermark == 3
        assert log.last_stable_offset == 1  # first offset of the open txn
        assert log.open_txn_first_offset(7) == 1
        offset = log.append_control(7, 0, "commit", timestamp=2.0, leader_epoch=0)
        log.advance_high_watermark(4)
        assert offset == 3
        assert log.last_stable_offset == 4  # commit closed the transaction
        assert log.open_txn_first_offset(7) is None
        assert log.aborted_ranges == []
        assert log.last_markers[7] == (0, "commit", 3)

    def test_abort_marker_records_the_aborted_range(self):
        log = PartitionLog("t")
        log.append_batch(self.txn_batch(7, 0, 0), timestamp=1.0, leader_epoch=0)
        log.append_control(7, 0, "abort", timestamp=2.0, leader_epoch=0)
        log.advance_high_watermark(3)
        assert log.aborted_ranges == [(0, 2, 7)]
        # read_committed hides the aborted data and the marker; the default
        # view hides only the marker.
        committed, _ = log.invisible_offsets(0, 3, "read_committed")
        uncommitted, _ = log.invisible_offsets(0, 3, "read_uncommitted")
        assert committed == [0, 1, 2]
        assert uncommitted == [2]

    def test_interleaved_producers_abort_only_their_own_records(self):
        log = PartitionLog("t")
        log.append_batch(self.txn_batch(1, 0, 0), timestamp=1.0, leader_epoch=0)
        log.append_batch(self.txn_batch(2, 0, 0), timestamp=1.0, leader_epoch=0)
        log.append_control(1, 0, "abort", timestamp=2.0, leader_epoch=0)
        log.append_control(2, 0, "commit", timestamp=2.0, leader_epoch=0)
        log.advance_high_watermark(6)
        skipped, _ = log.invisible_offsets(0, 6, "read_committed")
        # Producer 1's data (0-1) and both markers (4-5); producer 2's
        # committed records (2-3) stay visible.
        assert skipped == [0, 1, 4, 5]

    def test_marker_bumps_producer_epoch_to_fence_zombie_data(self):
        log = PartitionLog("t")
        log.append_batch(self.txn_batch(7, 0, 0), timestamp=1.0, leader_epoch=0)
        log.append_control(7, 1, "abort", timestamp=2.0, leader_epoch=0)
        # The marker carried the successor's bumped epoch: stale-epoch data
        # arriving after the abort is fenced, the successor starts clean.
        assert log.check_producer_batch(7, 0, 2) == "fenced"
        assert log.check_producer_batch(7, 1, 0) == "ok"

    def test_control_records_replicate_and_rebuild_txn_state(self):
        leader = PartitionLog("t")
        leader.append_batch(self.txn_batch(7, 0, 0), timestamp=1.0, leader_epoch=0)
        leader.append_control(7, 0, "abort", timestamp=2.0, leader_epoch=0)
        leader.append_batch(self.txn_batch(7, 1, 0), timestamp=3.0, leader_epoch=0)
        wire = leader.read_batch(0, with_epochs=True)
        assert wire.transactionals == [True, True, False, True, True]
        assert wire.controls[2] == ("abort", 7, 0)
        follower = PartitionLog("t")
        follower.append_wire_batch(wire)
        follower.advance_high_watermark(5)
        # The follower (a future leader) reconstructed the aborted range,
        # the still-open transaction and the marker dedup entry.
        assert follower.aborted_ranges == [(0, 2, 7)]
        assert follower.open_txn_first_offset(7) == 3
        assert follower.last_stable_offset == 3
        assert follower.last_markers[7] == (0, "abort", 2)

    def test_truncation_rebuilds_transaction_state(self):
        log = PartitionLog("t")
        log.append_batch(self.txn_batch(7, 0, 0), timestamp=1.0, leader_epoch=0)
        log.append_control(7, 0, "abort", timestamp=2.0, leader_epoch=0)
        log.advance_high_watermark(3)
        assert log.aborted_ranges == [(0, 2, 7)]
        # Truncating the marker away re-opens the transaction.
        log.truncate_to(2)
        assert log.aborted_ranges == []
        assert log.open_txn_first_offset(7) == 0
        log.truncate_to(0)
        assert log.open_txn_first_offset(7) is None
        assert not log.has_transactions or log.last_stable_offset == 0

    def test_consumer_fetch_batches_do_not_carry_txn_columns(self):
        log = PartitionLog("t")
        log.append_batch(self.txn_batch(7, 0, 0), timestamp=1.0, leader_epoch=0)
        log.append_control(7, 0, "commit", timestamp=2.0, leader_epoch=0)
        log.advance_high_watermark(3)
        batch = log.committed_read_batch(0)
        assert batch.transactionals is None
        assert batch.controls is None


# ---------------------------------------------------------------------------
# End-to-end: producer API, isolation levels, fencing, marker durability
# ---------------------------------------------------------------------------
class TestTransactionalProduce:
    def test_config_validation(self):
        assert ProducerConfig(transactional_id="tx").idempotence is True
        with pytest.raises(ValueError):
            ProducerConfig(transactional_id="tx", transaction_timeout=0)
        with pytest.raises(ValueError):
            ConsumerConfig(isolation_level="read_sideways")

    def test_send_outside_a_transaction_raises(self):
        sim, network, sites, cluster = build_cluster()
        producer = cluster.create_producer(
            sites[0], config=ProducerConfig(transactional_id="tx1")
        )
        with pytest.raises(InvalidTxnStateError):
            producer.send(ProducerRecord(topic="topicA", key="k", value=1, size=10))
        with pytest.raises(InvalidTxnStateError):
            producer.begin_transaction() or producer.begin_transaction()
        plain = cluster.create_producer(sites[0])
        with pytest.raises(InvalidTxnStateError):
            plain.begin_transaction()

    def test_commit_spans_partitions_atomically(self):
        sim, network, sites, cluster = build_cluster(partitions=2)
        producer = cluster.create_producer(
            sites[0], config=ProducerConfig(transactional_id="tx1", linger=0.01)
        )
        committed = cluster.create_consumer(
            sites[1], config=ConsumerConfig(
                poll_interval=0.05, keep_payloads=True,
                isolation_level="read_committed",
            )
        )
        committed.subscribe(["topicA"])

        def workload():
            yield sim.timeout(8.0)
            producer.start()
            committed.start()
            producer.begin_transaction()
            for i in range(10):
                producer.send(
                    ProducerRecord(topic="topicA", key=f"k{i % 4}", value=i, size=50)
                )
            # Nothing is visible to read_committed before the commit marker.
            yield sim.timeout(3.0)
            assert committed.records_consumed == 0
            yield from producer.commit_transaction()

        sim.process(workload())
        sim.run(until=25.0)
        assert producer.transactions_committed == 1
        assert producer.records_acked == 10
        assert committed.records_consumed == 10
        assert sorted(r.value for r in committed.received) == list(range(10))
        assert cluster.total_transactions_committed() == 1
        # One commit marker per touched partition, invisible to consumers.
        assert cluster.total_control_batches() == 2
        assert cluster.total_control_batch_bytes() > 0
        txn = cluster.coordinator.transaction_state("tx1")
        assert txn.state == "CompleteCommit"
        assert txn.partitions == ["topicA-0", "topicA-1"]

    def test_abort_hides_records_from_read_committed_only(self):
        sim, network, sites, cluster = build_cluster(partitions=2)
        producer = cluster.create_producer(
            sites[0], config=ProducerConfig(transactional_id="tx1", linger=0.01)
        )
        committed = cluster.create_consumer(
            sites[1], config=ConsumerConfig(
                poll_interval=0.05, keep_payloads=True,
                isolation_level="read_committed",
            )
        )
        uncommitted = cluster.create_consumer(
            sites[2], config=ConsumerConfig(poll_interval=0.05, keep_payloads=True)
        )
        committed.subscribe(["topicA"])
        uncommitted.subscribe(["topicA"])

        def workload():
            yield sim.timeout(8.0)
            producer.start()
            committed.start()
            uncommitted.start()
            producer.begin_transaction()
            for i in range(6):
                producer.send(
                    ProducerRecord(topic="topicA", key=f"k{i}", value=i, size=50)
                )
            yield from producer.abort_transaction()
            producer.begin_transaction()
            producer.send(ProducerRecord(topic="topicA", key="k9", value=99, size=50))
            yield from producer.commit_transaction()

        sim.process(workload())
        sim.run(until=25.0)
        assert producer.transactions_aborted == 1
        assert producer.transactions_committed == 1
        # read_committed: only the committed record; the default view also
        # sees the aborted writes (but never the markers).
        assert [r.value for r in committed.received] == [99]
        assert sorted(r.value for r in uncommitted.received) == [0, 1, 2, 3, 4, 5, 99]
        assert cluster.total_transactions_aborted() == 1

    def test_successor_fences_zombie_mid_transaction(self):
        sim, network, sites, cluster = build_cluster(partitions=1)
        zombie = cluster.create_producer(
            sites[0],
            config=ProducerConfig(transactional_id="tx1", linger=0.01,
                                  delivery_timeout=6.0),
        )
        successor = cluster.create_producer(
            sites[1],
            config=ProducerConfig(transactional_id="tx1", linger=0.01),
        )
        committed = cluster.create_consumer(
            sites[2], config=ConsumerConfig(
                poll_interval=0.05, keep_payloads=True,
                isolation_level="read_committed",
            )
        )
        committed.subscribe(["topicA"])
        failures = []

        def workload():
            yield sim.timeout(8.0)
            zombie.start()
            committed.start()
            zombie.begin_transaction()
            zombie.send(ProducerRecord(topic="topicA", key="z", value=-1, size=50))
            yield sim.timeout(2.0)  # half a transaction in the log
            successor.start()  # same transactional id -> epoch bump + abort
            yield sim.timeout(2.0)
            successor.begin_transaction()
            successor.send(ProducerRecord(topic="topicA", key="s", value=1, size=50))
            yield from successor.commit_transaction()
            try:
                yield from zombie.commit_transaction()
            except ProducerFencedError:
                failures.append("fenced")

        sim.process(workload())
        sim.run(until=30.0)
        assert failures == ["fenced"]
        assert successor.producer_epoch == zombie.producer_epoch + 1
        assert successor.transactions_committed == 1
        # The zombie's half-written transaction was aborted, not committed:
        # read_committed only ever sees the successor's record.
        assert [r.value for r in committed.received] == [1]
        assert cluster.total_transactions_aborted() == 1
        assert cluster.total_fenced_end_txn() >= 1
        with pytest.raises(ProducerFencedError):
            zombie.begin_transaction()

    def test_sweeper_abort_fails_a_slow_commit(self):
        sim, network, sites, cluster = build_cluster(transaction_timeout=3.0)
        producer = cluster.create_producer(
            sites[0], config=ProducerConfig(transactional_id="tx1", linger=0.01)
        )
        committed = cluster.create_consumer(
            sites[1], config=ConsumerConfig(
                poll_interval=0.05, keep_payloads=True,
                isolation_level="read_committed",
            )
        )
        committed.subscribe(["topicA"])
        outcomes = []

        def workload():
            yield sim.timeout(8.0)
            producer.start()
            committed.start()
            producer.begin_transaction()
            producer.send(ProducerRecord(topic="topicA", key="k", value=1, size=50))
            yield sim.timeout(8.0)  # past the coordinator's 3s ceiling
            try:
                yield from producer.commit_transaction()
                outcomes.append("committed")
            except DeliveryFailed:
                outcomes.append("refused")

        sim.process(workload())
        sim.run(until=30.0)
        assert outcomes == ["refused"]
        assert cluster.coordinator.txn_metrics["transactions_timed_out"] == 1
        assert committed.records_consumed == 0  # swept writes stay invisible

    def test_commit_marker_survives_leader_failover(self):
        sim, network, sites, cluster = build_cluster(
            n_sites=4,
            partitions=1,
            replication=3,
            session_timeout=4.0,
            preferred_leader="broker-site3",
        )
        producer = cluster.create_producer(
            sites[3], config=ProducerConfig(transactional_id="tx1", linger=0.01)
        )

        def workload():
            yield sim.timeout(8.0)
            producer.start()
            producer.begin_transaction()
            for i in range(4):
                producer.send(
                    ProducerRecord(topic="topicA", key="k", value=i, size=50)
                )
            yield from producer.commit_transaction()

        sim.process(workload())
        sim.run(until=20.0)
        old_leader = cluster.leader_broker("topicA", 0)
        from repro.network.faults import FaultInjector, NodeDisconnection

        injector = FaultInjector(network)
        injector.schedule_node_disconnection(
            NodeDisconnection(node=old_leader.host.name, start=0.1)
        )
        sim.run(until=sim.now + 15.0)
        new_leader = cluster.leader_broker("topicA", 0)
        assert new_leader is not None and new_leader is not old_leader
        # The marker replicated with the data: the new leader knows the
        # transaction is closed and serves all four records to
        # read_committed fetches.
        log = new_leader.log_for("topicA", 0)
        assert log.last_markers[producer.producer_id][1] == "commit"
        assert log.open_txn_first_offset(producer.producer_id) is None
        assert log.last_stable_offset == log.high_watermark == 5

    def test_non_transactional_path_untouched(self):
        """With no transactional_id nothing changes: no txn state, no control
        records, no isolation header, default consumer view identical."""
        sim, network, sites, cluster = build_cluster()
        producer = cluster.create_producer(
            sites[0], config=ProducerConfig(idempotence=True)
        )
        consumer = cluster.create_consumer(sites[2])
        consumer.subscribe(["topicA"])

        def workload():
            yield sim.timeout(8.0)
            producer.start()
            consumer.start()
            for i in range(10):
                producer.send(ProducerRecord(topic="topicA", key=i, value=i, size=90))
                yield sim.timeout(0.1)

        sim.process(workload())
        sim.run(until=30.0)
        assert consumer.records_consumed == 10
        assert cluster.coordinator.transactions == {}
        assert cluster.total_control_batches() == 0
        for broker in cluster.brokers.values():
            for log in broker.logs.values():
                assert not log.has_transactions


class TestScenarioPlumbing:
    """The transactional knobs ride the same config plumbing as idempotence."""

    def test_stub_config_parses_transactional_knobs(self):
        from repro.core.configs import ConsumerStubConfig, ProducerStubConfig

        parsed = ProducerStubConfig.from_dict(
            {"topicName": "t", "transactionalId": "tx1", "transactionBatch": 7}
        )
        assert parsed.transactional_id == "tx1"
        assert parsed.transaction_batch == 7
        defaults = ProducerStubConfig.from_dict({"topicName": "t"})
        assert defaults.transactional_id is None
        assert defaults.transaction_batch == 20

        sink = ConsumerStubConfig.from_dict(
            {"topics": ["t"], "isolationLevel": "read_committed"}
        )
        assert sink.isolation_level == "read_committed"
        assert ConsumerStubConfig.from_dict({}).isolation_level == "read_uncommitted"

    def test_every_scenario_config_has_the_transaction_knobs(self):
        """`--set transactional_id=tx1 --set isolation_level=read_committed`
        must work catalog-wide, mirroring the idempotence knob."""
        import dataclasses

        from repro.scenarios import registry

        for name in registry.names():
            scenario = registry.get(name)
            config = scenario.build_config()
            assert dataclasses.is_dataclass(config)
            assert hasattr(config, "transactional_id"), (
                f"scenario {name!r} config lacks the transactional_id field"
            )
            assert hasattr(config, "isolation_level"), (
                f"scenario {name!r} config lacks the isolation_level field"
            )

    def test_control_records_never_reach_the_spe(self):
        """The SPE's batch-native ingest (``on_batch`` fast path) must filter
        commit/abort markers: a marker's payload leaking into an operator
        crashes any map that indexes into its records."""
        from repro.engine.sources import KafkaSource

        sim, network, sites, cluster = build_cluster()
        producer = cluster.create_producer(
            sites[0], config=ProducerConfig(transactional_id="tx-spe")
        )
        source = KafkaSource(
            network.host(sites[2]),
            topics=["topicA"],
            bootstrap=cluster.bootstrap_hosts(),
        )

        def workload():
            yield sim.timeout(8.0)
            producer.start()
            source.start()
            producer.begin_transaction()
            for i in range(5):
                producer.send(
                    ProducerRecord(topic="topicA", key=i, value={"v": i}, size=90)
                )
                yield sim.timeout(0.05)
            yield from producer.commit_transaction()
            producer.begin_transaction()
            producer.send(
                ProducerRecord(topic="topicA", key=9, value={"v": 9}, size=90)
            )
            yield from producer.abort_transaction()

        sim.process(workload())
        sim.run(until=30.0)
        records = source.drain()
        # read_uncommitted (the SPE default): committed + aborted data records
        # flow, but never the two control markers.
        assert source.records_ingested == 6
        assert len(records) == 6
        assert all(isinstance(record.value, dict) for record in records)
        # One marker per touched partition: the commit spanned both
        # partitions of topicA, the abort touched one.
        assert cluster.total_control_batches() == 3

    def test_transactional_word_count_pipeline_end_to_end(self):
        """A full Figure 2 pipeline with a transactional document source and a
        read_committed sink still delivers end to end."""
        from repro.apps.word_count import create_task
        from repro.core.emulation import Emulation
        from repro.workloads.text import generate_documents

        task = create_task(
            n_documents=12,
            files_per_second=10.0,
            transactional_id="tx1",
            isolation_level="read_committed",
        )
        documents = generate_documents(12, seed=3)
        emulation = Emulation(task, seed=3, datasets={"documents": documents})
        result = emulation.run(duration=45.0)
        source = emulation.producers["h1"]
        assert source.transactions_committed >= 1
        assert emulation.cluster.total_transactions_committed() >= 1
        assert emulation.cluster.total_control_batches() >= 1
        assert result.messages_produced == 12
        assert result.messages_consumed > 0
