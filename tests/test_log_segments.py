"""Segmented log storage: sealing, indexed reads, retention, compaction,
cold tier and recovery (see ``docs/log_storage.md``).

The unit tests drive :class:`PartitionLog` directly with explicit
:class:`LogStorageConfig`; the end-to-end tests stand up a real cluster with
retention enabled and exercise the consumer's ``auto_offset_reset`` policies
against genuine OffsetOutOfRange replies.
"""

import pytest

from repro.broker.batch import RecordBatch
from repro.broker.cluster import BrokerCluster, ClusterConfig
from repro.broker.consumer import ConsumerConfig
from repro.broker.log import PartitionLog
from repro.broker.message import ProducerRecord
from repro.broker.producer import ProducerConfig
from repro.broker.segment import (
    DEFAULT_SEGMENT_RECORDS,
    LogStorageConfig,
    resolve_log_storage,
)
from repro.broker.topic import TopicConfig
from repro.network.link import LinkConfig
from repro.network.topology import star_topology
from repro.simulation import Simulator


def make_segmented(n=0, segment_records=16, **storage_kwargs):
    storage = LogStorageConfig(segment_records=segment_records, **storage_kwargs)
    log = PartitionLog("t", 0, storage=storage)
    fill(log, n)
    return log


def fill(log, n, start_time=0.0, size=10, epoch=0):
    for i in range(n):
        log.append(
            key=f"k{i % 7}", value=f"v{i}", size=size,
            timestamp=start_time + float(i), produced_at=start_time + float(i),
            leader_epoch=epoch,
        )


class TestSealing:
    def test_head_rolls_at_segment_records(self):
        log = make_segmented(100, segment_records=16)
        assert log.stats["segments_sealed"] == 6
        assert log.segment_count == 7
        assert log.log_end_offset == 100
        assert len(log) == 100

    def test_segmented_reads_match_flat_layout(self):
        segmented = make_segmented(100, segment_records=16)
        flat = PartitionLog("t", 0, storage=None)
        flat.storage = None  # immune to --log-backend=segments
        fill(flat, 100)
        assert len(segmented) == len(flat)
        assert segmented.size_bytes == flat.size_bytes
        assert [r.value for r in segmented.all_records()] == [
            r.value for r in flat.all_records()
        ]
        for offset in (0, 15, 16, 17, 50, 95, 99):
            assert segmented.record_at(offset).value == flat.record_at(offset).value
        assert [r.offset for r in segmented.read(10, max_records=30)] == [
            r.offset for r in flat.read(10, max_records=30)
        ]

    def test_read_batch_serves_one_segment_per_call(self):
        log = make_segmented(100, segment_records=16)
        log.advance_high_watermark(100)
        collected = []
        offset = 0
        while offset < 100:
            batch = log.read_batch(offset, up_to=100)
            assert len(batch) > 0
            # Sealed reads stop at segment boundaries (Kafka answers fetches
            # out of one segment); the head serves whatever is left.
            assert len(batch) <= 16
            collected.extend(batch.values)
            offset = batch.next_offset
        assert collected == [f"v{i}" for i in range(100)]

    def test_append_batch_is_never_split_across_segments(self):
        log = make_segmented(0, segment_records=4)
        batch = RecordBatch("t", 0)
        for i in range(10):
            batch.append(f"k{i}", f"v{i}", 10, 0.0)
        log.append_batch(batch, timestamp=0.0, leader_epoch=0)
        # The whole batch landed in one (oversized) segment.
        assert log.stats["segments_sealed"] == 1
        assert log.sealed_segments[0].count == 10

    def test_offset_index_bisect_across_many_segments(self):
        log = make_segmented(256, segment_records=8)
        for offset in range(0, 256, 7):
            assert log.record_at(offset).value == f"v{offset}"


class TestRetention:
    def test_size_retention_drops_whole_segments_and_advances_start(self):
        log = make_segmented(100, segment_records=16, retention_bytes=500)
        assert log.log_start_offset == 0
        log.maybe_maintain(now=100.0)
        assert log.total_size_bytes <= 500
        assert log.log_start_offset > 0
        assert log.log_start_offset % 16 == 0  # whole segments only
        assert log.stats["retention_records_dropped"] == log.log_start_offset
        # The surviving suffix is intact.
        records = log.read(0)
        assert records[0].offset == log.log_start_offset
        assert records[-1].offset == 99

    def test_time_retention_uses_segment_max_timestamp(self):
        log = make_segmented(66, segment_records=16, retention_ms=20_000.0)
        # Records carry timestamps 0..65s; at now=40s the cutoff is 20s:
        # segment 0 (ts <= 15) is expired, segment 1 (max ts 31) is not.
        log.maybe_maintain(now=40.0)
        assert log.log_start_offset == 16
        # Cutoff 50s at now=70s expires segments up to max timestamp 47.
        log.maybe_maintain(now=70.0)
        assert log.log_start_offset == 48
        # The head (records 64, 65) is never deleted, however old.
        log.maybe_maintain(now=1e9)
        assert log.log_start_offset == 64
        assert log.log_end_offset == 66
        assert [r.value for r in log.all_records()] == ["v64", "v65"]

    def test_reads_below_log_start_clamp_up(self):
        log = make_segmented(100, segment_records=16, retention_bytes=500)
        log.maybe_maintain(now=100.0)
        start = log.log_start_offset
        batch = log.read_batch(0, up_to=100)
        assert batch.base_offset == start


class TestTruncation:
    def test_truncate_inside_sealed_segment(self):
        log = make_segmented(100, segment_records=16)
        log.advance_high_watermark(100)
        discarded = log.truncate_to(40)  # inside the third sealed segment
        assert [r.offset for r in discarded] == list(range(40, 100))
        assert log.log_end_offset == 40
        assert log.high_watermark == 40
        assert len(log) == 40
        assert [r.value for r in log.all_records()] == [f"v{i}" for i in range(40)]
        # The boundary segment was cut in place; appends continue at 40.
        log.append(key="k", value="new", size=10, timestamp=0.0,
                   produced_at=0.0, leader_epoch=0)
        assert log.record_at(40).value == "new"

    def test_truncate_at_segment_boundary_drops_later_segments(self):
        log = make_segmented(64, segment_records=16)
        log.truncate_to(32)
        assert log.log_end_offset == 32
        assert log.stats["segments_sealed"] == 4  # seal count is historical
        assert len(log.sealed_segments) == 2

    def test_truncate_to_zero_empties_segmented_log(self):
        log = make_segmented(50, segment_records=16)
        discarded = log.truncate_to(0)
        assert len(discarded) == 50
        assert len(log) == 0
        assert log.log_end_offset == 0


class TestCompaction:
    def build_keyed(self, n=60, segment_records=16):
        log = PartitionLog(
            "t", 0,
            storage=LogStorageConfig(
                segment_records=segment_records, cleanup_policy="compact"
            ),
        )
        fill(log, n)  # keys cycle k0..k6
        return log

    def test_compact_keeps_latest_value_per_key_at_original_offsets(self):
        log = self.build_keyed(60, segment_records=16)
        removed = log.compact()
        assert removed > 0
        assert log.stats["compaction_records_removed"] == removed
        # Expected survivors: per key, the latest record in the sealed tier
        # (offsets 0..47), plus the untouched head (offsets 48..59).
        latest = {}
        for i in range(48):
            latest[f"k{i % 7}"] = i
        expected_sealed = sorted(latest.values())
        records = log.all_records()
        assert [r.offset for r in records] == expected_sealed + list(range(48, 60))
        for record in records[: len(expected_sealed)]:
            assert record.value == f"v{record.offset}"
        # Offsets survive compaction: lookups by original offset still work.
        keep_offset = expected_sealed[0]
        assert log.record_at(keep_offset).value == f"v{keep_offset}"
        assert log.record_at(0) is None or 0 in expected_sealed
        # log start never advances on compaction.
        assert log.log_start_offset == 0

    def test_compaction_triggered_by_maintenance_policy(self):
        log = self.build_keyed(60, segment_records=16)
        log.maybe_maintain(now=100.0)
        assert log.stats["compaction_records_removed"] > 0

    def test_compact_preserves_producer_dedup_entries(self):
        log = PartitionLog(
            "t", 0,
            storage=LogStorageConfig(segment_records=8, cleanup_policy="compact"),
        )
        for sequence in range(24):
            batch = RecordBatch(
                "t", 0, producer_id=7, producer_epoch=0, base_sequence=sequence
            )
            batch.append("same-key", f"v{sequence}", 10, 0.0)
            log.append_batch(batch, timestamp=0.0, leader_epoch=0)
        log._seal_head()
        log.compact()
        # Every retained record for producer 7 must keep the dedup table
        # rebuildable: the latest sequence survives compaction.
        log._rebuild_producer_state()
        entry = log.producer_entry(7)
        assert entry is not None
        assert entry.last_sequence == 23
        assert log.check_producer_batch(7, 0, 23) == "duplicate"
        assert log.check_producer_batch(7, 0, 24) == "ok"

    def test_compact_preserves_markers_and_never_resurrects_aborted(self):
        log = PartitionLog(
            "t", 0,
            storage=LogStorageConfig(segment_records=4, cleanup_policy="compact"),
        )
        # Committed txn from producer 1, aborted txn from producer 2, then a
        # later committed value for one of producer 2's keys.
        batch1 = RecordBatch("t", 0, producer_id=1, producer_epoch=0, base_sequence=0)
        batch1.transactional = True
        batch1.append("a", "committed-a", 10, 0.0)
        log.append_batch(batch1, timestamp=0.0, leader_epoch=0)
        log.append_control(1, 0, "commit", timestamp=1.0, leader_epoch=0)
        batch2 = RecordBatch("t", 0, producer_id=2, producer_epoch=0, base_sequence=0)
        batch2.transactional = True
        batch2.append("b", "aborted-b", 10, 2.0)
        log.append_batch(batch2, timestamp=2.0, leader_epoch=0)
        log.append_control(2, 0, "abort", timestamp=3.0, leader_epoch=0)
        log.append(key="c", value="plain-c", size=10, timestamp=4.0,
                   produced_at=4.0, leader_epoch=0)
        log._seal_head()
        aborted_before = list(log.aborted_ranges)
        log.compact()
        assert log.aborted_ranges == aborted_before
        # Markers survive (offsets 1 and 3 were controls).
        assert log.last_markers[1][1] == "commit"
        assert log.last_markers[2][1] == "abort"
        log.advance_high_watermark(log.log_end_offset)
        skipped, _ = log.invisible_offsets(0, log.log_end_offset, "read_committed")
        visible = [
            r.value for r in log.all_records() if r.offset not in set(skipped)
        ]
        assert "aborted-b" not in visible
        assert "committed-a" in visible
        assert "plain-c" in visible

    def test_compact_never_crosses_open_transaction(self):
        log = PartitionLog(
            "t", 0,
            storage=LogStorageConfig(segment_records=4, cleanup_policy="compact"),
        )
        open_batch = RecordBatch("t", 0, producer_id=9, producer_epoch=0, base_sequence=0)
        open_batch.transactional = True
        open_batch.append("k", "open-1", 10, 0.0)
        log.append_batch(open_batch, timestamp=0.0, leader_epoch=0)
        # Later records for the same key, still no end marker.
        for i in range(8):
            log.append(key="k", value=f"later-{i}", size=10, timestamp=float(i),
                       produced_at=float(i), leader_epoch=0)
        log._seal_head()
        log.compact()
        # Everything at or past the open transaction's first offset is
        # uncleanable — nothing was removed.
        assert log.stats["compaction_records_removed"] == 0
        assert len(log) == 9


class TestColdTier:
    def test_eviction_bounds_hot_tier_while_data_stays_readable(self, tmp_path):
        log = PartitionLog(
            "t", 0,
            storage=LogStorageConfig(
                segment_records=16,
                retention_bytes=400,
                segment_dir=str(tmp_path),
            ),
        )
        fill(log, 100)
        log.maybe_maintain(now=100.0)
        # Hot tier fits the bound; nothing was deleted — the data moved cold.
        assert log.size_bytes <= 400
        assert log.total_size_bytes == 100 * 10
        assert log.log_start_offset == 0
        assert log.stats["segments_evicted"] > 0
        assert log.stats["retention_records_dropped"] == 0
        # Evicted offsets fault back in from the segment files.
        assert log.record_at(0).value == "v0"
        assert log.stats["cold_loads"] > 0
        batch = log.read_batch(0, up_to=100)
        assert batch.values[0] == "v0"
        # A consumer scanning the whole cold history never re-inflates the
        # hot tier: fault-in evicts other resident segments to stay within
        # the bound at every step of the scan.
        offset, scanned = 0, 0
        while offset < log.log_end_offset:
            chunk = log.read_batch(offset)
            scanned += len(chunk)
            offset = chunk.next_offset
            assert log.size_bytes <= 400
        assert scanned == 100

    def test_recovery_replays_segment_files(self, tmp_path):
        storage = LogStorageConfig(segment_records=8, segment_dir=str(tmp_path))
        log = PartitionLog("t", 0, storage=storage, file_tag="b1")
        for sequence in range(3):
            batch = RecordBatch(
                "t", 0, producer_id=5, producer_epoch=1, base_sequence=sequence * 2
            )
            batch.transactional = True
            batch.append(f"k{sequence}", f"tx-{sequence}", 10, 0.0)
            batch.append(f"k{sequence}", f"tx2-{sequence}", 10, 0.0)
            log.append_batch(batch, timestamp=float(sequence), leader_epoch=sequence)
            log.append_control(
                5, 1, "commit" if sequence != 1 else "abort",
                timestamp=float(sequence), leader_epoch=sequence,
            )
        fill(log, 10, start_time=10.0, epoch=2)
        log._seal_head()  # everything into segment files

        recovered = PartitionLog.recover("t", 0, storage, file_tag="b1")
        assert recovered.log_start_offset == log.log_start_offset
        assert recovered.log_end_offset == log.log_end_offset
        assert [(r.offset, r.value) for r in recovered.all_records()] == [
            (r.offset, r.value) for r in log.all_records()
        ]
        assert recovered.epoch_boundaries == log.epoch_boundaries
        assert recovered.aborted_ranges == log.aborted_ranges
        assert recovered.last_markers == log.last_markers
        original = log.producer_entry(5)
        replayed = recovered.producer_entry(5)
        assert replayed is not None
        assert (replayed.epoch, replayed.last_sequence) == (
            original.epoch, original.last_sequence,
        )
        # Recovered replicas re-learn the high watermark from the leader.
        assert recovered.high_watermark == 0

    def test_recovery_requires_cold_tier(self):
        with pytest.raises(ValueError):
            PartitionLog.recover("t", 0, LogStorageConfig(segment_records=8))


class TestStorageConfigResolution:
    def test_topic_overrides_merge_over_broker_default(self):
        default = LogStorageConfig(segment_records=1024, retention_bytes=1 << 20)
        merged = resolve_log_storage({"cleanup_policy": "compact"}, default)
        assert merged.segment_records == 1024
        assert merged.retention_bytes == 1 << 20
        assert merged.cleanup_policy == "compact"

    def test_topic_only_config_backfills_segment_records(self):
        merged = resolve_log_storage({"retention_bytes": 4096}, None)
        assert merged.segment_records == DEFAULT_SEGMENT_RECORDS
        assert merged.retention_bytes == 4096

    def test_no_config_resolves_to_none(self):
        assert resolve_log_storage(None, None) is None

    def test_topic_config_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            TopicConfig(name="t", cleanup_policy="shred")

    def test_cluster_config_folds_storage_knobs_into_broker(self):
        config = ClusterConfig(segment_records=64, retention_bytes=1 << 16)
        assert config.broker.log_storage is not None
        assert config.broker.log_storage.segment_records == 64
        assert ClusterConfig().broker.log_storage is None


# ---------------------------------------------------------------------------
# End-to-end: retention + auto_offset_reset through a real cluster
# ---------------------------------------------------------------------------
def run_reset_scenario(auto_offset_reset, produce=300, retention_bytes=4000):
    """Produce enough to trip size retention, then start a late consumer at
    offset 0 and let the broker's OffsetOutOfRange drive the reset policy."""
    sim = Simulator(seed=11)
    network, _sites = star_topology(
        sim, 3, link_config=LinkConfig(latency_ms=1.0, bandwidth_mbps=1000.0)
    )
    cluster = BrokerCluster(
        network,
        coordinator_host="site1",
        config=ClusterConfig(segment_records=32, retention_bytes=retention_bytes),
    )
    cluster.add_broker("site1")
    cluster.add_topic(TopicConfig(name="events"))
    cluster.start(settle_time=1.0)

    producer = cluster.create_producer(
        "site2", config=ProducerConfig(linger=0.01, request_timeout=1.0)
    )
    consumer = cluster.create_consumer(
        "site3",
        config=ConsumerConfig(
            poll_interval=0.05, auto_offset_reset=auto_offset_reset
        ),
    )
    consumer.subscribe(["events"])

    def workload():
        yield sim.timeout(2.0)
        producer.start()
        for i in range(produce):
            producer.send(
                ProducerRecord(topic="events", key=i, value="x" * 64)
            )
            yield sim.timeout(0.005)
        yield sim.timeout(2.0)
        consumer.start()  # fetches from offset 0 — long since retained away

    sim.process(workload(), name="workload")
    sim.run(until=30.0)
    log = cluster.brokers["broker-site1"].logs["events-0"]
    return cluster, consumer, log


def test_auto_offset_reset_earliest_resumes_at_log_start():
    cluster, consumer, log = run_reset_scenario("earliest")
    assert log.log_start_offset > 0  # retention really dropped segments
    assert consumer.offset_resets >= 1
    assert consumer.records_consumed > 0
    consumed_offsets = [r.offset for r in consumer.received]
    assert min(consumed_offsets) >= log.log_start_offset
    # Everything from the post-reset start was delivered in order.
    assert consumed_offsets == sorted(consumed_offsets)
    assert cluster.total_retention_records_dropped() == log.log_start_offset
    assert cluster.total_segments_sealed() > 0


def test_auto_offset_reset_latest_skips_to_log_end():
    _, consumer, log = run_reset_scenario("latest")
    assert log.log_start_offset > 0
    assert consumer.offset_resets >= 1
    # Production had finished before the consumer started: resetting to the
    # log end means nothing is ever delivered.
    assert consumer.records_consumed == 0
    assert consumer.offsets["events-0"] == log.log_end_offset


def test_auto_offset_reset_error_abandons_the_partition():
    _, consumer, log = run_reset_scenario("error")
    assert log.log_start_offset > 0
    assert consumer.records_consumed == 0
    assert consumer.fetch_errors >= 1
    assert "events-0" in consumer._dead_partitions
