"""Tests for the producer/consumer stubs and the figure-data (visualization) helpers."""

import pytest

from repro.broker import BrokerCluster, ClusterConfig, TopicConfig
from repro.core.configs import ConsumerStubConfig, ProducerStubConfig
from repro.core.visualization import (
    DeliveryMatrix,
    delivery_matrix,
    latency_by_arrival,
    latency_spikes,
)
from repro.network.link import LinkConfig
from repro.network.topology import star_topology
from repro.simulation import Simulator
from repro.store import StoreServer
from repro.stubs import (
    DirectoryProducerStub,
    FileSinkConsumerStub,
    RandomRateProducerStub,
    ReplayProducerStub,
    SFSTProducerStub,
    StandardConsumerStub,
    StoreSinkConsumerStub,
)


def make_cluster(n_sites=3, topics=("events",), seed=6):
    sim = Simulator(seed=seed)
    network, sites = star_topology(
        sim, n_sites, link_config=LinkConfig(latency_ms=2.0, bandwidth_mbps=100.0)
    )
    cluster = BrokerCluster(network, coordinator_host=sites[0], config=ClusterConfig())
    for site in sites:
        cluster.add_broker(site)
    for topic in topics:
        cluster.add_topic(TopicConfig(name=topic, replication_factor=1))
    cluster.start(settle_time=2.0)
    return sim, network, sites, cluster


class TestProducerStubs:
    def test_sfst_produces_every_item_in_order(self):
        sim, network, sites, cluster = make_cluster()
        items = [f"line-{i}" for i in range(15)]
        stub = SFSTProducerStub(
            cluster,
            sites[0],
            items,
            config=ProducerStubConfig(topic="events", total_messages=15, messages_per_second=10),
        )
        sink = StandardConsumerStub(
            cluster, sites[2], config=ConsumerStubConfig(topics=["events"])
        )
        sim.schedule_callback(8.0, lambda: (stub.start(), sink.start()))
        sim.run(until=30.0)
        assert stub.messages_produced == 15
        assert [record.value for record in sink.records] == items

    def test_sfst_cycles_when_total_exceeds_items(self):
        sim, network, sites, cluster = make_cluster()
        stub = SFSTProducerStub(
            cluster,
            sites[0],
            ["a", "b"],
            config=ProducerStubConfig(topic="events", total_messages=5, messages_per_second=20),
        )
        sim.schedule_callback(8.0, stub.start)
        sim.run(until=20.0)
        assert stub.messages_produced == 5

    def test_directory_producer_sends_file_names_as_keys(self):
        sim, network, sites, cluster = make_cluster()
        files = [("a.txt", "alpha"), ("b.txt", "beta")]
        stub = DirectoryProducerStub(
            cluster,
            sites[1],
            files,
            config=ProducerStubConfig(topic="events", messages_per_second=10),
        )
        sink = StandardConsumerStub(
            cluster, sites[2], config=ConsumerStubConfig(topics=["events"])
        )
        sim.schedule_callback(8.0, lambda: (stub.start(), sink.start()))
        sim.run(until=25.0)
        assert sink.received_keys("events") == ["a.txt", "b.txt"]

    def test_random_rate_producer_hits_target_bitrate(self):
        sim, network, sites, cluster = make_cluster()
        stub = RandomRateProducerStub(
            cluster,
            sites[0],
            config=ProducerStubConfig(topics=["events"], rate_kbps=30.0, message_size=512),
        )
        sim.schedule_callback(8.0, stub.start)
        sim.run(until=68.0)
        elapsed = 60.0
        achieved_kbps = stub.bytes_produced * 8 / 1000.0 / elapsed
        assert achieved_kbps == pytest.approx(30.0, rel=0.25)

    def test_replay_producer_preserves_relative_timing(self):
        sim, network, sites, cluster = make_cluster()
        timeline = [(0.0, "first"), (5.0, "second"), (6.0, "third")]
        stub = ReplayProducerStub(
            cluster, sites[0], timeline, config=ProducerStubConfig(topic="events")
        )
        sink = StandardConsumerStub(
            cluster, sites[2], config=ConsumerStubConfig(topics=["events"])
        )
        sim.schedule_callback(8.0, lambda: (stub.start(), sink.start()))
        sim.run(until=30.0)
        received_at = {record.value: record.received_at for record in sink.records}
        assert received_at["second"] - received_at["first"] == pytest.approx(5.0, abs=0.5)
        assert received_at["third"] - received_at["second"] == pytest.approx(1.0, abs=0.5)


class TestConsumerStubs:
    def test_standard_consumer_latency_metrics(self):
        sim, network, sites, cluster = make_cluster()
        stub = SFSTProducerStub(
            cluster,
            sites[0],
            ["x"] * 10,
            config=ProducerStubConfig(topic="events", total_messages=10, messages_per_second=10),
        )
        sink = StandardConsumerStub(
            cluster, sites[1], config=ConsumerStubConfig(topics=["events"])
        )
        sim.schedule_callback(8.0, lambda: (stub.start(), sink.start()))
        sim.run(until=25.0)
        assert sink.messages_consumed == 10
        assert 0 < sink.mean_latency() < 1.0
        assert sink.max_latency() >= sink.mean_latency()

    def test_file_sink_consumer_groups_by_topic(self):
        sim, network, sites, cluster = make_cluster(topics=("alpha", "beta"))
        producer_a = SFSTProducerStub(
            cluster, sites[0], ["a1", "a2"],
            config=ProducerStubConfig(topic="alpha", total_messages=2, messages_per_second=5),
        )
        producer_b = SFSTProducerStub(
            cluster, sites[1], ["b1"],
            config=ProducerStubConfig(topic="beta", total_messages=1, messages_per_second=5),
        )
        sink = FileSinkConsumerStub(
            cluster, sites[2], config=ConsumerStubConfig(topics=["alpha", "beta"])
        )
        sim.schedule_callback(
            8.0, lambda: (producer_a.start(), producer_b.start(), sink.start())
        )
        sim.run(until=25.0)
        assert sink.lines("alpha") == ["a1", "a2"]
        assert sink.lines("beta") == ["b1"]

    def test_store_sink_consumer_writes_to_store(self):
        sim, network, sites, cluster = make_cluster()
        store = StoreServer(network.host(sites[1]))
        producer = SFSTProducerStub(
            cluster, sites[0], ["v1", "v2", "v3"],
            config=ProducerStubConfig(topic="events", total_messages=3, messages_per_second=5),
        )
        sink = StoreSinkConsumerStub(
            cluster,
            sites[2],
            config=ConsumerStubConfig(topics=["events"], store_host=sites[1], store_table="out"),
        )
        sim.schedule_callback(8.0, lambda: (producer.start(), sink.start()))
        sim.run(until=30.0)
        assert store.tables.table("out").count() == 3

    def test_store_sink_requires_store_host(self):
        sim, network, sites, cluster = make_cluster()
        with pytest.raises(ValueError):
            StoreSinkConsumerStub(
                cluster, sites[2], config=ConsumerStubConfig(topics=["events"])
            )


class TestVisualizationFigures:
    def _delivered_scenario(self):
        sim, network, sites, cluster = make_cluster()
        producer_stub = SFSTProducerStub(
            cluster, sites[0], [f"m{i}" for i in range(10)],
            config=ProducerStubConfig(topic="events", total_messages=10, messages_per_second=10),
        )
        consumer = cluster.create_consumer(sites[2], name="obs")
        consumer.subscribe(["events"])
        sim.schedule_callback(8.0, lambda: (producer_stub.start(), consumer.start()))
        sim.run(until=25.0)
        return producer_stub.producer, consumer

    def test_delivery_matrix_full_delivery(self):
        producer, consumer = self._delivered_scenario()
        matrix = delivery_matrix(producer, [consumer], topic="events")
        assert matrix.n_messages == 10
        assert matrix.delivery_rate(consumer.name) == 1.0
        assert matrix.lost_anywhere() == []
        assert "." in matrix.render_text()

    def test_delivery_matrix_detects_missing_messages(self):
        matrix = DeliveryMatrix(
            producer="p",
            message_keys=[0, 1, 2, 3],
            matrix={"c1": [True, False, True, False], "c2": [True, True, True, False]},
        )
        assert matrix.delivery_rate("c1") == 0.5
        assert matrix.lost_indices("c1") == [1, 3]
        assert matrix.lost_anywhere() == [1, 3]
        assert "X" in matrix.render_text(width=4)

    def test_latency_by_arrival_is_ordered_and_spikes_counted(self):
        producer, consumer = self._delivered_scenario()
        points = latency_by_arrival(consumer, topics=["events"])
        assert len(points) == 10
        assert [point.order for point in points] == list(range(10))
        assert latency_spikes(points, threshold=100.0) == {}
        spikes = latency_spikes(points, threshold=-1.0)
        assert spikes.get("events") == 10
