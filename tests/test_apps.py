"""End-to-end tests of the five Table II example applications."""

import pytest

from repro.apps import (
    create_fraud_task,
    create_maritime_task,
    create_ride_selection_task,
    create_sentiment_task,
    create_word_count_task,
    run_fraud_detection,
    run_maritime_monitoring,
    run_ride_selection,
    run_sentiment_analysis,
    run_word_count,
)
from repro.core.registry import app_builder, registered_apps


class TestTaskDescriptions:
    """Table II: component counts and features of each bundled application."""

    def test_word_count_has_five_components(self):
        task = create_word_count_task()
        assert task.component_count() == 5
        assert task.validate() == []
        # Multiple stream processing jobs is the word-count feature.
        assert len(task.nodes_with("streamProcType")) == 2

    def test_ride_selection_has_five_components(self):
        task = create_ride_selection_task()
        assert task.component_count() == 5
        assert task.validate() == []

    def test_sentiment_analysis_has_three_components(self):
        task = create_sentiment_task()
        assert task.component_count() == 3
        assert task.validate() == []

    def test_maritime_monitoring_has_four_components(self):
        task = create_maritime_task()
        assert task.component_count() == 4
        assert task.validate() == []
        assert len(task.nodes_with("storeType")) == 1

    def test_fraud_detection_has_five_components(self):
        task = create_fraud_task()
        assert task.component_count() == 5
        assert task.validate() == []

    def test_all_apps_registered(self):
        names = registered_apps()
        for expected in (
            "word_count",
            "avg_doc_length",
            "ride_selection",
            "sentiment_analysis",
            "maritime_monitoring",
            "fraud_detection",
        ):
            assert expected in names
            assert callable(app_builder(expected))

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            app_builder("definitely-not-an-app")


class TestWordCount:
    def test_end_to_end(self):
        result = run_word_count(n_documents=20, duration=45.0, seed=1, files_per_second=5.0)
        assert result.messages_produced >= 20
        # The sink subscribes to both derived topics, so it should see at
        # least one word-count summary per document.
        assert result.messages_consumed >= 20
        assert result.acked_but_lost == 0
        assert result.spe_metrics["h3"]["input_records"] == 20
        assert result.spe_metrics["h4"]["input_records"] >= 1


class TestRideSelection:
    def test_end_to_end_ranking(self):
        result = run_ride_selection(n_rides=60, duration=45.0, seed=2, rides_per_second=10.0)
        assert result.spe_metrics["h4"]["input_records"] == 60
        ranking = result.extras.get("area_ranking")
        assert ranking, "expected a non-empty tipping-area ranking"
        areas = [area for area, _ in ranking]
        assert set(areas) <= {"downtown", "airport", "university", "harbour", "suburbs"}
        tips = [entry["avg_tip"] for _, entry in ranking]
        assert tips == sorted(tips, reverse=True)


class TestSentimentAnalysis:
    def test_end_to_end_scoring(self):
        result = run_sentiment_analysis(n_tweets=80, duration=40.0, seed=3, tweets_per_second=20.0)
        assert result.extras["scored_tweets"] == 80
        labels = result.extras["label_counts"]
        assert labels.get("positive", 0) > 0
        assert labels.get("negative", 0) > 0


class TestMaritimeMonitoring:
    def test_end_to_end_persistence(self):
        result = run_maritime_monitoring(
            n_messages=120, duration=45.0, seed=4, messages_per_second=20.0
        )
        per_port = result.extras["ships_per_port"]
        assert per_port, "expected per-port ship counts in the store"
        assert set(per_port) <= {"halifax", "boston"}
        assert all(count > 0 for count in per_port.values())
        assert result.extras["store_operations"] > 0


class TestFraudDetection:
    def test_end_to_end_alerts(self):
        result = run_fraud_detection(
            n_transactions=150,
            duration=45.0,
            seed=5,
            fraud_rate=0.2,
            transactions_per_second=20.0,
        )
        assert result.extras["actual_frauds_in_stream"] > 0
        assert result.extras["alerts"] > 0
        # The classifier should catch a decent share of the injected fraud.
        assert result.extras["true_positive_alerts"] >= result.extras["actual_frauds_in_stream"] * 0.5
