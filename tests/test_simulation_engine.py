"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.simulation import Interrupt, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_starts_at_initial_time():
    sim = Simulator(initial_time=42.5)
    assert sim.now == 42.5


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_process_runs_and_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        return "done"

    p = sim.process(proc())
    result = sim.run(until=p)
    assert result == "done"
    assert sim.now == pytest.approx(3.0)


def test_run_until_time_stops_early():
    sim = Simulator()
    log = []

    def proc():
        for _ in range(10):
            yield sim.timeout(1.0)
            log.append(sim.now)

    sim.process(proc())
    sim.run(until=4.5)
    assert log == [1.0, 2.0, 3.0, 4.0]
    assert sim.now == 4.5


def test_run_until_past_time_raises():
    sim = Simulator(initial_time=10.0)
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def test_processes_interleave_in_time_order():
    sim = Simulator()
    order = []

    def proc(name, delay):
        yield sim.timeout(delay)
        order.append(name)

    sim.process(proc("slow", 3.0))
    sim.process(proc("fast", 1.0))
    sim.process(proc("medium", 2.0))
    sim.run()
    assert order == ["fast", "medium", "slow"]


def test_process_waits_for_another_process():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 21

    def parent():
        value = yield sim.process(child())
        return value * 2

    result = sim.run(until=sim.process(parent()))
    assert result == 42


def test_event_succeed_delivers_value():
    sim = Simulator()
    gate = sim.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append(value)

    def opener():
        yield sim.timeout(1.0)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert seen == ["open"]


def test_event_cannot_be_triggered_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_event_fail_raises_in_waiting_process():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    def failer():
        yield sim.timeout(1.0)
        gate.fail(ValueError("boom"))

    sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_propagates():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    proc = sim.process(bad())
    with pytest.raises(RuntimeError, match="non-event"):
        sim.run(until=proc)


def test_interrupt_is_raised_inside_process():
    sim = Simulator()
    outcomes = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            outcomes.append("finished")
        except Interrupt as interrupt:
            outcomes.append(("interrupted", interrupt.cause, sim.now))

    def interrupter(target):
        yield sim.timeout(5.0)
        target.interrupt("wake up")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert outcomes == [("interrupted", "wake up", 5.0)]


def test_interrupting_finished_process_raises():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(3.0, value="b")
        results = yield sim.all_of([t1, t2])
        return [results[t1], results[t2]]

    result = sim.run(until=sim.process(proc()))
    assert result == ["a", "b"]
    assert sim.now == pytest.approx(3.0)


def test_any_of_fires_on_first_event():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(1.0, value="fast")
        t2 = sim.timeout(5.0, value="slow")
        results = yield sim.any_of([t1, t2])
        return (t1 in results, t2 in results)

    result = sim.run(until=sim.process(proc()))
    assert result == (True, False)
    assert sim.now == pytest.approx(1.0)


def test_schedule_callback_runs_at_delay():
    sim = Simulator()
    fired = []
    sim.schedule_callback(7.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [7.5]


def test_peek_returns_next_event_time():
    sim = Simulator()
    sim.timeout(3.0)
    sim.timeout(1.0)
    assert sim.peek() == pytest.approx(0.0) or sim.peek() <= 1.0
    sim.run()
    assert sim.peek() == float("inf")


def test_run_until_idle_bounded():
    sim = Simulator()

    def proc():
        while True:
            yield sim.timeout(1.0)

    sim.process(proc())
    now = sim.run_until_idle(max_time=5.5)
    assert now == 5.5


def test_processed_events_counter_increases():
    sim = Simulator()
    for _ in range(10):
        sim.timeout(1.0)
    sim.run()
    assert sim.processed_events >= 10


def test_deterministic_rng_streams():
    sim_a = Simulator(seed=7)
    sim_b = Simulator(seed=7)
    stream_a = sim_a.rng("loss")
    stream_b = sim_b.rng("loss")
    assert [stream_a.random() for _ in range(5)] == [stream_b.random() for _ in range(5)]


def test_named_rng_streams_are_independent():
    sim = Simulator(seed=7)
    a = sim.rng("a")
    b = sim.rng("b")
    assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]


def test_run_until_event_wakes_processes_waiting_on_it():
    """Stopping on an until-event must still deliver it to every waiter.

    The stop used to be raised from inside the event's callback list, which
    destroyed every sibling callback behind it — a process parked on the same
    event before run() was entered would sleep forever.
    """
    sim = Simulator()
    marker = sim.event()
    log = []

    def firer():
        yield sim.timeout(2.0)
        marker.succeed("payload")

    def waiter():
        value = yield marker
        log.append(("woke", sim.now, value))
        yield sim.timeout(1.0)
        log.append(("resumed", sim.now))

    sim.process(firer())
    sim.process(waiter())
    assert sim.run(until=marker) == "payload"
    assert log == [("woke", 2.0, "payload")]
    # The waiter survived the stop and keeps running in the next run().
    sim.run()
    assert log == [("woke", 2.0, "payload"), ("resumed", 3.0)]


def test_run_until_already_processed_event_returns_immediately():
    sim = Simulator()
    marker = sim.event()

    def firer():
        yield sim.timeout(1.0)
        marker.succeed(17)

    sim.process(firer())
    sim.run()  # drains everything; marker fires and is fully processed
    assert marker.processed
    assert sim.run(until=marker) == 17
    assert sim.now == 1.0


def test_two_phase_run_until_events_resume_cleanly():
    """Back-to-back run(until=event) calls: each phase stops exactly at its
    event and the queue keeps working across the boundary."""
    sim = Simulator()
    first = sim.event()
    second = sim.event()
    ticks = []

    def driver():
        yield sim.timeout(1.0)
        first.succeed()
        while len(ticks) < 3:
            yield sim.timeout(0.5)
            ticks.append(sim.now)
        second.succeed()

    sim.process(driver())
    sim.run(until=first)
    assert sim.now == 1.0 and ticks == []
    sim.run(until=second)
    assert ticks == [1.5, 2.0, 2.5]
