"""Quick (scaled-down) checks of every experiment harness.

The benchmark harness runs the experiments at representative scale; these
tests run tiny configurations so the full test suite stays fast while still
exercising every experiment code path and its shape checks.
"""

import math

import pytest

from repro.broker.coordinator import CoordinationMode
from repro.experiments.fig5_link_delay import Fig5Config, run_fig5
from repro.experiments.fig6_partition import TOPIC_A, Fig6Config, run_fig6
from repro.experiments.fig7a_video_analytics import Fig7aConfig, run_fig7a
from repro.experiments.fig7b_traffic_monitoring import Fig7bConfig, run_fig7b
from repro.experiments.fig8_accuracy import Fig8Config, run_fig8
from repro.experiments.fig9_resources import Fig9Config, run_fig9
from repro.experiments.table2_applications import Table2Config, run_table2

MB = 1024 * 1024


class TestFig5:
    def test_latency_increases_with_broker_delay(self):
        config = Fig5Config(
            link_delays_ms=[25, 150],
            components=["broker"],
            n_documents=12,
            duration=35.0,
        )
        result = run_fig5(config)
        series = result.series("broker")
        assert len(series) == 2
        assert not any(math.isnan(v) for v in series)
        assert series[1] > series[0]
        assert result.samples["broker"][150] > 0
        assert len(result.rows()) == 2


class TestFig6:
    def test_partition_scenario_zookeeper_loss(self):
        config = Fig6Config(
            n_sites=4,
            duration=150.0,
            disconnect_start=50.0,
            disconnect_duration=35.0,
            mode=CoordinationMode.ZOOKEEPER,
            acks=1,
            seed=3,
        )
        result = run_fig6(config)
        assert result.messages_produced > 100
        assert result.messages_consumed > result.messages_produced  # fan-out to all sites
        assert result.acked_but_lost > 0
        assert result.loss_only_on_topic_a()
        assert result.election_times(), "expected a leader election"
        assert TOPIC_A in result.latency_spike_topics(threshold=5.0)
        assert result.delivery.n_messages > 0
        assert result.delivery.lost_anywhere()
        assert any(result.throughput.values())

    def test_partition_scenario_kraft_no_silent_loss(self):
        config = Fig6Config(
            n_sites=4,
            duration=150.0,
            disconnect_start=50.0,
            disconnect_duration=35.0,
            mode=CoordinationMode.KRAFT,
            acks="all",
            seed=3,
        )
        result = run_fig6(config)
        assert result.acked_but_lost == 0


class TestFig7a:
    def test_throughput_grows_with_consumers_below_core_count(self):
        config = Fig7aConfig(consumer_counts=[1, 4], n_frames=2000)
        result = run_fig7a(config)
        assert result.throughput[4] > result.throughput[1] * 2
        assert all(rate > 0 for rate in result.per_consumer[4])


class TestFig7b:
    def test_runtime_grows_with_users(self):
        config = Fig7bConfig(user_counts=[20, 80], slots=6)
        result = run_fig7b(config)
        assert result.normalized[20] == pytest.approx(1.0)
        assert result.normalized[80] > 1.1
        assert result.input_records[80] > result.input_records[20]


class TestFig8:
    def test_profiles_agree(self):
        config = Fig8Config(
            link_delays_ms=[50], components=["broker"], n_documents=10, duration=35.0
        )
        result = run_fig8(config)
        assert result.max_relative_error() < 0.2
        rows = result.rows()
        assert len(rows) == 1
        assert rows[0]["stream2gym_s"] > 0


class TestFig9:
    def test_resource_scaling(self):
        config = Fig9Config(
            site_counts=[2, 4],
            buffer_sizes=[16 * MB, 32 * MB],
            duration=25.0,
            warmup=10.0,
        )
        result = run_fig9(config)
        medians = result.median_cpu_series(32 * MB)
        peaks_small = result.peak_memory_series(16 * MB)
        peaks_large = result.peak_memory_series(32 * MB)
        assert medians[4] > medians[2]
        assert peaks_large[4] > peaks_large[2]
        assert peaks_large[4] > peaks_small[4]
        assert result.reports[(4, 32 * MB)].fraction_below(60.0) > 0.8


class TestTable2:
    def test_component_counts_without_running(self):
        result = run_table2(Table2Config(run_pipelines=False))
        by_name = {row.application: row for row in result.rows}
        assert by_name["word_count"].components == 5
        assert by_name["sentiment_analysis"].components == 3
        assert by_name["maritime_monitoring"].components == 4
        assert all(row.loc > 30 for row in result.rows)
