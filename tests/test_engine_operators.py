"""Unit tests for DStream operators and the executor cost model."""

import pytest

from repro.engine.executor import ExecutorConfig
from repro.engine.operators import (
    FilterOperator,
    FlatMapOperator,
    GroupByKeyOperator,
    JoinOperator,
    MapOperator,
    MapPairsOperator,
    ReduceByKeyOperator,
    UpdateStateByKeyOperator,
    WindowOperator,
)
from repro.engine.records import StreamRecord


def records(*values, key=None):
    return [StreamRecord(value=v, key=key, event_time=0.0) for v in values]


class TestRecords:
    def test_size_estimated(self):
        text = "hello world, stream processing at scale"
        record = StreamRecord(value=text)
        assert record.size == len(text)

    def test_with_value_preserves_provenance(self):
        record = StreamRecord(value="original", event_time=3.0, ingest_time=4.0)
        derived = record.with_value("new", key="k")
        assert derived.event_time == 3.0
        assert derived.ingest_time == 4.0
        assert derived.key == "k"
        assert derived.value == "new"

    def test_age(self):
        record = StreamRecord(value=1, event_time=10.0)
        assert record.age(12.5) == pytest.approx(2.5)


class TestStatelessOperators:
    def test_map(self):
        out = MapOperator(lambda x: x * 2).apply(records(1, 2, 3), now=0)
        assert [r.value for r in out] == [2, 4, 6]

    def test_flat_map(self):
        out = FlatMapOperator(lambda s: s.split()).apply(records("a b", "c"), now=0)
        assert [r.value for r in out] == ["a", "b", "c"]

    def test_flat_map_can_drop(self):
        out = FlatMapOperator(lambda s: []).apply(records("a", "b"), now=0)
        assert out == []

    def test_filter(self):
        out = FilterOperator(lambda x: x % 2 == 0).apply(records(1, 2, 3, 4), now=0)
        assert [r.value for r in out] == [2, 4]

    def test_map_pairs_sets_key(self):
        out = MapPairsOperator(lambda word: (word, 1)).apply(records("a", "b", "a"), now=0)
        assert [(r.key, r.value) for r in out] == [("a", 1), ("b", 1), ("a", 1)]

    def test_reduce_by_key(self):
        pairs = MapPairsOperator(lambda w: (w, 1)).apply(records("a", "b", "a", "a"), now=0)
        out = ReduceByKeyOperator(lambda x, y: x + y).apply(pairs, now=0)
        result = {r.key: r.value for r in out}
        assert result == {"a": 3, "b": 1}

    def test_group_by_key(self):
        pairs = MapPairsOperator(lambda x: (x % 2, x)).apply(records(1, 2, 3, 4), now=0)
        out = GroupByKeyOperator().apply(pairs, now=0)
        grouped = {r.key: sorted(r.value) for r in out}
        assert grouped == {0: [2, 4], 1: [1, 3]}


class TestWindowOperator:
    def test_window_retains_recent_elements(self):
        window = WindowOperator(window_duration=10.0)
        window.apply(records("a"), now=0.0)
        out = window.apply(records("b"), now=5.0)
        assert [r.value for r in out] == ["a", "b"]

    def test_window_expires_old_elements(self):
        window = WindowOperator(window_duration=10.0)
        window.apply(records("old"), now=0.0)
        out = window.apply(records("new"), now=15.0)
        assert [r.value for r in out] == ["new"]

    def test_window_slide_suppresses_intermediate_emissions(self):
        window = WindowOperator(window_duration=30.0, slide=10.0)
        first = window.apply(records("a"), now=0.0)
        second = window.apply(records("b"), now=5.0)
        third = window.apply(records("c"), now=10.0)
        assert [r.value for r in first] == ["a"]
        assert second == []
        assert [r.value for r in third] == ["a", "b", "c"]

    def test_window_reset(self):
        window = WindowOperator(window_duration=10.0)
        window.apply(records("a"), now=0.0)
        window.reset()
        out = window.apply(records("b"), now=1.0)
        assert [r.value for r in out] == ["b"]

    def test_window_validation(self):
        with pytest.raises(ValueError):
            WindowOperator(window_duration=0)


class TestStatefulOperators:
    def test_update_state_by_key_accumulates(self):
        operator = UpdateStateByKeyOperator(lambda new, old: (old or 0) + sum(new))
        pairs1 = MapPairsOperator(lambda w: (w, 1)).apply(records("a", "a", "b"), now=0)
        out1 = operator.apply(pairs1, now=0)
        assert {r.key: r.value for r in out1} == {"a": 2, "b": 1}
        pairs2 = MapPairsOperator(lambda w: (w, 1)).apply(records("a"), now=1)
        out2 = operator.apply(pairs2, now=1)
        assert {r.key: r.value for r in out2} == {"a": 3}
        assert operator.state == {"a": 3, "b": 1}

    def test_update_state_reset(self):
        operator = UpdateStateByKeyOperator(lambda new, old: (old or 0) + sum(new))
        operator.apply(MapPairsOperator(lambda w: (w, 1)).apply(records("x"), 0), 0)
        operator.reset()
        assert operator.state == {}

    def test_join_matches_keys(self):
        join = JoinOperator()
        left = MapPairsOperator(lambda x: (x["id"], x["fare"])).apply(
            records({"id": 1, "fare": 10.0}, {"id": 2, "fare": 20.0}), now=0
        )
        right = MapPairsOperator(lambda x: (x["id"], x["tip"])).apply(
            records({"id": 1, "tip": 2.0}), now=0
        )
        join.set_right_batch(right)
        out = join.apply(left, now=0)
        assert [(r.key, r.value) for r in out] == [(1, (10.0, 2.0))]

    def test_join_without_right_batch_is_empty(self):
        join = JoinOperator()
        out = join.apply(records(1, 2, key="k"), now=0)
        assert out == []


class TestExecutorConfig:
    def test_job_cost_scales_with_records_and_stages(self):
        config = ExecutorConfig(job_overhead=0.1, per_record_cost=1e-3, per_byte_cost=0)
        small = config.job_cost(n_records=10, n_bytes=0, n_stages=1)
        large = config.job_cost(n_records=100, n_bytes=0, n_stages=2)
        assert small == pytest.approx(0.11)
        assert large == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutorConfig(parallelism=0)
        with pytest.raises(ValueError):
            ExecutorConfig(per_record_cost=-1)
