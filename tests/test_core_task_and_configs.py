"""Tests for Table I attributes, YAML configs, task descriptions and GraphML parsing."""

import pytest

from repro.core.attributes import (
    validate_link_attributes,
    validate_node_attributes,
)
from repro.core.configs import (
    ConsumerStubConfig,
    FaultSpec,
    ProducerStubConfig,
    SPEAppConfig,
    TopicSpec,
    _duration_to_seconds,
    _size_to_bytes,
    parse_faults_config,
    parse_topics_config,
)
from repro.core.graphml import parse_graphml_string, to_graphml
from repro.core.task import TaskDescription


class TestAttributeValidation:
    def test_unknown_node_attribute_flagged(self):
        problems = validate_node_attributes({"bogusAttr": 1})
        assert any("unknown node attribute" in problem for problem in problems)

    def test_valid_node_attributes_pass(self):
        problems = validate_node_attributes(
            {"prodType": "SFST", "prodCfg": {}, "cpuPercentage": 50}
        )
        assert problems == []

    def test_bad_producer_type_flagged(self):
        problems = validate_node_attributes({"prodType": "NOT_A_TYPE"})
        assert any("producer type" in problem for problem in problems)

    def test_bad_cpu_percentage_flagged(self):
        assert validate_node_attributes({"cpuPercentage": 150})
        assert validate_node_attributes({"cpuPercentage": "many"})

    def test_link_attribute_validation(self):
        assert validate_link_attributes({"lat": 10, "bw": 100, "loss": 1}) == []
        assert validate_link_attributes({"lat": -1})
        assert validate_link_attributes({"loss": 200})
        assert validate_link_attributes({"weird": 1})


class TestConfigParsing:
    def test_size_parsing(self):
        assert _size_to_bytes("32m", 0) == 32 * 1024**2
        assert _size_to_bytes("16MB", 0) == 16 * 1024**2
        assert _size_to_bytes("1g", 0) == 1024**3
        assert _size_to_bytes(4096, 0) == 4096
        assert _size_to_bytes(None, 7) == 7

    def test_duration_parsing(self):
        assert _duration_to_seconds("2000ms", 0) == pytest.approx(2.0)
        assert _duration_to_seconds("1.5s", 0) == pytest.approx(1.5)
        assert _duration_to_seconds(3, 0) == 3.0
        assert _duration_to_seconds(None, 9.0) == 9.0

    def test_producer_stub_config_from_paper_example(self):
        # Figure 3a of the paper.
        config = ProducerStubConfig.from_dict(
            {
                "filePath": "test-data.csv",
                "topicName": "raw-data",
                "totalMessages": 1000,
                "requestTimeout": "2000ms",
                "bufferMemory": "32m",
            }
        )
        assert config.topic == "raw-data"
        assert config.total_messages == 1000
        assert config.request_timeout == pytest.approx(2.0)
        assert config.buffer_memory == 32 * 1024**2

    def test_spe_config_from_paper_example(self):
        # Figure 3b of the paper.
        config = SPEAppConfig.from_dict(
            {"app": "word-count.py", "executorMemory": "1g", "eventLog": True}
        )
        assert config.app == "word_count"
        assert config.executor_memory == 1024**3
        assert config.event_log is True

    def test_consumer_config_single_topic_string(self):
        config = ConsumerStubConfig.from_dict({"topicName": "alerts"})
        assert config.topics == ["alerts"]

    def test_topic_spec_parsing(self):
        topics = parse_topics_config(
            {"topics": [{"name": "tA", "replicas": 3, "primaryBroker": "h2"}]}
        )
        assert topics[0].name == "tA"
        assert topics[0].replicas == 3
        assert topics[0].primary_broker == "h2"

    def test_fault_spec_parsing(self):
        faults = parse_faults_config(
            [{"type": "node_disconnect", "nodes": "h3", "start": "30s", "duration": 120}]
        )
        assert faults[0].kind == "node_disconnect"
        assert faults[0].targets == ["h3"]
        assert faults[0].start == pytest.approx(30.0)
        assert faults[0].duration == pytest.approx(120.0)

    def test_empty_configs(self):
        assert parse_topics_config(None) == []
        assert parse_faults_config(None) == []
        assert ProducerStubConfig.from_dict({}).topic == "raw-data"


class TestTaskDescription:
    def _small_task(self):
        task = TaskDescription("t")
        task.add_node("h1", prodType="SFST", prodCfg={"topicName": "a"})
        task.add_node("h2", brokerCfg={})
        task.add_node("h3", consType="STANDARD", consCfg={"topics": ["a"]})
        task.add_switch("s1")
        for host in ("h1", "h2", "h3"):
            task.add_link(host, "s1", lat=5.0, bw=100.0)
        task.set_topics([TopicSpec(name="a")])
        return task

    def test_component_count(self):
        task = self._small_task()
        assert task.component_count() == 3
        assert len(task.hosts()) == 3
        assert len(task.switches()) == 1

    def test_valid_task_passes_validation(self):
        assert self._small_task().validate() == []

    def test_duplicate_node_rejected(self):
        task = TaskDescription()
        task.add_node("h1")
        with pytest.raises(ValueError):
            task.add_node("h1")

    def test_link_to_unknown_node_detected(self):
        task = self._small_task()
        task.add_link("h1", "ghost")
        assert any("unknown node" in problem for problem in task.validate())

    def test_topics_without_brokers_detected(self):
        task = TaskDescription()
        task.add_node("h1", prodType="SFST")
        task.set_topics([TopicSpec(name="x")])
        problems = task.validate()
        assert any("no node hosts a broker" in problem for problem in problems)

    def test_replication_exceeding_brokers_detected(self):
        task = self._small_task()
        task.set_topics([TopicSpec(name="a", replicas=5)])
        assert any("replicas" in problem for problem in task.validate())

    def test_require_valid_raises(self):
        task = self._small_task()
        task.add_link("h1", "ghost")
        with pytest.raises(ValueError):
            task.require_valid()

    def test_faults_roundtrip(self):
        task = self._small_task()
        task.set_faults([FaultSpec(kind="node_disconnect", targets=["h2"], start=10, duration=5)])
        assert task.faults[0].targets == ["h2"]
        assert task.faults[0].duration == 5

    def test_summary(self):
        summary = self._small_task().summary()
        assert summary["hosts"] == 3
        assert summary["components"] == 3
        assert summary["topics"] == ["a"]


class TestGraphML:
    PAPER_STYLE_DOC = """<?xml version="1.0" encoding="UTF-8"?>
    <graphml xmlns="http://graphml.graphdrawing.org/xmlns">
      <graph edgedefault="undirected">
        <data key="topicCfg">{topics: [{name: raw-data, replicas: 1, primaryBroker: h2}]}</data>
        <node id="h1">
          <data key="prodType">SFST</data>
          <data key="prodCfg">{topicName: raw-data, totalMessages: 50}</data>
        </node>
        <node id="h2">
          <data key="brokerCfg">{coordinator: true}</data>
        </node>
        <node id="h3">
          <data key="streamProcType">SPARK</data>
          <data key="streamProcCfg">{app: word_count, inputTopics: [raw-data]}</data>
        </node>
        <node id="h5">
          <data key="consType">STANDARD</data>
          <data key="consCfg">{topics: [raw-data]}</data>
        </node>
        <node id="s1"/>
        <edge source="s1" target="h1">
          <data key="st">1</data>
          <data key="dt">1</data>
          <data key="lat">50</data>
        </edge>
        <edge source="s1" target="h2"><data key="lat">5</data></edge>
        <edge source="s1" target="h3"><data key="lat">5</data></edge>
        <edge source="s1" target="h5"><data key="lat">5</data></edge>
      </graph>
    </graphml>
    """

    def test_parse_paper_style_document(self):
        task = parse_graphml_string(self.PAPER_STYLE_DOC)
        assert set(task.nodes) == {"h1", "h2", "h3", "h5", "s1"}
        assert task.nodes["s1"].is_switch
        assert task.nodes["h1"].attribute("prodType") == "SFST"
        assert task.nodes["h1"].attribute("prodCfg")["totalMessages"] == 50
        assert task.topics[0].name == "raw-data"
        assert len(task.links) == 4
        first_link = task.links[0]
        assert first_link.latency_ms == 50.0
        assert first_link.source_port == 1

    def test_parse_rejects_documents_without_graph(self):
        with pytest.raises(ValueError):
            parse_graphml_string("<graphml></graphml>")

    def test_roundtrip_through_graphml_text(self):
        original = parse_graphml_string(self.PAPER_STYLE_DOC)
        text = to_graphml(original)
        parsed = parse_graphml_string(text)
        assert set(parsed.nodes) == set(original.nodes)
        assert len(parsed.links) == len(original.links)
        assert parsed.topics[0].name == original.topics[0].name

    def test_validation_of_parsed_document(self):
        task = parse_graphml_string(self.PAPER_STYLE_DOC)
        assert task.validate() == []
