"""Unit tests for Store, PriorityStore, Resource and Container."""

import pytest

from repro.simulation import Container, PriorityStore, Resource, Simulator, Store


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer():
        yield store.put("hello")
        yield store.put("world")

    def consumer():
        first = yield store.get()
        second = yield store.get()
        received.extend([first, second])

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == ["hello", "world"]


def test_store_get_blocks_until_item_available():
    sim = Simulator()
    store = Store(sim)
    times = []

    def consumer():
        item = yield store.get()
        times.append((item, sim.now))

    def producer():
        yield sim.timeout(4.0)
        yield store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert times == [("late", 4.0)]


def test_bounded_store_blocks_put_until_space():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put(1)
        log.append(("put1", sim.now))
        yield store.put(2)
        log.append(("put2", sim.now))

    def consumer():
        yield sim.timeout(5.0)
        item = yield store.get()
        log.append(("got", item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put1", 0.0) in log
    put2 = [entry for entry in log if entry[0] == "put2"][0]
    assert put2[1] == 5.0


def test_store_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_store_try_get_and_peek():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    assert store.peek() is None
    store.put("x")
    sim.run()
    assert store.peek() == "x"
    assert store.try_get() == "x"
    assert len(store) == 0


def test_priority_store_yields_smallest_first():
    sim = Simulator()
    store = PriorityStore(sim)
    order = []

    def producer():
        yield store.put((3, "low"))
        yield store.put((1, "high"))
        yield store.put((2, "mid"))

    def consumer():
        yield sim.timeout(1.0)
        for _ in range(3):
            item = yield store.get()
            order.append(item[1])

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert order == ["high", "mid", "low"]


def test_resource_limits_concurrency():
    sim = Simulator()
    cpu = Resource(sim, capacity=2)
    running = []
    max_running = []

    def worker(name):
        request = cpu.request()
        yield request
        running.append(name)
        max_running.append(len(running))
        yield sim.timeout(1.0)
        running.remove(name)
        cpu.release(request)

    for i in range(5):
        sim.process(worker(f"w{i}"))
    sim.run()
    assert max(max_running) == 2
    assert sim.now == pytest.approx(3.0)


def test_resource_release_wakes_waiter():
    sim = Simulator()
    lock = Resource(sim, capacity=1)
    acquired_at = []

    def holder():
        request = lock.request()
        yield request
        yield sim.timeout(2.0)
        lock.release(request)

    def waiter():
        request = lock.request()
        yield request
        acquired_at.append(sim.now)
        lock.release(request)

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert acquired_at == [2.0]


def test_resource_counts():
    sim = Simulator()
    res = Resource(sim, capacity=3)
    assert res.available == 3
    req = res.request()
    assert req.triggered
    assert res.in_use == 1
    assert res.available == 2
    res.release(req)
    assert res.in_use == 0


def test_resource_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_container_put_and_get():
    sim = Simulator()
    tank = Container(sim, capacity=100.0, initial=50.0)
    levels = []

    def user():
        yield tank.get(30.0)
        levels.append(tank.level)
        yield tank.put(10.0)
        levels.append(tank.level)

    sim.process(user())
    sim.run()
    assert levels == [20.0, 30.0]


def test_container_get_blocks_until_enough():
    sim = Simulator()
    buffer = Container(sim, capacity=64.0, initial=0.0)
    acquired = []

    def consumer():
        yield buffer.get(32.0)
        acquired.append(sim.now)

    def filler():
        yield sim.timeout(1.0)
        yield buffer.put(16.0)
        yield sim.timeout(1.0)
        yield buffer.put(16.0)

    sim.process(consumer())
    sim.process(filler())
    sim.run()
    assert acquired == [2.0]


def test_container_put_blocks_when_full():
    sim = Simulator()
    buffer = Container(sim, capacity=10.0, initial=10.0)
    done = []

    def putter():
        yield buffer.put(5.0)
        done.append(sim.now)

    def drainer():
        yield sim.timeout(3.0)
        yield buffer.get(5.0)

    sim.process(putter())
    sim.process(drainer())
    sim.run()
    assert done == [3.0]


def test_container_try_get():
    sim = Simulator()
    buffer = Container(sim, capacity=10.0, initial=4.0)
    assert buffer.try_get(3.0) is True
    assert buffer.level == pytest.approx(1.0)
    assert buffer.try_get(3.0) is False


def test_container_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Container(sim, capacity=0)
    with pytest.raises(ValueError):
        Container(sim, capacity=10, initial=20)
    tank = Container(sim, capacity=10)
    with pytest.raises(ValueError):
        tank.get(0)
    with pytest.raises(ValueError):
        tank.put(-1)
    with pytest.raises(ValueError):
        tank.get(100)
