"""Tests of the declarative scenario API (repro.scenarios).

Covers the contracts the subsystem promises:

* every registered scenario builds a quick-tier config and decomposes into
  picklable points;
* a scenario round-trips through pickle and executes in a subprocess with
  the identical result;
* parallel sweep execution is bitwise-identical to sequential for the same
  seeds;
* the legacy ``run_fig*`` entry points delegate to the scenario machinery
  (same results, ``workers`` supported);
* the CLI can list and run every registered scenario at quick scale.

Multi-process tests are marked ``sweep`` so hosts that cannot fork worker
pools can deselect them (``-m "not sweep"``); everything else runs
in-process.
"""

from __future__ import annotations

import dataclasses
import io
import pickle
from concurrent.futures import ProcessPoolExecutor
from contextlib import redirect_stdout

import pytest

from repro.scenarios import (
    PointSpec,
    ScenarioParams,
    ScenarioRunner,
    Sweep,
    config_fingerprint,
    derive_seed,
    execute_points,
    get,
    names,
    run,
    run_point,
)
from repro.scenarios.cli import main as cli_main

#: Scenarios light enough to execute end-to-end in the quick test tier.
FAST_SCENARIOS = ["fig7b", "table2", "quickstart", "graphml-task"]


class TestRegistry:
    def test_all_expected_scenarios_registered(self):
        registered = names()
        for name in [
            "fig5",
            "fig6",
            "fig7a",
            "fig7b",
            "fig8",
            "fig9",
            "table2",
            "quickstart",
            "failure-injection",
            "fraud-pipeline",
            "geo-latency",
            "graphml-task",
        ]:
            assert name in registered

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get("no-such-scenario")

    def test_every_scenario_builds_all_tiers_and_points(self):
        for name in names():
            scenario = get(name)
            for scale in scenario.scales():
                config = scenario.build_config(ScenarioParams(scale=scale))
                points = scenario.points(config)
                assert points, f"{name}@{scale} produced no points"
                for point in points:
                    assert callable(point.fn)
                    # Module-level function: picklable for pool workers.
                    assert pickle.loads(pickle.dumps(point)).fn is point.fn

    def test_unknown_scale_and_field_raise(self):
        scenario = get("fig7b")
        with pytest.raises(ValueError, match="no scale"):
            scenario.build_config(ScenarioParams(scale="galactic"))
        with pytest.raises(ValueError, match="no field"):
            scenario.build_config(ScenarioParams(overrides={"warp_factor": 9}))

    def test_seed_and_overrides_applied(self):
        scenario = get("fig7b")
        config = scenario.build_config(
            ScenarioParams(scale="quick", seed=99, overrides={"slots": 4})
        )
        assert config.seed == 99
        assert config.slots == 4
        assert config.user_counts == [20, 60]  # quick tier preserved

    def test_scalar_override_onto_list_field_wraps(self):
        scenario = get("fig7b")
        config = scenario.build_config(
            ScenarioParams(scale="quick", overrides={"user_counts": 40})
        )
        assert config.user_counts == [40]

    def test_fig6_mode_and_acks_overrides_reach_the_points(self):
        """The comparison honors the configured primary mode/acks instead of
        silently rebuilding both arms from hardcoded values."""
        from repro.broker.coordinator import CoordinationMode

        scenario = get("fig6")
        config = scenario.build_config(
            ScenarioParams(
                scale="quick",
                overrides={"mode": CoordinationMode.KRAFT, "acks": "all"},
            )
        )
        points = scenario.points(config)
        assert [p.label for p in points] == ["kraft", "zookeeper"]
        assert points[0].kwargs["config"].acks == "all"
        assert points[1].kwargs["config"].acks == 1  # paper setting, other arm
        # Default config keeps the historical ZooKeeper-first comparison.
        default_points = scenario.points(scenario.build_config(ScenarioParams()))
        assert [p.label for p in default_points] == ["zookeeper", "kraft"]


class TestFingerprintAndSeeds:
    def test_fingerprint_stable_and_sensitive(self):
        scenario = get("fig7b")
        one = scenario.build_config(ScenarioParams(scale="quick"))
        two = scenario.build_config(ScenarioParams(scale="quick"))
        assert scenario.fingerprint(one) == scenario.fingerprint(two)
        two.seed = two.seed + 1
        assert scenario.fingerprint(one) != scenario.fingerprint(two)

    def test_fingerprint_covers_nested_values(self):
        @dataclasses.dataclass
        class Cfg:
            values: list
            table: dict

        a = config_fingerprint("x", Cfg([1, 2], {"k": 1}))
        b = config_fingerprint("x", Cfg([1, 2], {"k": 2}))
        assert a != b

    def test_derive_seed_deterministic(self):
        assert derive_seed(42, "point", 3) == derive_seed(42, "point", 3)
        assert derive_seed(42, "point", 3) != derive_seed(42, "point", 4)
        assert derive_seed(41, "point", 3) != derive_seed(42, "point", 3)


class TestRunner:
    def test_run_result_shape(self):
        result = run("fig7b", params=ScenarioParams(scale="quick"))
        assert result.scenario == "fig7b"
        assert result.scale == "quick"
        assert result.seed == 11
        assert result.n_points == 2
        assert result.point_labels == ["users=20", "users=60"]
        assert result.problems == []
        assert result.metrics["normalized_20u"] == 1.0
        summary = result.summary()
        assert summary["metrics"] == result.metrics
        import json

        json.dumps(summary)  # JSON-safe

    def test_legacy_entry_point_delegates(self):
        from repro.experiments.fig7b_traffic_monitoring import Fig7bConfig, run_fig7b

        config = Fig7bConfig(user_counts=[20, 60], slots=10)
        legacy = run_fig7b(config)
        scenario = run("fig7b", params=ScenarioParams(scale="quick"))
        assert legacy == scenario.result

    def test_run_kwargs_front_door(self):
        result = run("fig7b", scale="quick", seed=11)
        assert result.seed == 11
        with pytest.raises(TypeError, match="not both"):
            run("fig7b", params=ScenarioParams(), scale="quick")


@pytest.mark.sweep
class TestSubprocessExecution:
    def test_point_round_trips_through_subprocess(self):
        """build -> pickle -> run in a worker process == run in-process."""
        scenario = get("fig7b")
        config = scenario.build_config(ScenarioParams(scale="quick"))
        point = scenario.points(config)[0]
        local = run_point(pickle.loads(pickle.dumps(point)))
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(run_point, point).result()
        assert remote == local

    def test_parallel_run_equals_sequential(self):
        sequential = run("fig7b", params=ScenarioParams(scale="quick"), workers=1)
        parallel = run("fig7b", params=ScenarioParams(scale="quick"), workers=2)
        assert parallel.result == sequential.result
        assert parallel.metrics == sequential.metrics
        assert parallel.fingerprint == sequential.fingerprint

    def test_parallel_sweep_bitwise_equals_sequential(self):
        def sweep_outcomes(workers: int):
            outcome = (
                Sweep("fig7b", params=ScenarioParams(scale="quick", overrides={"slots": 6}))
                .over("user_counts", [20, 40, 60])
                .run(workers=workers)
            )
            return outcome.values(), [r.result for r in outcome.results()]

        seq_values, seq_results = sweep_outcomes(1)
        par_values, par_results = sweep_outcomes(3)
        assert par_values == seq_values
        assert par_results == seq_results  # bitwise: dataclass float equality


class TestSweep:
    def test_sweep_requires_axis(self):
        with pytest.raises(ValueError, match="no axes"):
            Sweep("fig7b").run()
        with pytest.raises(ValueError, match="sweep_axis"):
            Sweep("table2").over(None, [1, 2])

    def test_mistyped_axis_field_raises(self):
        with pytest.raises(ValueError, match="no field"):
            Sweep("fig7b").over("user_count", [20, 40]).configs()  # typo

    def test_default_axis_and_scalar_wrapping(self):
        sweep = Sweep("fig7b", params=ScenarioParams(scale="quick")).over(None, [20, 40])
        combos = sweep.configs()
        assert [config.user_counts for _, config in combos] == [[20], [40]]
        assert [combo for combo, _ in combos] == [(20,), (40,)]

    def test_sweep_metrics_rows(self):
        outcome = (
            Sweep("fig7b", params=ScenarioParams(scale="quick", overrides={"slots": 4}))
            .over("user_counts", [20, 40])
            .run()
        )
        rows = outcome.metrics_rows()
        assert [row["user_counts"] for row in rows] == [20, 40]
        assert all("mean_runtime_20u_s" in rows[0] for _ in [0])
        # Per-run wall clock is the shared batch's wall (runs interleave in
        # one pool), never a meaningless zero.
        assert all(r.wall_seconds == outcome.wall_seconds for r in outcome.results())
        assert outcome.wall_seconds > 0
        import json

        json.dumps(outcome.summary())


class TestCli:
    def test_list_names_every_scenario(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = cli_main(["list"])
        assert code == 0
        output = buffer.getvalue()
        for name in names():
            assert name in output

    @pytest.mark.parametrize("name", FAST_SCENARIOS)
    def test_run_fast_scenarios_at_quick_scale(self, name):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = cli_main(["run", name, "--scale", "quick"])
        assert code == 0
        assert f"scenario {name}" in buffer.getvalue()

    def test_every_registered_scenario_runs_at_quick_scale_smoke(self):
        """Smoke: the heavy scenarios at least build config + points via the
        CLI machinery; the fast ones run fully in the parametrized test."""
        for name in names():
            scenario = get(name)
            config = scenario.build_config(ScenarioParams(scale="quick"))
            assert scenario.points(config)

    def test_set_scalar_and_comma_list_on_list_fields(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = cli_main(
                ["run", "fig7b", "--scale", "quick", "--set", "user_counts=20",
                 "--set", "slots=4", "--json"]
            )
        assert code == 0
        import json

        payload = json.loads(buffer.getvalue())
        assert payload["n_points"] == 1  # scalar wrapped into [20]
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = cli_main(
                ["run", "fig5", "--scale", "quick", "--set", "components=broker",
                 "--set", "link_delays_ms=25", "--set", "n_documents=6",
                 "--set", "duration=25.0", "--json"]
            )
        assert code == 0
        payload = json.loads(buffer.getvalue())
        assert payload["points"] == ["broker@25ms"]

    def test_parse_override_comma_spellings_agree(self):
        from repro.scenarios.cli import _parse_override

        assert _parse_override("user_counts=20,40") == ("user_counts", [20, 40])
        assert _parse_override("components=producer,broker") == (
            "components",
            ["producer", "broker"],
        )
        assert _parse_override("slots=4") == ("slots", 4)

    def test_run_with_set_and_json(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = cli_main(
                ["run", "fig7b", "--scale", "quick", "--set", "slots=4", "--json"]
            )
        assert code == 0
        import json

        payload = json.loads(buffer.getvalue())
        assert payload["scenario"] == "fig7b"
        assert payload["n_points"] == 2

    def test_run_sweep_cli(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = cli_main(
                ["run", "fig7b", "--scale", "quick", "--set", "slots=4", "--sweep", "20,40"]
            )
        assert code == 0
        assert "sweep fig7b" in buffer.getvalue()

    def test_unknown_scenario_and_scale_fail_cleanly(self):
        assert cli_main(["run", "no-such-scenario"]) == 2
        assert cli_main(["run", "fig7b", "--scale", "galactic"]) == 2

    def test_quickstart_with_four_partitions_passes_check(self):
        """The whole catalog accepts ``--set partitions=N``; the quickstart
        pipeline runs sharded end-to-end and passes its checks."""
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = cli_main(["run", "quickstart", "--set", "partitions=4", "--check"])
        assert code == 0
        assert "scenario quickstart" in buffer.getvalue()

    def test_quickstart_with_idempotence_passes_check(self):
        """The whole catalog accepts ``--set idempotence=true``: the pipeline
        runs on the exactly-once produce path and delivers identically."""
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = cli_main(
                ["run", "quickstart", "--scale", "quick",
                 "--set", "idempotence=true", "--check"]
            )
        assert code == 0
        assert "scenario quickstart" in buffer.getvalue()

    def test_partitions_sweep_axis_works_for_fig7b(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = cli_main(
                ["run", "fig7b", "--scale", "quick", "--set", "slots=4",
                 "--set", "user_counts=20", "--sweep", "partitions=1,2", "--json"]
            )
        assert code == 0
        import json

        payload = json.loads(buffer.getvalue())
        assert [run_["values"] for run_ in payload["runs"]] == [[1], [2]]

    def test_reps_flag_reports_mean_and_ci(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = cli_main(
                ["run", "fig7b", "--scale", "quick", "--set", "slots=4",
                 "--set", "user_counts=20", "--reps", "2", "--json"]
            )
        assert code == 0
        import json

        payload = json.loads(buffer.getvalue())
        (entry,) = payload["runs"]
        assert entry["metrics"]["repetitions"] == 2
        assert "mean_runtime_20u_s_mean" in entry["metrics"]
        assert "mean_runtime_20u_s_ci95" in entry["metrics"]


class TestSweepRepetitions:
    """Per-point seed studies: N derived-seed reps per configuration."""

    def _sweep(self):
        return (
            Sweep("fig7b", params=ScenarioParams(scale="quick", overrides={"slots": 4}))
            .over("user_counts", [20])
            .repetitions(3)
        )

    def test_rep_seeds_derived_and_deterministic(self):
        result = self._sweep().run().results()[0]
        base_seed = result.seed
        assert result.metrics["repetitions"] == 3
        assert result.metrics["rep_seeds"] == [
            base_seed,
            derive_seed(base_seed, "rep", 1),
            derive_seed(base_seed, "rep", 2),
        ]
        again = self._sweep().run().results()[0]
        assert again.metrics == result.metrics

    def test_mean_and_ci_aggregate_numeric_metrics(self):
        result = self._sweep().run().results()[0]
        metrics = result.metrics
        assert "mean_runtime_20u_s_mean" in metrics
        assert metrics["mean_runtime_20u_s_ci95"] >= 0.0
        # Rep 0 runs the base seed, so the primary value is a plain-run value.
        plain = (
            Sweep("fig7b", params=ScenarioParams(scale="quick", overrides={"slots": 4}))
            .over("user_counts", [20])
            .run()
            .results()[0]
        )
        assert metrics["mean_runtime_20u_s"] == plain.metrics["mean_runtime_20u_s"]

    def test_repetitions_one_is_a_plain_sweep(self):
        base = self._sweep()
        base._repetitions = 1
        result = base.run().results()[0]
        assert "repetitions" not in result.metrics

    def test_zero_axis_repetition_study_allowed(self):
        outcome = (
            Sweep("fig7b", params=ScenarioParams(scale="quick", overrides={"slots": 4}))
            .repetitions(2)
            .run()
        )
        assert len(outcome.runs) == 1
        assert outcome.results()[0].metrics["repetitions"] == 2

    def test_invalid_repetitions_rejected(self):
        with pytest.raises(ValueError, match="repetitions"):
            Sweep("fig7b").repetitions(0)


class TestExecutePoints:
    def test_sequential_order_preserved(self):
        points = [
            PointSpec(fn=_echo, kwargs={"value": index}, index=index)
            for index in range(5)
        ]
        assert execute_points(points, workers=1) == [0, 1, 2, 3, 4]

    @pytest.mark.sweep
    def test_pool_order_preserved(self):
        points = [
            PointSpec(fn=_echo, kwargs={"value": index}, index=index)
            for index in range(5)
        ]
        assert execute_points(points, workers=3) == [0, 1, 2, 3, 4]


def _echo(value: int) -> int:
    return value


class TestVectorizedKnob:
    """The columnar engine path is a catalog-wide scenario knob.

    ``vectorized`` defaults to on everywhere; ``--set vectorized=false`` pins
    every SPE job of a scenario to the per-record reference path.  Broker-only
    studies (fig6, fig7a, fig9) accept the knob for catalog uniformity and
    ignore it.  Results must be identical either way — the columnar plane is
    an execution strategy, not a semantics change.
    """

    def test_every_scenario_config_accepts_vectorized(self):
        for name in names():
            scenario = get(name)
            config = scenario.build_config(
                ScenarioParams(scale="quick", overrides={"vectorized": False})
            )
            assert config.vectorized is False, name
            default = scenario.build_config(ScenarioParams(scale="quick"))
            assert default.vectorized is True, name

    def test_set_vectorized_false_via_cli(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = cli_main(
                ["run", "quickstart", "--scale", "quick",
                 "--set", "vectorized=false", "--check"]
            )
        assert code == 0
        assert "scenario quickstart" in buffer.getvalue()

    def test_fig7b_columnar_equals_record_at_quick_scale(self):
        overrides = {"slots": 4, "user_counts": 20}
        columnar = run(
            "fig7b", params=ScenarioParams(scale="quick", overrides=dict(overrides))
        )
        record = run(
            "fig7b",
            params=ScenarioParams(
                scale="quick", overrides={**overrides, "vectorized": False}
            ),
        )
        # Bitwise: dataclass float equality on the full result payload.
        assert columnar.result == record.result
        assert columnar.metrics == record.metrics

    def test_fraud_pipeline_columnar_equals_record_at_quick_scale(self):
        columnar = run("fraud-pipeline", params=ScenarioParams(scale="quick"))
        record = run(
            "fraud-pipeline",
            params=ScenarioParams(scale="quick", overrides={"vectorized": False}),
        )
        assert columnar.result == record.result
        assert columnar.metrics == record.metrics
