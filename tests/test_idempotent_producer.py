"""Idempotent producer: id allocation, broker-side dedup, fencing, failover.

Covers the exactly-once produce path end to end (see
``docs/exactly_once.md``): the coordinator's ``(producer_id, epoch)``
allocation, the producer's per-partition sequence stamping, the partition
leader's duplicate-retry drop (acknowledged distinguishably, observable via
``broker.metrics``), zombie-epoch fencing, and the dedup state surviving
leader elections through replica fetch.  The seeded chaos matrix lives in
``tests/test_chaos_exactly_once.py``; this file pins the mechanisms.
"""

import pytest

from repro.broker import (
    BrokerCluster,
    ClusterConfig,
    CoordinationMode,
    ProducerConfig,
    ProducerRecord,
    TopicConfig,
)
from repro.broker.batch import RecordBatch
from repro.broker.log import PartitionLog
from repro.network.link import LinkConfig
from repro.network.topology import star_topology
from repro.simulation import Simulator


def build_cluster(
    n_sites=3,
    partitions=1,
    replication=2,
    mode=CoordinationMode.ZOOKEEPER,
    seed=1,
    session_timeout=6.0,
    preferred_leader=None,
):
    sim = Simulator(seed=seed)
    network, sites = star_topology(
        sim, n_sites, link_config=LinkConfig(latency_ms=2.0, bandwidth_mbps=100.0)
    )
    cluster = BrokerCluster(
        network,
        coordinator_host=sites[0],
        config=ClusterConfig(mode=mode, session_timeout=session_timeout),
    )
    for site in sites:
        cluster.add_broker(site)
    cluster.add_topic(
        TopicConfig(
            name="topicA",
            partitions=partitions,
            replication_factor=replication,
            preferred_leader=preferred_leader,
        )
    )
    cluster.start(settle_time=2.0)
    return sim, network, sites, cluster


# ---------------------------------------------------------------------------
# PartitionLog dedup table
# ---------------------------------------------------------------------------
class TestDedupTable:
    def make_batch(self, pid, epoch, base_seq, n=3, topic="t"):
        batch = RecordBatch(topic, 0)
        for i in range(n):
            batch.append(key=f"k{i}", value=base_seq + i, size=10, produced_at=0.0)
        batch.producer_id = pid
        batch.producer_epoch = epoch
        batch.base_sequence = base_seq
        return batch

    def test_first_batch_accepted_and_state_recorded(self):
        log = PartitionLog("t")
        batch = self.make_batch(7, 0, 0)
        assert log.check_producer_batch(7, 0, 0) == "ok"
        log.append_batch(batch, timestamp=1.0, leader_epoch=0)
        entry = log.producer_entry(7)
        assert entry.epoch == 0
        assert entry.last_sequence == 2
        assert entry.last_base_offset == 0
        assert entry.last_count == 3

    def test_exact_retry_is_duplicate(self):
        log = PartitionLog("t")
        log.append_batch(self.make_batch(7, 0, 0), timestamp=1.0, leader_epoch=0)
        assert log.check_producer_batch(7, 0, 0) == "duplicate"
        # Older batches are duplicates too, whatever their length.
        log.append_batch(self.make_batch(7, 0, 3), timestamp=1.0, leader_epoch=0)
        assert log.check_producer_batch(7, 0, 0) == "duplicate"
        assert log.check_producer_batch(7, 0, 3) == "duplicate"
        assert log.check_producer_batch(7, 0, 6) == "ok"

    def test_partial_overlap_distinguished_from_full_duplicate(self):
        # The replica held only a prefix of the batch when it took over: the
        # retry is NOT a full duplicate — acking it as one would lose the
        # tail records forever.
        log = PartitionLog("t")
        log.append_batch(self.make_batch(7, 0, 0, n=3), timestamp=1.0, leader_epoch=0)
        assert log.check_producer_batch(7, 0, 0, count=3) == "duplicate"
        assert log.check_producer_batch(7, 0, 2, count=1) == "duplicate"
        assert log.check_producer_batch(7, 0, 2, count=3) == "partial"
        assert log.check_producer_batch(7, 0, 0, count=5) == "partial"
        assert log.check_producer_batch(7, 0, 3, count=3) == "ok"

    def test_sequence_gap_allowed(self):
        # Sequences are consumed at drain time; an expired batch leaves a gap.
        log = PartitionLog("t")
        log.append_batch(self.make_batch(7, 0, 0), timestamp=1.0, leader_epoch=0)
        assert log.check_producer_batch(7, 0, 10) == "ok"

    def test_stale_epoch_fenced_and_new_epoch_resets_sequences(self):
        log = PartitionLog("t")
        log.append_batch(self.make_batch(7, 1, 5), timestamp=1.0, leader_epoch=0)
        assert log.check_producer_batch(7, 0, 8) == "fenced"
        # A fresh epoch restarts the sequence space from zero.
        assert log.check_producer_batch(7, 2, 0) == "ok"
        log.append_batch(self.make_batch(7, 2, 0), timestamp=1.0, leader_epoch=0)
        assert log.producer_entry(7).epoch == 2
        assert log.producer_entry(7).last_sequence == 2

    def test_independent_producers_do_not_interfere(self):
        log = PartitionLog("t")
        log.append_batch(self.make_batch(1, 0, 0), timestamp=1.0, leader_epoch=0)
        assert log.check_producer_batch(2, 0, 0) == "ok"
        log.append_batch(self.make_batch(2, 0, 0), timestamp=1.0, leader_epoch=0)
        assert log.check_producer_batch(1, 0, 0) == "duplicate"
        assert log.check_producer_batch(2, 0, 3) == "ok"

    def test_replica_fetch_batch_carries_and_rebuilds_state(self):
        leader = PartitionLog("t")
        leader.append_batch(self.make_batch(3, 1, 0), timestamp=1.0, leader_epoch=0)
        leader.append(key="x", value="plain", size=5, timestamp=1.0,
                      produced_at=1.0, leader_epoch=0)
        leader.append_batch(self.make_batch(3, 1, 3), timestamp=2.0, leader_epoch=0)
        wire = leader.read_batch(0, with_epochs=True)
        assert wire.producer_ids == [3, 3, 3, -1, 3, 3, 3]
        assert wire.sequences == [0, 1, 2, -1, 3, 4, 5]
        follower = PartitionLog("t")
        follower.append_wire_batch(wire)
        entry = follower.producer_entry(3)
        assert entry.epoch == 1
        assert entry.last_sequence == 5
        # The follower (a future leader) rejects the same retries.
        assert follower.check_producer_batch(3, 1, 3) == "duplicate"
        assert follower.check_producer_batch(3, 1, 6) == "ok"

    def test_consumer_fetch_batches_do_not_carry_producer_columns(self):
        log = PartitionLog("t")
        log.append_batch(self.make_batch(3, 0, 0), timestamp=1.0, leader_epoch=0)
        log.advance_high_watermark(3)
        batch = log.committed_read_batch(0)
        assert batch.producer_ids is None
        assert batch.sequences is None

    def test_truncation_rolls_the_dedup_table_back(self):
        log = PartitionLog("t")
        log.append_batch(self.make_batch(3, 0, 0), timestamp=1.0, leader_epoch=0)
        log.append_batch(self.make_batch(3, 0, 3), timestamp=2.0, leader_epoch=0)
        assert log.producer_entry(3).last_sequence == 5
        log.truncate_to(3)
        assert log.producer_entry(3).last_sequence == 2
        # The truncated batch may legitimately be re-sent now.
        assert log.check_producer_batch(3, 0, 3) == "ok"
        log.truncate_to(0)
        assert log.producer_entry(3) is None

    def test_record_views_expose_producer_identity(self):
        log = PartitionLog("t")
        log.append_batch(self.make_batch(9, 2, 4, n=2), timestamp=1.0, leader_epoch=0)
        records = log.all_records()
        assert [r.producer_id for r in records] == [9, 9]
        assert [r.producer_epoch for r in records] == [2, 2]
        assert [r.sequence for r in records] == [4, 5]


# ---------------------------------------------------------------------------
# Coordinator id allocation
# ---------------------------------------------------------------------------
class TestProducerIdAllocation:
    def test_ids_sequential_and_epoch_bumps_on_reinit(self):
        sim, network, sites, cluster = build_cluster()
        coordinator = cluster.coordinator
        first = coordinator._handle_init_producer_id({"name": "alpha"})
        second = coordinator._handle_init_producer_id({"name": "beta"})
        again = coordinator._handle_init_producer_id({"name": "alpha"})
        assert (first["producer_id"], first["producer_epoch"]) == (0, 0)
        assert (second["producer_id"], second["producer_epoch"]) == (1, 0)
        assert (again["producer_id"], again["producer_epoch"]) == (0, 1)
        events = [e["event"] for e in coordinator.event_log]
        assert "producer-id-allocated" in events
        assert "producer-epoch-bumped" in events

    def test_missing_name_rejected(self):
        sim, network, sites, cluster = build_cluster()
        assert cluster.coordinator._handle_init_producer_id({})["error"]

    def test_producer_initializes_over_the_wire(self):
        sim, network, sites, cluster = build_cluster()
        producer = cluster.create_producer(
            sites[1], config=ProducerConfig(idempotence=True)
        )

        def workload():
            yield sim.timeout(8.0)
            producer.start()

        sim.process(workload())
        sim.run(until=15.0)
        assert producer.producer_id == 0
        assert producer.producer_epoch == 0
        assert cluster.coordinator.producer_ids[producer.name] == [0, 0]


# ---------------------------------------------------------------------------
# End-to-end: dedup, fencing, failover inheritance
# ---------------------------------------------------------------------------
class TestIdempotentProduce:
    def test_clean_run_allocates_sequences_and_delivers_once(self):
        sim, network, sites, cluster = build_cluster(partitions=2)
        producer = cluster.create_producer(
            sites[0], config=ProducerConfig(idempotence=True)
        )
        consumer = cluster.create_consumer(sites[2])
        consumer.subscribe(["topicA"])

        def workload():
            yield sim.timeout(8.0)
            producer.start()
            consumer.start()
            for i in range(30):
                producer.send(
                    ProducerRecord(topic="topicA", key=i % 6, value=i, size=100)
                )
                yield sim.timeout(0.05)

        sim.process(workload())
        sim.run(until=40.0)
        assert producer.records_acked == 30
        assert consumer.records_consumed == 30
        assert producer.duplicate_acks == 0
        # Per-partition sequence counters cover exactly the sent records.
        assert sum(producer._next_sequences.values()) == 30
        leader = cluster.leader_broker("topicA", 0)
        entry = leader.log_for("topicA", 0).producer_entry(producer.producer_id)
        assert entry is not None and entry.epoch == 0

    def test_duplicate_retry_dropped_with_distinguishable_ack(self):
        """Replay the exact wire batch the leader already appended: the second
        produce is acknowledged as a duplicate (not appended, not silent)."""
        sim, network, sites, cluster = build_cluster()
        producer = cluster.create_producer(
            sites[0], config=ProducerConfig(idempotence=True)
        )

        def workload():
            yield sim.timeout(8.0)
            producer.start()
            producer.send(ProducerRecord(topic="topicA", key="a", value=1, size=80))
            yield sim.timeout(4.0)

        sim.process(workload())
        sim.run(until=20.0)
        leader = cluster.leader_broker("topicA", 0)
        log = leader.log_for("topicA", 0)
        assert log.log_end_offset == 1
        # Rebuild the identical retry batch and replay it straight into the
        # leader's produce handler (what a Transport retry does after an ack
        # loss: same producer id, same epoch, same base sequence).
        retry = RecordBatch("topicA", 0)
        retry.append(key="a", value=1, size=80, produced_at=0.0)
        retry.producer_id = producer.producer_id
        retry.producer_epoch = producer.producer_epoch
        retry.base_sequence = 0
        replies = []

        def replay():
            handler = leader._handle_produce(
                {"type": "produce", "topic": "topicA", "partition": 0,
                 "batch": retry, "acks": 1}
            )
            reply = yield sim.process(handler)
            replies.append(reply)

        sim.process(replay())
        sim.run(until=25.0)
        payload = replies[0].payload
        assert payload["error"] is None
        assert payload["duplicate"] is True
        assert payload["base_offset"] == 0  # original offsets echoed back
        assert log.log_end_offset == 1  # nothing re-appended
        assert leader.metrics["duplicate_batches"] == 1
        assert leader.metrics["duplicate_records"] == 1

    def test_partial_prefix_retry_appends_only_the_lost_tail(self):
        """A leader holding only a replicated *prefix* of a batch (replica
        fetch sliced mid-batch before the election) must append the missing
        tail on retry — never ack the whole batch as a duplicate."""
        sim, network, sites, cluster = build_cluster()
        sim.run(until=10.0)
        leader = cluster.leader_broker("topicA", 0)
        log = leader.log_for("topicA", 0)
        # The replica-inherited prefix: records 0-1 of a 5-record batch.
        prefix = RecordBatch("topicA", 0)
        for i in range(2):
            prefix.append(key="k", value=i, size=40, produced_at=0.0)
        prefix.producer_id, prefix.producer_epoch, prefix.base_sequence = 9, 0, 0
        log.append_batch(prefix, timestamp=sim.now, leader_epoch=0)
        # The producer's full retry of the original 5-record batch.
        retry = RecordBatch("topicA", 0)
        for i in range(5):
            retry.append(key="k", value=i, size=40, produced_at=0.0)
        retry.producer_id, retry.producer_epoch, retry.base_sequence = 9, 0, 0
        replies = []

        def replay():
            handler = leader._handle_produce(
                {"type": "produce", "topic": "topicA", "partition": 0,
                 "batch": retry, "acks": 1}
            )
            reply = yield sim.process(handler)
            replies.append(reply)

        sim.process(replay())
        sim.run(until=15.0)
        payload = replies[0].payload
        assert payload["error"] is None
        assert payload["duplicate"] is True  # positions not re-derived
        assert payload["base_offset"] == -1
        # Exactly the lost tail was appended: one copy of every record.
        assert [r.value for r in log.all_records()] == [0, 1, 2, 3, 4]
        assert leader.metrics["duplicate_records"] == 2  # the prefix only
        assert log.producer_entry(9).last_sequence == 4
        # A further identical retry is now a plain full duplicate.
        assert log.check_producer_batch(9, 0, 0, count=5) == "duplicate"

    def test_zombie_instance_fenced_after_epoch_bump(self):
        sim, network, sites, cluster = build_cluster()
        config = ProducerConfig(idempotence=True, delivery_timeout=8.0)
        zombie = cluster.create_producer(sites[0], config=config, name="app-producer")
        successor = cluster.create_producer(
            sites[1],
            config=ProducerConfig(idempotence=True, delivery_timeout=8.0),
            name="app-producer",
        )

        def workload():
            yield sim.timeout(8.0)
            zombie.start()
            zombie.send(ProducerRecord(topic="topicA", key="k", value=1, size=50))
            yield sim.timeout(4.0)
            successor.start()  # re-init same name -> epoch bump on coordinator
            yield sim.timeout(3.0)
            successor.send(ProducerRecord(topic="topicA", key="k", value=2, size=50))
            yield sim.timeout(3.0)
            zombie.send(ProducerRecord(topic="topicA", key="k", value=3, size=50))
            yield sim.timeout(10.0)

        sim.process(workload())
        sim.run(until=60.0)
        assert successor.producer_id == zombie.producer_id
        assert successor.producer_epoch == zombie.producer_epoch + 1
        assert zombie.records_acked == 1  # only the pre-fence record landed
        assert zombie.records_failed == 1
        fenced = sum(b.metrics["fenced_produces"] for b in cluster.brokers.values())
        assert fenced >= 1
        # The fenced record never reached the log.
        log = cluster.leader_broker("topicA", 0).log_for("topicA", 0)
        assert [r.value for r in log.all_records()] == [1, 2]

    def test_dedup_state_survives_leader_election(self):
        """Kill the leader after an acked batch replicated: the new leader's
        replica-built dedup table recognizes the stale retry."""
        sim, network, sites, cluster = build_cluster(
            n_sites=4,
            replication=3,
            session_timeout=4.0,
            # Lead away from the coordinator's host, so disconnecting the
            # leader leaves the coordinator able to run the election.
            preferred_leader="broker-site3",
        )
        producer = cluster.create_producer(
            sites[3], config=ProducerConfig(idempotence=True)
        )

        def workload():
            yield sim.timeout(8.0)
            producer.start()
            for i in range(5):
                producer.send(
                    ProducerRecord(topic="topicA", key="k", value=i, size=60)
                )
            yield sim.timeout(6.0)  # replicate everywhere

        sim.process(workload())
        sim.run(until=20.0)
        old_leader = cluster.leader_broker("topicA", 0)
        old_log = old_leader.log_for("topicA", 0)
        assert old_log.log_end_offset == 5
        # Fail the leader's host; a follower is elected.
        from repro.network.faults import FaultInjector, NodeDisconnection

        injector = FaultInjector(network)
        # Fault start times are delays from scheduling time.
        injector.schedule_node_disconnection(
            NodeDisconnection(node=old_leader.host.name, start=0.1)
        )
        sim.run(until=sim.now + 15.0)
        new_leader = cluster.leader_broker("topicA", 0)
        assert new_leader is not None and new_leader is not old_leader
        new_log = new_leader.log_for("topicA", 0)
        entry = new_log.producer_entry(producer.producer_id)
        assert entry is not None
        assert entry.last_sequence == 4  # inherited through replica fetch
        # A stale retry of the last batch replayed against the new leader is
        # dropped as a duplicate, not re-appended.
        retry = RecordBatch("topicA", 0)
        retry.append(key="k", value=4, size=60, produced_at=0.0)
        retry.producer_id = producer.producer_id
        retry.producer_epoch = producer.producer_epoch
        retry.base_sequence = 4
        replies = []

        def replay():
            handler = new_leader._handle_produce(
                {"type": "produce", "topic": "topicA", "partition": 0,
                 "batch": retry, "acks": 1}
            )
            reply = yield sim.process(handler)
            replies.append(reply)

        before = new_log.log_end_offset
        sim.process(replay())
        sim.run(until=sim.now + 5.0)
        payload = replies[0].payload
        assert payload["error"] is None and payload["duplicate"] is True
        assert new_log.log_end_offset == before
        assert new_leader.metrics["duplicate_records"] == 1

    def test_records_expire_while_init_handshake_is_unreachable(self):
        """An idempotent producer cut off from the cluster can never finish
        the id handshake — queued records must still fail at their
        ``delivery_timeout`` instead of hanging forever."""
        from repro.broker.errors import DeliveryFailed
        from repro.network.faults import FaultInjector, NodeDisconnection

        sim, network, sites, cluster = build_cluster()
        producer = cluster.create_producer(
            sites[1],
            config=ProducerConfig(idempotence=True, delivery_timeout=5.0),
        )
        injector = FaultInjector(network)
        injector.schedule_node_disconnection(
            NodeDisconnection(node=sites[1], start=6.0)
        )
        outcomes = []

        def workload():
            yield sim.timeout(8.0)  # host already cut off; handshake can't run
            producer.start()
            # Explicit partition: resolves immediately, lands in the
            # accumulator (the path only the init loop can expire).
            future = producer.send(
                ProducerRecord(topic="topicA", partition=0, key="k", value=1, size=50)
            )
            try:
                value = yield future
                outcomes.append(("acked", value))
            except DeliveryFailed as exc:
                outcomes.append(("failed", str(exc), sim.now))

        sim.process(workload())
        sim.run(until=30.0)
        assert producer.producer_id == -1  # handshake never completed
        assert outcomes and outcomes[0][0] == "failed"
        assert "delivery timeout" in outcomes[0][1]
        assert outcomes[0][2] == pytest.approx(13.0, abs=1.0)  # send + 5s
        assert producer.records_failed == 1
        assert producer.buffer_used == 0

    def test_non_idempotent_path_untouched(self):
        """With idempotence off nothing changes: no id handshake, headers stay
        -1, no producer columns in the log, dedup metrics stay zero."""
        sim, network, sites, cluster = build_cluster()
        producer = cluster.create_producer(sites[0])
        consumer = cluster.create_consumer(sites[2])
        consumer.subscribe(["topicA"])

        def workload():
            yield sim.timeout(8.0)
            producer.start()
            consumer.start()
            for i in range(10):
                producer.send(ProducerRecord(topic="topicA", key=i, value=i, size=90))
                yield sim.timeout(0.1)

        sim.process(workload())
        sim.run(until=30.0)
        assert producer.producer_id == -1
        assert producer._next_sequences == {}
        assert consumer.records_consumed == 10
        assert cluster.coordinator.producer_ids == {}
        log = cluster.leader_broker("topicA", 0).log_for("topicA", 0)
        assert log.producer_state == {}
        assert all(r.producer_id == -1 for r in log.all_records())
        assert cluster.total_duplicates_dropped() == 0

    def test_idempotent_wire_size_matches_non_idempotent(self):
        """The identity rides inside the 61-byte v2 batch header: wire sizes
        (and therefore simulated timings) are identical either way."""
        batch_plain = RecordBatch("t", 0)
        batch_idem = RecordBatch("t", 0, producer_id=5, producer_epoch=1,
                                 base_sequence=7)
        for batch in (batch_plain, batch_idem):
            batch.append(key="k", value="v", size=100, produced_at=0.0)
        assert batch_plain.wire_size == batch_idem.wire_size

    def test_stub_config_parses_idempotence(self):
        from repro.core.configs import ProducerStubConfig

        parsed = ProducerStubConfig.from_dict({"topicName": "t", "idempotence": True})
        assert parsed.idempotence is True
        assert ProducerStubConfig.from_dict({"topicName": "t"}).idempotence is False

    def test_every_scenario_config_has_the_idempotence_knob(self):
        """`--set idempotence=true` must work catalog-wide."""
        import dataclasses

        from repro.scenarios import registry

        for name in registry.names():
            scenario = registry.get(name)
            config = scenario.build_config()
            assert hasattr(config, "idempotence"), (
                f"scenario {name!r} config lacks the idempotence field"
            )
            assert dataclasses.is_dataclass(config)
