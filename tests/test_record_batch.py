"""RecordBatch round-trip invariants.

The batch-native record plane must be *observationally identical* to the old
per-record-dict wire format: encode -> ship -> decode yields the same
records, offsets and sizes.  These tests lock the invariants at three layers:
the batch itself, the partition log's batch append/read paths against its
per-record reference paths, and a full produce -> broker -> consume trip on
an emulated cluster.
"""

import pytest

from repro.broker.batch import BATCH_HEADER_OVERHEAD, EMPTY_BATCH, RecordBatch
from repro.broker.cluster import BrokerCluster, ClusterConfig
from repro.broker.consumer import ConsumerConfig
from repro.broker.log import PartitionLog
from repro.broker.message import ProducerRecord
from repro.broker.producer import ProducerConfig
from repro.broker.topic import TopicConfig
from repro.network.link import LinkConfig
from repro.network.topology import one_big_switch
from repro.simulation import Simulator


class TestRecordBatchUnit:
    def make_batch(self, n=5):
        batch = RecordBatch("t", 0)
        for i in range(n):
            batch.append(f"k{i}", f"v{i}", 10 + i, produced_at=float(i))
        return batch

    def test_append_maintains_header_totals(self):
        batch = self.make_batch(4)
        assert len(batch) == 4
        assert batch.total_size == 10 + 11 + 12 + 13
        assert batch.total_size == sum(batch.sizes)
        assert batch.wire_size == batch.total_size + BATCH_HEADER_OVERHEAD

    def test_offsets_follow_base(self):
        batch = self.make_batch(3)
        batch.base_offset = 7
        assert batch.last_offset == 9
        assert batch.next_offset == 10
        assert [offset for offset, *_ in batch.iter_records()] == [7, 8, 9]

    def test_iter_records_round_trips_columns(self):
        batch = self.make_batch(3)
        batch.base_offset = 0
        rows = list(batch.iter_records())
        assert rows == [
            (0, "k0", "v0", 10, 0.0),
            (1, "k1", "v1", 11, 1.0),
            (2, "k2", "v2", 12, 2.0),
        ]

    def test_headers_lazily_columnized(self):
        batch = RecordBatch("t", 0)
        batch.append("a", 1, 8, 0.0)
        assert batch.headers is None  # no allocation while all empty
        batch.append("b", 2, 8, 0.0, headers={"trace": "x"})
        batch.append("c", 3, 8, 0.0)
        assert batch.headers_at(0) == {}
        assert batch.headers_at(1) == {"trace": "x"}
        assert batch.headers_at(2) == {}

    def test_tail_trims_prefix_consistently(self):
        batch = self.make_batch(5)
        batch.base_offset = 100
        tail = batch.tail(2)
        assert tail.base_offset == 102
        assert tail.values == ["v2", "v3", "v4"]
        assert tail.total_size == sum(tail.sizes) == 12 + 13 + 14
        assert batch.tail(0) is batch

    def test_empty_batch_sentinel(self):
        assert len(EMPTY_BATCH) == 0
        assert not EMPTY_BATCH
        assert EMPTY_BATCH.total_size == 0


class TestPartitionLogBatchPaths:
    def make_log_via_batches(self):
        log = PartitionLog("t", 0)
        first = RecordBatch("t", 0)
        for i in range(3):
            first.append(f"k{i}", f"v{i}", 10, produced_at=float(i))
        second = RecordBatch("t", 0)
        for i in range(3, 5):
            second.append(f"k{i}", f"v{i}", 10, produced_at=float(i))
        assert log.append_batch(first, timestamp=1.0, leader_epoch=0) == 0
        assert log.append_batch(second, timestamp=2.0, leader_epoch=0) == 3
        return log

    def test_append_batch_assigns_contiguous_offsets(self):
        log = self.make_log_via_batches()
        assert log.log_end_offset == 5
        assert [record.offset for record in log.all_records()] == [0, 1, 2, 3, 4]
        assert log.size_bytes == 50

    def test_read_batch_equals_per_record_read(self):
        log = self.make_log_via_batches()
        log.advance_high_watermark(5)
        batch = log.read_batch(1, max_records=3)
        records = log.read(1, max_records=3)
        assert batch.base_offset == 1
        assert batch.values == [record.value for record in records]
        assert batch.keys == [record.key for record in records]
        assert batch.sizes == [record.size for record in records]
        assert batch.produced_ats == [record.produced_at for record in records]
        assert batch.timestamps == [record.timestamp for record in records]
        assert batch.total_size == sum(record.size for record in records)

    def test_committed_read_batch_respects_high_watermark(self):
        log = self.make_log_via_batches()
        log.advance_high_watermark(2)
        batch = log.committed_read_batch(0)
        assert len(batch) == 2
        assert batch.values == ["v0", "v1"]
        assert len(log.committed_read_batch(2)) == 0

    def test_read_batch_with_epochs(self):
        log = PartitionLog("t", 0)
        batch_a = RecordBatch("t", 0)
        batch_a.append(None, "a", 1, 0.0)
        batch_b = RecordBatch("t", 0)
        batch_b.append(None, "b", 1, 0.0)
        log.append_batch(batch_a, timestamp=0.0, leader_epoch=0)
        log.append_batch(batch_b, timestamp=0.0, leader_epoch=2)
        wire = log.read_batch(0, with_epochs=True)
        assert wire.leader_epochs == [0, 2]
        assert log.epoch_boundaries == [(0, 0), (2, 1)]

    def test_append_wire_batch_replicates_epoch_boundaries(self):
        leader = PartitionLog("t", 0)
        batch_a = RecordBatch("t", 0)
        batch_a.append(None, "a", 1, 0.0)
        batch_b = RecordBatch("t", 0)
        batch_b.append(None, "b", 1, 0.0)
        leader.append_batch(batch_a, timestamp=0.0, leader_epoch=0)
        leader.append_batch(batch_b, timestamp=0.0, leader_epoch=2)
        follower = PartitionLog("t", 0)
        appended = follower.append_wire_batch(leader.read_batch(0, with_epochs=True))
        assert appended == 2
        assert follower.epoch_boundaries == leader.epoch_boundaries
        assert [r.value for r in follower.all_records()] == ["a", "b"]

    def test_append_wire_batch_trims_overlap(self):
        log = self.make_log_via_batches()
        follower = PartitionLog("t", 0)
        follower.append_wire_batch(log.read_batch(0, max_records=3, with_epochs=True))
        assert follower.log_end_offset == 3
        # Refetch from offset 1: the two already-present records are skipped.
        appended = follower.append_wire_batch(log.read_batch(1, with_epochs=True))
        assert appended == 2
        assert follower.log_end_offset == 5
        assert [r.value for r in follower.all_records()] == [
            r.value for r in log.all_records()
        ]
        assert follower.size_bytes == log.size_bytes

    def test_append_wire_batch_rejects_gap(self):
        follower = PartitionLog("t", 0)
        gap = RecordBatch("t", 0, base_offset=5)
        gap.append(None, "x", 1, 0.0)
        if follower.storage is None:
            # Flat layout: offsets are array indices, gaps are corruption.
            with pytest.raises(ValueError):
                follower.append_wire_batch(gap)
        else:
            # Segmented logs (--log-backend=segments) adopt a leader's
            # retention/compaction gap with a forced segment boundary.
            assert follower.append_wire_batch(gap) == 1
            assert follower.log_end_offset == 6
            assert follower.record_at(5).value == "x"

    def test_truncate_after_batch_append_keeps_size_accounting(self):
        log = self.make_log_via_batches()
        discarded = log.truncate_to(2)
        assert [record.offset for record in discarded] == [2, 3, 4]
        assert log.size_bytes == 20
        assert log.log_end_offset == 2


def run_round_trip(seed, keep_payloads):
    """Seeded produce -> broker -> consume trip; returns observable state."""
    sim = Simulator(seed=seed)
    network = one_big_switch(
        sim,
        ["source", "broker", "sink"],
        default_config=LinkConfig(latency_ms=1.0, bandwidth_mbps=1000.0),
    )
    cluster = BrokerCluster(network, coordinator_host="broker", config=ClusterConfig())
    cluster.add_broker("broker")
    cluster.add_topic(TopicConfig(name="events", replication_factor=1))
    cluster.start(settle_time=1.0)
    producer = cluster.create_producer(
        "source", config=ProducerConfig(linger=0.01)
    )
    consumer = cluster.create_consumer(
        "sink",
        config=ConsumerConfig(poll_interval=0.02, keep_payloads=keep_payloads),
    )
    consumer.subscribe(["events"])
    sent = []

    def drive():
        yield sim.timeout(2.0)
        producer.start()
        consumer.start()
        for i in range(120):
            record = ProducerRecord(
                topic="events", key=i, value={"n": i, "blob": "x" * (i % 17)}
            )
            sent.append(record)
            producer.send(record)
            yield sim.timeout(0.01)

    sim.process(drive())
    sim.run(until=20.0)
    return sim, producer, consumer, sent


class TestEndToEndRoundTrip:
    def test_encode_ship_decode_is_lossless(self):
        _sim, producer, consumer, sent = run_round_trip(seed=5, keep_payloads=True)
        assert producer.records_acked == len(sent)
        assert consumer.records_consumed == len(sent)
        received = consumer.received
        # Offsets are contiguous from 0 and arrive in order.
        assert [record.offset for record in received] == list(range(len(sent)))
        # Keys, values and sizes survive the trip bit-for-bit.
        assert [record.key for record in received] == [record.key for record in sent]
        assert [record.value for record in received] == [
            record.value for record in sent
        ]
        assert [record.size for record in received] == [record.size for record in sent]
        assert consumer.bytes_consumed == sum(record.size for record in sent)
        # Delivery latency is measurable (produced_at carried through).
        assert all(record.latency > 0 for record in received)

    def test_header_fast_path_agrees_with_materialized_path(self):
        _sim, _producer, full, sent = run_round_trip(seed=5, keep_payloads=True)
        _sim2, _producer2, fast, _ = run_round_trip(seed=5, keep_payloads=False)
        # The O(1) header-accounting path and the per-record path observe the
        # same totals and final offsets for the same seeded trace.
        assert fast.records_consumed == full.records_consumed == len(sent)
        assert fast.bytes_consumed == full.bytes_consumed
        assert fast.offsets == full.offsets
        assert fast.received == []  # fast path materializes nothing
