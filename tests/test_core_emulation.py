"""End-to-end tests of the Emulation orchestrator and the monitoring stack."""

import pytest

from repro.core import Emulation
from repro.core.configs import FaultSpec, TopicSpec
from repro.core.monitoring import EventLog, LatencyTracker
from repro.core.resources import HostResourceModel, ServerSpec
from repro.core.task import TaskDescription
from repro.core.visualization import (
    cdf,
    moving_average,
    percentile,
    render_series_text,
    summarize_distribution,
)
from repro.network.topology import star_topology
from repro.simulation import Simulator


def simple_task(n_messages=30, rate=10.0, latency=5.0, replicas=1):
    """Producer -> broker -> consumer behind one switch."""
    task = TaskDescription("simple")
    task.add_node(
        "h1",
        prodType="SFST",
        prodCfg={
            "topicName": "events",
            "filePath": "events",
            "totalMessages": n_messages,
            "messagesPerSecond": rate,
        },
    )
    task.add_node("h2", brokerCfg={"coordinator": True})
    task.add_node("h3", consType="STANDARD", consCfg={"topics": ["events"]})
    task.add_switch("s1")
    for host in ("h1", "h2", "h3"):
        task.add_link(host, "s1", lat=latency, bw=100.0)
    task.set_topics([TopicSpec(name="events", replicas=replicas, primary_broker="h2")])
    return task


class TestEmulationLifecycle:
    def test_build_creates_all_components(self):
        emulation = Emulation(simple_task(), seed=1).build()
        assert len(emulation.network.hosts) == 3
        assert len(emulation.network.switches) == 1
        assert emulation.cluster is not None
        assert set(emulation.producers) == {"h1"}
        assert set(emulation.consumers) == {"h3"}

    def test_run_delivers_messages_end_to_end(self):
        emulation = Emulation(simple_task(n_messages=25), seed=1)
        result = emulation.run(duration=40.0)
        assert result.messages_produced == 25
        assert result.messages_consumed == 25
        assert result.acked_but_lost == 0
        assert result.latency_summary["mean"] > 0
        assert result.latency_summary["count"] == 25

    def test_dataset_contents_are_delivered(self):
        emulation = Emulation(
            simple_task(n_messages=5, rate=5.0),
            seed=2,
            datasets={"events": ["alpha", "beta", "gamma", "delta", "epsilon"]},
        )
        emulation.run(duration=30.0)
        sink = emulation.consumers["h3"]
        values = [record.value for record in sink.records]
        assert values == ["alpha", "beta", "gamma", "delta", "epsilon"]

    def test_invalid_task_rejected_at_construction(self):
        task = simple_task()
        task.add_link("h1", "ghost")
        with pytest.raises(ValueError):
            Emulation(task)

    def test_emulation_from_graphml_string(self):
        from repro.core.graphml import to_graphml

        text = to_graphml(simple_task(n_messages=5, rate=5.0))
        emulation = Emulation(text, seed=3)
        result = emulation.run(duration=30.0)
        assert result.messages_consumed == 5

    def test_run_twice_rejected(self):
        emulation = Emulation(simple_task(n_messages=3, rate=5.0), seed=1)
        emulation.run(duration=20.0)
        with pytest.raises(RuntimeError):
            emulation.run(duration=20.0)

    def test_accessors_require_build(self):
        emulation = Emulation(simple_task())
        with pytest.raises(RuntimeError):
            _ = emulation.network

    def test_resource_report_collected(self):
        emulation = Emulation(simple_task(n_messages=10), seed=1)
        result = emulation.run(duration=30.0)
        assert len(result.resource_report.samples) > 10
        assert 0 < result.resource_report.median_cpu() < 100
        assert 0 < result.resource_report.peak_memory() < 100

    def test_event_log_contains_lifecycle_events(self):
        emulation = Emulation(simple_task(n_messages=5, rate=5.0), seed=1)
        result = emulation.run(duration=25.0)
        events = [entry.event for entry in result.event_log.events]
        assert "built" in events
        assert "clients-started" in events
        assert "finished" in events
        assert any(entry.component == "coordinator" for entry in result.event_log.events)

    def test_latency_grows_with_link_delay(self):
        fast = Emulation(simple_task(n_messages=15, latency=2.0), seed=4).run(duration=35.0)
        slow = Emulation(simple_task(n_messages=15, latency=80.0), seed=4).run(duration=35.0)
        assert slow.latency_summary["mean"] > fast.latency_summary["mean"] * 3

    def test_fault_injection_from_task_description(self):
        task = simple_task(n_messages=60, rate=2.0, replicas=1)
        task.set_faults(
            [FaultSpec(kind="node_disconnect", targets=["h1"], start=20.0, duration=10.0)]
        )
        emulation = Emulation(task, seed=5)
        result = emulation.run(duration=60.0)
        actions = [event.action for event in emulation.fault_injector.history()]
        assert "node-disconnect" in actions
        assert "node-reconnect" in actions
        # The producer was cut off for a while, so delivery keeps working
        # afterwards and nothing is lost silently (acks retry through).
        assert result.messages_consumed > 0


class TestMonitoringPrimitives:
    def test_event_log_queries(self):
        log = EventLog()
        log.record(1.0, "broker", "leader-elected", partition="t-0")
        log.record(2.0, "emulation", "finished")
        assert len(log) == 2
        assert log.by_component("broker")[0].event == "leader-elected"
        assert log.by_event("finished")[0].time == 2.0
        assert len(log.between(0.5, 1.5)) == 1
        assert [e.time for e in log.sorted()] == [1.0, 2.0]

    def test_latency_tracker_statistics(self):
        tracker = LatencyTracker()
        for value in [0.1, 0.2, 0.3, 0.4, 1.0]:
            tracker.observe(time=1.0, latency=value, topic="a")
        assert tracker.mean("a") == pytest.approx(0.4)
        assert tracker.maximum() == 1.0
        assert tracker.percentile(0.5) == pytest.approx(0.3)
        with pytest.raises(ValueError):
            tracker.observe(1.0, -1.0)
        with pytest.raises(ValueError):
            tracker.percentile(2.0)

    def test_visualization_helpers(self):
        points = cdf([3.0, 1.0, 2.0])
        assert points[0] == (1.0, pytest.approx(1 / 3))
        assert points[-1] == (3.0, pytest.approx(1.0))
        assert percentile([1, 2, 3, 4], 0.5) == 3 or percentile([1, 2, 3, 4], 0.5) == 2
        summary = summarize_distribution([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        smoothed = moving_average([(0, 0.0), (1, 10.0)], window=2)
        assert smoothed[1][1] == pytest.approx(5.0)
        text = render_series_text([(0, 1.0), (1, 2.0)], label="demo")
        assert "demo" in text

    def test_resource_model_scales_with_components(self):
        sim = Simulator(seed=1)
        network_small, _ = star_topology(sim, 2)
        model_small = HostResourceModel(network_small, server=ServerSpec())
        sample_small = model_small.sample()

        sim2 = Simulator(seed=1)
        network_large, _ = star_topology(sim2, 10)
        model_large = HostResourceModel(network_large, server=ServerSpec())
        sample_large = model_large.sample()
        assert sample_large.cpu_percent > sample_small.cpu_percent
        assert sample_large.memory_percent > sample_small.memory_percent

    def test_resource_report_cdf_and_fraction(self):
        from repro.core.resources import ResourceReport, ResourceSample

        report = ResourceReport(
            samples=[ResourceSample(time=i, cpu_percent=float(i), memory_percent=10.0) for i in range(1, 11)]
        )
        assert report.median_cpu() == pytest.approx(5.5)
        assert report.fraction_below(5.0) == pytest.approx(0.5)
        assert report.cpu_cdf()[-1][1] == pytest.approx(1.0)
        assert report.peak_memory() == 10.0
