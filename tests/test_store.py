"""Tests for the key-value store, table store and networked store server."""

import pytest

from repro.network.topology import one_big_switch
from repro.simulation import Simulator
from repro.store import KeyValueStore, StoreClient, StoreServer, TableStore


class TestKeyValueStore:
    def test_put_get_delete(self):
        store = KeyValueStore()
        store.put("a", 1)
        assert store.get("a") == 1
        assert store.get("missing", "default") == "default"
        assert store.delete("a") is True
        assert store.delete("a") is False
        assert len(store) == 0

    def test_overwrite_updates_size_accounting(self):
        store = KeyValueStore()
        store.put("k", "x" * 100)
        size_before = store.bytes_stored
        store.put("k", "y" * 10)
        assert store.bytes_stored < size_before
        assert len(store) == 1

    def test_increment(self):
        store = KeyValueStore()
        assert store.increment("counter") == 1
        assert store.increment("counter", 5) == 6
        assert store.get("counter") == 6

    def test_scan_with_prefix(self):
        store = KeyValueStore()
        store.put("user:1", "a")
        store.put("user:2", "b")
        store.put("order:1", "c")
        assert [k for k, _ in store.scan("user:")] == ["user:1", "user:2"]
        assert len(store.scan()) == 3

    def test_operation_counters(self):
        store = KeyValueStore()
        store.put("a", 1)
        store.get("a")
        store.delete("a")
        assert (store.puts, store.gets, store.deletes) == (1, 1, 1)

    def test_contains_and_iter(self):
        store = KeyValueStore()
        store.put("x", 1)
        assert "x" in store
        assert list(iter(store)) == ["x"]
        store.clear()
        assert store.bytes_stored == 0


class TestTableStore:
    def test_upsert_and_get(self):
        store = TableStore()
        store.upsert("ships", "ship-1", {"port": "halifax", "count": 3})
        row = store.get("ships", "ship-1")
        assert row.get("port") == "halifax"
        assert row.get("missing", 0) == 0

    def test_upsert_merges_columns(self):
        store = TableStore()
        store.upsert("t", "k", {"a": 1})
        store.upsert("t", "k", {"b": 2})
        row = store.get("t", "k")
        assert row.columns == {"a": 1, "b": 2}

    def test_select_filter_order_limit(self):
        store = TableStore()
        for i in range(10):
            store.upsert("rides", i, {"tip": float(i), "area": "A" if i % 2 else "B"})
        rows = store.select(
            "rides",
            where=lambda row: row.get("area") == "A",
            order_by="tip",
            descending=True,
            limit=2,
        )
        assert [row.get("tip") for row in rows] == [9.0, 7.0]

    def test_delete_and_count(self):
        store = TableStore()
        store.upsert("t", 1, {"v": 1})
        store.upsert("t", 2, {"v": 2})
        assert store.table("t").count() == 2
        assert store.delete("t", 1) is True
        assert store.table("t").count(lambda row: row.get("v") == 2) == 1

    def test_bytes_stored_tracks_tables(self):
        store = TableStore()
        assert store.bytes_stored == 0
        store.upsert("t", 1, {"payload": "x" * 200})
        assert store.bytes_stored >= 200

    def test_table_names(self):
        store = TableStore()
        store.upsert("beta", 1, {})
        store.upsert("alpha", 1, {})
        assert store.table_names() == ["alpha", "beta"]


class TestStoreServer:
    def _setup(self):
        sim = Simulator(seed=2)
        net = one_big_switch(sim, ["app", "db"])
        server = StoreServer(net.host("db"))
        client = StoreClient(net.host("app"), store_host="db")
        return sim, net, server, client

    def test_remote_put_and_get(self):
        sim, net, server, client = self._setup()
        results = []

        def scenario():
            yield from client.put("greeting", "hello")
            value = yield from client.get("greeting")
            results.append(value)

        sim.process(scenario())
        sim.run()
        assert results == ["hello"]
        assert server.operations_served == 2

    def test_remote_increment(self):
        sim, net, server, client = self._setup()
        results = []

        def scenario():
            yield from client.increment("hits")
            reply = yield from client.increment("hits", 4)
            results.append(reply["value"])

        sim.process(scenario())
        sim.run()
        assert results == [5]

    def test_remote_upsert_and_select(self):
        sim, net, server, client = self._setup()
        rows_seen = []

        def scenario():
            yield from client.upsert("ships", "s1", {"count": 2})
            yield from client.upsert("ships", "s2", {"count": 5})
            rows = yield from client.select("ships")
            rows_seen.extend(rows)

        sim.process(scenario())
        sim.run()
        assert len(rows_seen) == 2
        assert {row["key"] for row in rows_seen} == {"s1", "s2"}

    def test_put_async_from_sink_path(self):
        sim, net, server, client = self._setup()
        client.put_async("results", "k1", {"value": 42})
        client.put_async("results", "k2", "plain")
        sim.run()
        assert server.tables.get("results", "k1").get("value") == 42
        assert server.tables.get("results", "k2").get("value") == "plain"

    def test_missing_key_returns_none(self):
        sim, net, server, client = self._setup()
        results = []

        def scenario():
            value = yield from client.get("nope")
            results.append(value)

        sim.process(scenario())
        sim.run()
        assert results == [None]

    def test_unknown_operation_rejected(self):
        sim, net, server, client = self._setup()
        replies = []

        def scenario():
            reply = yield from client._call({"op": "drop-table"})
            replies.append(reply)

        sim.process(scenario())
        sim.run()
        assert replies[0]["ok"] is False
