"""Seeded chaos matrix: exactly-once produce under kills, link loss, failover.

Drives the reusable harness in :mod:`repro.testing.chaos` across a matrix of
base seeds x fault-schedule profiles x partition counts (with the consumer
group sized to the partition count) and asserts the three invariants with
idempotence **on**:

* no duplicate ``(key, sequence)`` in any partition log,
* acknowledged implies durable in a current leader log,
* per-key order preserved in every log.

The control arm proves the matrix is not vacuous: with idempotence **off**
the *same* fault schedules demonstrably write duplicates into the logs (and
the paired on-arm drops them — observable via ``broker.metrics`` and the
producer's distinguishable DuplicateSequence acks).

Everything is derived from base seeds, so any failing combination replays
bit-for-bit.  All tests carry the ``chaos`` marker; deselect with
``-m "not chaos"`` for the fastest local tier.
"""

import pytest

from repro.testing.chaos import (
    CHAOS_PROFILES,
    TXN_CHAOS_PROFILES,
    FaultSchedule,
    check_all_acked_consumed,
    run_chaos_produce,
    run_chaos_txn_produce,
)

pytestmark = pytest.mark.chaos

SEEDS = (11, 23, 37)
#: (partitions, consumer-group size) arms of the matrix.
SHARDING = ((1, 1), (4, 4))


# ---------------------------------------------------------------------------
# Schedule determinism
# ---------------------------------------------------------------------------
class TestFaultSchedule:
    def generate(self, seed=5, profile="mixed"):
        return FaultSchedule.generate(
            seed,
            profile,
            duration=50.0,
            kill_hosts=["broker2", "broker3"],
            loss_links=[("producer", "s1")],
            failover_partitions=["chaos-0"],
        )

    def test_same_seed_replays_identically(self):
        assert self.generate().actions == self.generate().actions

    def test_different_seeds_and_profiles_diverge(self):
        base = self.generate().actions
        assert self.generate(seed=6).actions != base
        assert self.generate(profile="broker-kill").actions != base

    def test_every_fault_heals_before_the_tail(self):
        schedule = self.generate()
        assert schedule.actions, "schedule should contain faults"
        for action in schedule.actions:
            assert 0.0 < action.start < schedule.duration * 0.65
            assert action.start + action.duration < schedule.duration * 0.75

    def test_profiles_restrict_fault_kinds(self):
        kills = {a.kind for a in self.generate(profile="broker-kill").actions}
        loss = {a.kind for a in self.generate(profile="link-loss").actions}
        assert kills == {"broker_kill"}
        assert loss == {"link_loss"}

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            self.generate(profile="meteor-strike")


# ---------------------------------------------------------------------------
# The matrix: idempotence on -> all three invariants hold
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("profile", CHAOS_PROFILES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("partitions,group_size", SHARDING)
def test_exactly_once_invariants_hold_under_chaos(profile, seed, partitions, group_size):
    result = run_chaos_produce(
        seed, profile, partitions=partitions, group_size=group_size, idempotence=True
    )
    # The run must have exercised the data plane end to end...
    assert result.records_sent == 200
    assert result.records_acked == 200
    violations = result.invariant_violations()
    assert violations == [], (
        f"invariants violated for seed={seed} profile={profile} "
        f"partitions={partitions}: {violations[:5]}"
    )
    # ...and the faults must have actually bitten: every combination of this
    # matrix deterministically forces at least one duplicate retry that the
    # broker-side dedup absorbed (values pinned by the base seeds).
    assert result.duplicates_dropped > 0
    assert result.duplicate_acks > 0


def test_group_of_two_over_four_partitions_also_holds():
    """Group size below the partition count (members own several partitions)."""
    result = run_chaos_produce(23, "mixed", partitions=4, group_size=2, idempotence=True)
    assert result.records_acked == 200
    assert result.invariant_violations() == []


def test_acked_records_eventually_consumed_by_the_group():
    """Eventual delivery rides along: the group saw every acked record."""
    result = run_chaos_produce(11, "broker-kill", partitions=4, group_size=4,
                               idempotence=True)
    missing = check_all_acked_consumed(result.acked, result.consumers)
    assert missing == [], missing[:5]


def test_chaos_runs_replay_deterministically():
    """Same seed/profile -> bitwise identical outcome (logs, acks, dedup)."""

    def fingerprint():
        result = run_chaos_produce(23, "link-loss", partitions=4, group_size=4,
                                   idempotence=True)
        logs = []
        for broker in result.cluster.brokers.values():
            for key, log in sorted(broker.logs.items()):
                logs.append(
                    (broker.name, key,
                     [(r.key, r.value, r.sequence) for r in log.all_records()])
                )
        return (result.acked, result.duplicates_dropped, result.duplicate_acks, logs)

    assert fingerprint() == fingerprint()


# ---------------------------------------------------------------------------
# The control arm: idempotence off -> the same schedules write duplicates
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("profile", CHAOS_PROFILES)
def test_without_idempotence_the_same_schedule_duplicates(profile):
    """Every profile's seed-23 schedule demonstrably duplicates records when
    dedup is off, and the paired idempotent run absorbs those retries."""
    off = run_chaos_produce(23, profile, partitions=1, group_size=1, idempotence=False)
    duplicates = off.log_duplicates()
    assert duplicates, (
        f"expected the {profile} schedule to produce at-least-once duplicates "
        f"with idempotence off"
    )
    assert off.duplicates_dropped == 0  # nothing carries a producer id

    on = run_chaos_produce(23, profile, partitions=1, group_size=1, idempotence=True)
    assert on.log_duplicates() == []
    assert on.duplicates_dropped > 0  # the same retries were dropped, visibly


# ---------------------------------------------------------------------------
# Transactional matrix: atomic commits under mid-transaction faults
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("profile", TXN_CHAOS_PROFILES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("partitions,group_size", SHARDING)
def test_transactions_stay_atomic_under_chaos(profile, seed, partitions, group_size):
    """Every committed transaction is observed all-or-nothing by
    read_committed consumers, no aborted record surfaces, and per-key order
    holds — through a deliberate abort plus the profile's mid-transaction
    fault (producer kill + takeover, coordinator outage, leader failover)."""
    result = run_chaos_txn_produce(
        seed, profile, partitions=partitions, group_size=group_size,
        isolation="read_committed",
    )
    # The run exercised both outcomes and resolved every transaction: all
    # but the deliberately-aborted one committed (the producer-kill arm
    # re-runs the fenced transaction to a commit on the successor).
    assert len(result.committed_txns) == result.n_txns - 1
    assert len(result.aborted_txns) == 1
    assert result.uncertain_txns == []
    violations = result.invariant_violations()
    assert violations == [], (
        f"transactional invariants violated for seed={seed} profile={profile} "
        f"partitions={partitions}: {violations[:5]}"
    )
    # ...and the fault actually bit the transactional machinery.
    cluster = result.cluster
    if profile == "producer-kill":
        assert len(result.producers) == 2
        zombie, successor = result.producers
        assert successor.producer_epoch == zombie.producer_epoch + 1
        # Deliberate abort + the fencing abort of the zombie's half.
        assert cluster.total_transactions_aborted() >= 2
    else:
        assert cluster.total_transactions_aborted() >= 1
    assert cluster.total_transactions_committed() == len(result.committed_txns)
    assert cluster.total_control_batches() > 0


@pytest.mark.parametrize("profile", TXN_CHAOS_PROFILES)
@pytest.mark.parametrize("seed", SEEDS)
def test_read_uncommitted_control_arm_sees_torn_and_aborted_writes(profile, seed):
    """The matrix is not vacuous: the *same* seeds replayed with consumers on
    the default read_uncommitted isolation demonstrably deliver records from
    aborted transactions (torn writes the read_committed arm filtered)."""
    result = run_chaos_txn_produce(
        seed, profile, partitions=1, group_size=1, isolation="read_uncommitted"
    )
    violations = result.invariant_violations()
    assert violations, (
        f"expected the {profile} seed-{seed} schedule to expose aborted "
        f"writes under read_uncommitted"
    )
    assert any("no committed transaction wrote" in v for v in violations)


def test_txn_chaos_runs_replay_deterministically():
    """Same seed/profile -> identical commit/abort outcomes, consumer
    deliveries and coordinator metrics."""

    def fingerprint():
        result = run_chaos_txn_produce(11, "producer-kill", partitions=4,
                                       group_size=4)
        consumed = [
            [(r.key, r.value, r.offset) for r in consumer.received]
            for consumer in result.consumers
        ]
        return (
            result.committed_txns,
            result.aborted_txns,
            result.uncertain_txns,
            consumed,
            dict(result.cluster.coordinator.txn_metrics),
            result.cluster.total_control_batches(),
        )

    assert fingerprint() == fingerprint()


# ---------------------------------------------------------------------------
# SPE-facing chaos: the streaming engine ingests a chaos-ridden topic
# ---------------------------------------------------------------------------
def _run_chaos_spe(
    seed,
    profile,
    vectorized,
    partitions=2,
    n_records=120,
    n_keys=6,
    duration=50.0,
):
    """A chaos run whose sink is the SPE: producer -> faulted cluster -> engine.

    Mirrors :func:`run_chaos_produce`'s topology and workload, but the
    consumer side is a :class:`StreamingContext` pipeline (map -> filter ->
    memory sink), so the fault schedule stresses the engine's ingest plane —
    columnar or record, per ``vectorized`` (None follows the session's
    ``--engine-path`` default).
    """
    from repro.broker.cluster import BrokerCluster, ClusterConfig
    from repro.broker.message import ProducerRecord
    from repro.broker.producer import ProducerConfig
    from repro.broker.topic import TopicConfig
    from repro.engine import StreamingConfig, StreamingContext
    from repro.network.link import LinkConfig
    from repro.network.topology import one_big_switch
    from repro.scenarios.spec import derive_seed
    from repro.simulation import Simulator

    sim = Simulator(seed=derive_seed(seed, "chaos-spe", profile))
    broker_hosts = ["broker1", "broker2", "broker3"]
    network = one_big_switch(
        sim,
        broker_hosts + ["producer", "spe"],
        default_config=LinkConfig(latency_ms=8.0, bandwidth_mbps=200.0),
    )
    cluster = BrokerCluster(
        network, coordinator_host="broker1", config=ClusterConfig(session_timeout=5.0)
    )
    for host in broker_hosts:
        cluster.add_broker(host)
    topic = "chaos"
    cluster.add_topic(
        TopicConfig(
            name=topic,
            partitions=partitions,
            replication_factor=3,
            preferred_leader="broker-broker2",
        )
    )
    cluster.start(settle_time=2.0)
    producer = cluster.create_producer(
        "producer",
        config=ProducerConfig(
            acks="all",
            idempotence=True,
            request_timeout=0.6,
            retry_backoff=0.1,
            delivery_timeout=duration,
            linger=0.01,
        ),
        name="chaos-producer",
    )
    ctx = StreamingContext(
        network.host("spe"),
        config=StreamingConfig(batch_interval=0.5, vectorized=vectorized),
        cluster=cluster,
    )
    sink = (
        ctx.kafka_stream([topic])
        .map(lambda v: v)
        .filter(lambda v: v >= 0)
        .to_memory(name="chaos-spe-sink")
    )
    schedule = FaultSchedule.generate(
        seed,
        profile,
        duration,
        kill_hosts=broker_hosts[1:],
        loss_links=[("producer", "s1"), ("broker2", "s1")],
        failover_partitions=[f"{topic}-{p}" for p in range(partitions)],
    )
    schedule.apply(network, cluster)
    interval = duration * 0.45 / n_records

    def drive():
        yield sim.timeout(8.0)
        producer.start()
        ctx.start()
        yield sim.timeout(2.0)
        for i in range(n_records):
            producer.send(
                ProducerRecord(
                    topic=topic, key=f"k{i % n_keys}", value=i // n_keys, size=120
                )
            )
            yield sim.timeout(interval)

    sim.process(drive())
    sim.run(until=duration)
    return ctx, sink


@pytest.mark.parametrize("profile", CHAOS_PROFILES)
def test_spe_ingest_invariants_hold_under_chaos(profile, engine_path):
    """The engine-side chaos matrix (runs once per path under
    ``--engine-path=both``): with idempotence on, whatever reaches the SPE
    sink through kills/loss/failover is duplicate-free and per-key ordered."""
    ctx, sink = _run_chaos_spe(11, profile, vectorized=None)
    assert ctx.total_input_records() > 0, "chaos run was vacuous"
    assert len(sink.results) == ctx.total_input_records()
    per_key = {}
    for record in sink.results:
        per_key.setdefault(record.key, []).append(record.value)
    for key, values in per_key.items():
        assert values == sorted(set(values)), (
            f"{engine_path}/{profile}: key {key} saw duplicated or reordered "
            f"sequences: {values}"
        )


@pytest.mark.parametrize("profile", CHAOS_PROFILES)
def test_spe_chaos_paths_agree_bitwise(profile):
    """Columnar and record execution of the identical chaos timeline deliver
    the identical records with identical provenance and batch accounting."""
    runs = {}
    for label, vectorized in (("columnar", True), ("record", False)):
        ctx, sink = _run_chaos_spe(23, profile, vectorized=vectorized)
        runs[label] = (
            [
                (r.key, r.value, r.event_time, r.ingest_time, r.size)
                for r in sink.results
            ],
            [(m.input_records, m.input_bytes) for m in ctx.batch_metrics],
        )
    assert runs["columnar"] == runs["record"]
