"""Integration tests for the streaming context, sources and sinks."""

import pytest

from repro.broker import BrokerCluster, ClusterConfig, ProducerRecord, TopicConfig
from repro.engine import ExecutorConfig, StreamingConfig, StreamingContext
from repro.network.link import LinkConfig
from repro.network.topology import star_topology
from repro.simulation import Simulator
from repro.store import StoreClient, StoreServer


def make_context(sim=None, batch_interval=1.0, parallelism=4, cores=8):
    sim = sim or Simulator(seed=3)
    network, sites = star_topology(sim, 2)
    host = network.host(sites[0])
    host.set_cores(cores)
    config = StreamingConfig(
        batch_interval=batch_interval,
        executor=ExecutorConfig(parallelism=parallelism),
    )
    return sim, network, StreamingContext(host, config=config)


class TestMemoryPipelines:
    def test_word_count_pipeline(self):
        sim, network, ctx = make_context()
        stream = ctx.memory_stream()
        sink = (
            stream.flat_map(lambda text: text.split())
            .map_pairs(lambda word: (word, 1))
            .reduce_by_key(lambda a, b: a + b)
            .to_memory()
        )
        source = ctx.sources[0]

        def feed():
            ctx.start()
            source.push_value("the quick brown fox", now=sim.now)
            source.push_value("the lazy dog", now=sim.now)
            yield sim.timeout(3.0)
            ctx.stop()

        sim.process(feed())
        sim.run(until=5.0)
        counts = {record.key: record.value for record in sink.results}
        assert counts["the"] == 2
        assert counts["fox"] == 1

    def test_stateful_counts_accumulate_across_batches(self):
        sim, network, ctx = make_context(batch_interval=0.5)
        stream = ctx.memory_stream()
        sink = (
            stream.map_pairs(lambda word: (word, 1))
            .update_state_by_key(lambda new, old: (old or 0) + sum(new))
            .to_memory()
        )
        source = ctx.sources[0]

        def feed():
            ctx.start()
            source.push_value("alpha", now=sim.now)
            yield sim.timeout(1.0)
            source.push_value("alpha", now=sim.now)
            yield sim.timeout(1.0)
            ctx.stop()

        sim.process(feed())
        sim.run(until=4.0)
        assert sink.latest_by_key()["alpha"] == 2

    def test_batch_metrics_recorded(self):
        sim, network, ctx = make_context(batch_interval=0.5)
        stream = ctx.memory_stream()
        stream.map(lambda x: x).to_memory()
        source = ctx.sources[0]

        def feed():
            ctx.start()
            for _ in range(10):
                source.push_value("x", now=sim.now)
            yield sim.timeout(2.0)
            ctx.stop()

        sim.process(feed())
        sim.run(until=3.0)
        assert ctx.batches_run >= 3
        busy = [m for m in ctx.batch_metrics if m.input_records > 0]
        assert len(busy) == 1
        assert busy[0].input_records == 10
        assert busy[0].processing_time > 0

    def test_processing_time_scales_with_input_volume(self):
        sim, network, ctx = make_context(batch_interval=1.0, parallelism=1)
        stream = ctx.memory_stream()
        stream.map(lambda x: x).to_memory(keep_records=False)
        source = ctx.sources[0]

        def feed():
            ctx.start()
            for _ in range(100):
                source.push_value("x", now=sim.now)
            yield sim.timeout(1.5)
            for _ in range(2000):
                source.push_value("x", now=sim.now)
            yield sim.timeout(1.5)
            ctx.stop()

        sim.process(feed())
        sim.run(until=6.0)
        busy = [m for m in ctx.batch_metrics if m.input_records > 0]
        assert len(busy) == 2
        small, large = busy
        assert large.processing_time > small.processing_time

    def test_parallelism_saturates_at_core_count(self):
        def run(parallelism, cores):
            sim, network, ctx = make_context(
                batch_interval=1.0, parallelism=parallelism, cores=cores
            )
            stream = ctx.memory_stream()
            stream.map(lambda x: x).to_memory(keep_records=False)
            source = ctx.sources[0]

            def feed():
                ctx.start()
                for _ in range(5000):
                    source.push_value("x", now=sim.now)
                yield sim.timeout(4.0)
                ctx.stop()

            sim.process(feed())
            sim.run(until=8.0)
            busy = [m for m in ctx.batch_metrics if m.input_records > 0]
            return busy[0].processing_time

        serial = run(parallelism=1, cores=8)
        parallel = run(parallelism=4, cores=8)
        oversubscribed = run(parallelism=16, cores=2)
        assert parallel < serial
        assert oversubscribed > parallel

    def test_context_requires_output_stream(self):
        sim, network, ctx = make_context()
        with pytest.raises(RuntimeError):
            ctx.start()

    def test_kafka_stream_requires_cluster(self):
        sim, network, ctx = make_context()
        with pytest.raises(RuntimeError):
            ctx.kafka_stream(["topic"])

    def test_max_batches_stops_the_context(self):
        sim, network, ctx = make_context(batch_interval=0.2)
        ctx.config.max_batches = 3
        stream = ctx.memory_stream()
        stream.map(lambda x: x).to_memory()
        ctx.start()
        sim.run(until=5.0)
        assert ctx.batches_run == 3
        assert not ctx.running


class TestKafkaIntegration:
    def _cluster(self, seed=5):
        sim = Simulator(seed=seed)
        network, sites = star_topology(
            sim, 3, link_config=LinkConfig(latency_ms=2.0, bandwidth_mbps=100.0)
        )
        cluster = BrokerCluster(network, coordinator_host=sites[0], config=ClusterConfig())
        for site in sites:
            cluster.add_broker(site)
        cluster.add_topic(TopicConfig(name="input", replication_factor=1))
        cluster.add_topic(TopicConfig(name="output", replication_factor=1))
        cluster.start(settle_time=2.0)
        return sim, network, sites, cluster

    def test_kafka_to_kafka_pipeline(self):
        sim, network, sites, cluster = self._cluster()
        producer = cluster.create_producer(sites[0])
        spe_host = network.host(sites[1])
        ctx = StreamingContext(
            spe_host, config=StreamingConfig(batch_interval=0.5), cluster=cluster
        )
        stream = ctx.kafka_stream(["input"])
        stream.map(lambda text: text.upper()).to_kafka("output")
        final_consumer = cluster.create_consumer(sites[2])
        final_consumer.subscribe(["output"])

        def workload():
            yield sim.timeout(10.0)
            producer.start()
            ctx.start()
            final_consumer.start()
            for i in range(10):
                producer.send(ProducerRecord(topic="input", value=f"msg-{i}", size=60))
                yield sim.timeout(0.2)

        sim.process(workload())
        sim.run(until=40.0)
        assert ctx.total_input_records() == 10
        values = [record.value["value"] for record in final_consumer.received]
        assert sorted(values) == sorted(f"MSG-{i}" for i in range(10))
        # End-to-end event time is preserved through the SPE stage.
        assert all(record.value["event_time"] > 0 for record in final_consumer.received)

    def test_store_sink_persists_results(self):
        sim, network, sites, cluster = self._cluster()
        producer = cluster.create_producer(sites[0])
        store_server = StoreServer(network.host(sites[2]))
        spe_host = network.host(sites[1])
        ctx = StreamingContext(
            spe_host, config=StreamingConfig(batch_interval=0.5), cluster=cluster
        )
        client = StoreClient(spe_host, store_host=sites[2])
        from repro.engine.sinks import StoreSink

        stream = ctx.kafka_stream(["input"])
        stream.map_pairs(lambda v: (v, 1)).reduce_by_key(lambda a, b: a + b).to(
            StoreSink(client, table="counts")
        )

        def workload():
            yield sim.timeout(10.0)
            producer.start()
            ctx.start()
            for value in ["ship-1", "ship-2", "ship-1"]:
                producer.send(ProducerRecord(topic="input", value=value, size=40))
                yield sim.timeout(0.1)

        sim.process(workload())
        sim.run(until=30.0)
        table = store_server.tables.table("counts")
        assert table.count() == 2
        assert store_server.operations_served >= 2
