"""Columnar kernel correctness: columnar ≡ record path, operator by operator.

The record-path ``apply`` is the semantic reference for every operator; a
columnar kernel must emit exactly the rows ``apply`` would emit — same
values, keys, provenance and size-carry behaviour (see
``docs/vectorized_engine.md``).  These tests drive both paths over the same
inputs (fresh operator instances each, since windows and state are
per-instance) and compare materialized outputs field by field, plus:

* edge shapes: empty batches, all-filtered batches, flat-map fan-out
  (including empty expansions), keyed windows spanning batch boundaries;
* a hypothesis property over random pipeline compositions;
* kernel resolution: custom ``Operator`` subclasses that override ``apply``
  without a matching kernel must fall back to the record path instead of
  running stale inherited columnar semantics;
* the satellite fix for flat-map size double-estimation: identity
  expansions share the parent's observed size state, pinned by counting
  ``estimate_size`` calls.
"""

from __future__ import annotations

from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.columns import ColumnBatch
from repro.engine.operators import (
    FilterOperator,
    FlatMapOperator,
    ForEachOperator,
    GroupByKeyOperator,
    JoinOperator,
    MapOperator,
    MapPairsOperator,
    Operator,
    ReduceByKeyOperator,
    RepartitionByKeyOperator,
    UpdateStateByKeyOperator,
    WindowOperator,
    columnar_kernel,
)
from repro.engine.records import StreamRecord


def make_records(values, keys=None, t0: float = 1.0) -> List[StreamRecord]:
    keys = keys or [None] * len(values)
    return [
        StreamRecord(value, key=key, event_time=t0 + 0.1 * i, ingest_time=t0 + 0.2 * i)
        for i, (value, key) in enumerate(zip(values, keys))
    ]


def assert_same_records(actual: List[StreamRecord], expected: List[StreamRecord]):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert got.value == want.value
        assert got.key == want.key
        assert got.event_time == want.event_time
        assert got.ingest_time == want.ingest_time
        # Observed size must agree (estimate_size is pure, so any deferred
        # entry resolves to the same number on both paths).
        assert got.size == want.size


def run_both(make_op, batches: List[List[StreamRecord]], nows=None):
    """Run the record path and the columnar path over the same batch stream."""
    nows = nows or [1.0 + index for index in range(len(batches))]
    record_op = make_op()
    columnar_op = make_op()
    kernel = columnar_kernel(columnar_op)
    assert kernel is not None, f"{columnar_op.name} has no kernel"
    record_outs, columnar_outs = [], []
    for batch, now in zip(batches, nows):
        record_outs.append(record_op.apply(list(batch), now))
        cols = ColumnBatch.from_records(batch)
        columnar_outs.append(kernel(cols, now).to_records())
    for record_out, columnar_out in zip(record_outs, columnar_outs):
        assert_same_records(columnar_out, record_out)
    return record_outs, columnar_outs


class TestKernelEquivalence:
    def test_map(self):
        run_both(lambda: MapOperator(lambda v: v * 2), [make_records([1, 2, 3])])

    def test_map_empty_batch(self):
        run_both(lambda: MapOperator(lambda v: v * 2), [[]])

    def test_filter_partial_and_all_filtered(self):
        batches = [make_records(list(range(6))), make_records([1, 3, 5])]
        run_both(lambda: FilterOperator(lambda v: v % 2 == 0), batches)

    def test_filter_keep_all_returns_input_unchanged(self):
        op = FilterOperator(lambda v: True)
        cols = ColumnBatch.from_records(make_records([1, 2]))
        assert op.apply_columns(cols, 1.0) is cols

    def test_flat_map_fan_out_and_empty_expansion(self):
        def expand(value):
            return [] if value % 3 == 0 else [value] * value

        run_both(lambda: FlatMapOperator(expand), [make_records([0, 1, 2, 3, 4])])

    def test_map_pairs_including_none_key(self):
        def to_pair(value):
            # None key: with_value keeps the record's previous key.
            return (None if value == 2 else f"k{value % 2}", value * 10)

        run_both(
            lambda: MapPairsOperator(to_pair),
            [make_records([1, 2, 3, 4], keys=["a", "b", "c", "d"])],
        )

    def test_reduce_by_key(self):
        batches = [make_records([1, 2, 3, 4, 5], keys=["x", "y", "x", "y", "x"])]
        run_both(lambda: ReduceByKeyOperator(lambda a, b: a + b), batches)

    def test_group_by_key(self):
        batches = [make_records([1, 2, 3, 4], keys=["x", "y", "x", None])]
        run_both(lambda: GroupByKeyOperator(), batches)

    def test_update_state_by_key_across_batches(self):
        def update(new_values, previous):
            return (previous or 0) + sum(new_values)

        batches = [
            make_records([1, 2, 3], keys=["a", "b", "a"]),
            make_records([10, 20], keys=["b", "a"]),
            [],
        ]
        run_both(lambda: UpdateStateByKeyOperator(update), batches)

    def test_window_spanning_batch_boundaries(self):
        batches = [
            make_records([1, 2], keys=["a", "b"]),
            make_records([3], keys=["a"]),
            [],
            make_records([4, 5], keys=["b", "a"]),
        ]
        # Window of 2.5s over batches at now=1,2,3,4: early chunks evict.
        run_both(lambda: WindowOperator(2.5), batches, nows=[1.0, 2.0, 3.0, 4.0])

    def test_window_with_slide_emits_empty_between_slides(self):
        batches = [make_records([i]) for i in range(5)]
        run_both(lambda: WindowOperator(10.0, slide=2.0), batches, nows=[1, 2, 3, 4, 5])

    def test_keyed_window_then_reduce_spans_boundaries(self):
        """Window + reduce composed over batches: the windowed rows re-reduce
        correctly even when the emitted window mixes chunks from several
        micro-batches."""
        window_record = WindowOperator(5.0)
        reduce_record = ReduceByKeyOperator(lambda a, b: a + b)
        window_cols = WindowOperator(5.0)
        reduce_cols = ReduceByKeyOperator(lambda a, b: a + b)
        batches = [
            make_records([1, 2], keys=["a", "b"]),
            make_records([4, 8], keys=["a", "a"]),
        ]
        for now, batch in zip([1.0, 2.0], batches):
            expected = reduce_record.apply(window_record.apply(list(batch), now), now)
            cols = ColumnBatch.from_records(batch)
            got = reduce_cols.apply_columns(
                window_cols.apply_columns(cols, now), now
            ).to_records()
            assert_same_records(got, expected)

    def test_window_buffer_safe_from_downstream_mutation(self):
        """Window emissions are non-destructive concatenations: a downstream
        kernel filtering the emitted batch must not corrupt the buffered
        window chunks."""
        window = WindowOperator(10.0)
        drop_all = FilterOperator(lambda v: False)
        first = window.apply_columns(
            ColumnBatch.from_records(make_records([1, 2])), 1.0
        )
        drop_all.apply_columns(first, 1.0)
        second = window.apply_columns(
            ColumnBatch.from_records(make_records([3])), 2.0
        )
        assert second.values == [1, 2, 3]


class TestKernelResolution:
    def test_base_operator_has_no_kernel(self):
        assert columnar_kernel(Operator()) is None

    def test_builtin_operators_resolve_kernels(self):
        for op in [
            MapOperator(lambda v: v),
            FlatMapOperator(lambda v: [v]),
            FilterOperator(lambda v: True),
            MapPairsOperator(lambda v: (v, v)),
            ReduceByKeyOperator(lambda a, b: a),
            GroupByKeyOperator(),
            WindowOperator(1.0),
            UpdateStateByKeyOperator(lambda vs, s: vs),
        ]:
            assert columnar_kernel(op) is not None, op.name

    def test_record_only_operators_fall_back(self):
        for op in [
            RepartitionByKeyOperator(),
            JoinOperator(),
            ForEachOperator(lambda r: None),
        ]:
            assert columnar_kernel(op) is None, op.name

    def test_subclass_overriding_apply_falls_back(self):
        """A user subclass that changes record-path semantics must not run
        the stale inherited kernel."""

        class Doubler(MapOperator):
            def apply(self, batch, now):
                return [r.with_value(self.fn(r.value) * 2) for r in batch]

        assert columnar_kernel(Doubler(lambda v: v)) is None

    def test_subclass_overriding_both_keeps_its_kernel(self):
        class Tagged(MapOperator):
            def apply(self, batch, now):
                return super().apply(batch, now)

            def apply_columns(self, cols, now):
                return super().apply_columns(cols, now)

        op = Tagged(lambda v: v + 1)
        kernel = columnar_kernel(op)
        assert kernel is not None
        out = kernel(ColumnBatch.from_records(make_records([1])), 1.0)
        assert out.values == [2]

    def test_plain_inheriting_subclass_keeps_kernel(self):
        class Renamed(MapOperator):
            name = "renamed"

        assert columnar_kernel(Renamed(lambda v: v)) is not None

    def test_chain_falls_back_at_custom_operator(self):
        """DStream.execute_columns materializes at the first kernel-less
        operator and matches full record-path execution."""
        from repro.engine.dstream import DStream
        from repro.engine.sources import MemorySource

        class AddTen(Operator):
            name = "add_ten"

            def apply(self, batch, now):
                return [r.with_value(r.value + 10) for r in batch]

        stream = (
            DStream(None, MemorySource())
            .map(lambda v: v * 2)
            ._derive(AddTen())
            .filter(lambda v: v > 10)
        )
        assert len(stream._columnar_plan()) == 1  # map only
        records = make_records([1, 5, 9])
        expected = stream.execute(list(records), now=1.0)
        got = stream.execute_columns(ColumnBatch.from_records(records), now=1.0)
        assert not isinstance(got, ColumnBatch)  # fell back to records
        assert_same_records(got, expected)


# -- hypothesis: random pipeline compositions --------------------------------------

_STAGES = {
    "map": lambda: MapOperator(lambda v: v + 1),
    "flat_map": lambda: FlatMapOperator(lambda v: [v] * (abs(v) % 3)),
    "flat_map_identity": lambda: FlatMapOperator(lambda v: [v, v]),
    "filter": lambda: FilterOperator(lambda v: v % 2 == 0),
    "map_pairs": lambda: MapPairsOperator(lambda v: (v % 3, v)),
    "reduce_by_key": lambda: ReduceByKeyOperator(lambda a, b: a + b),
    "group_by_key_map": lambda: GroupByKeyOperator(),
    "window": lambda: WindowOperator(2.5),
    "update_state": lambda: UpdateStateByKeyOperator(
        lambda vs, s: (s or 0) + len(vs)
    ),
}


@given(
    stage_names=st.lists(st.sampled_from(sorted(_STAGES)), min_size=1, max_size=4),
    batches=st.lists(
        st.lists(st.integers(min_value=-20, max_value=20), max_size=8),
        min_size=1,
        max_size=4,
    ),
)
@settings(max_examples=60, deadline=None)
def test_random_pipelines_columnar_equals_record(stage_names, batches):
    """Any composition of kernel-capable operators is path-equivalent.

    group_by_key / update_state can emit list-valued records that a later
    arithmetic map can't consume, so such stages are mapped back to ints
    first; this keeps compositions arbitrary without type errors.
    """

    def build_ops():
        ops = []
        for name in stage_names:
            ops.append(_STAGES[name]())
            if name in ("group_by_key_map",):
                ops.append(MapOperator(lambda vs: sum(vs)))
            elif name == "update_state":
                ops.append(MapOperator(lambda v: int(v)))
        return ops

    record_ops = build_ops()
    columnar_ops = build_ops()
    kernels = [columnar_kernel(op) for op in columnar_ops]
    assert all(kernels)
    for index, values in enumerate(batches):
        now = 1.0 + index
        keys = [f"k{v % 2}" for v in values]
        batch = make_records(values, keys=keys, t0=now)
        expected = list(batch)
        for op in record_ops:
            expected = op.apply(expected, now)
        cols = ColumnBatch.from_records(batch)
        for kernel in kernels:
            cols = kernel(cols, now)
        assert_same_records(cols.to_records(), expected)


# -- satellite: flat_map size double-estimation fix --------------------------------


@pytest.fixture
def count_estimates(monkeypatch):
    from repro.network import packet

    calls = {"n": 0}
    real = packet.estimate_size

    def counting(value):
        calls["n"] += 1
        return real(value)

    import repro.engine.columns as columns_mod
    import repro.engine.records as records_mod

    monkeypatch.setattr(records_mod, "estimate_size", counting)
    monkeypatch.setattr(columns_mod, "estimate_size", counting)
    return calls


class TestFlatMapSizeSharing:
    def test_identity_expansion_shares_observed_size_record_path(self, count_estimates):
        """An ingested record (observed wire size) flat-mapped into identity
        re-emissions: observing every output's size runs estimate_size 0
        times — the clones share the parent's observed state."""
        record = StreamRecord("payload", size=64)
        op = FlatMapOperator(lambda v: [v, v, v])
        out = op.apply([record], now=1.0)
        assert [r.size for r in out] == [64, 64, 64]
        assert count_estimates["n"] == 0

    def test_unobserved_identity_expansion_estimates_once_per_parent(
        self, count_estimates
    ):
        """A record with no size yet: observing the parent first, then the
        expansions, estimates exactly once total (previously: once per
        expansion — the double-estimation bug)."""
        record = StreamRecord("payload")
        assert record.size > 0
        assert count_estimates["n"] == 1
        out = FlatMapOperator(lambda v: [v, v]).apply([record], now=1.0)
        assert [r.size for r in out] == [record.size, record.size]
        assert count_estimates["n"] == 1

    def test_rewriting_expansion_estimates_once_per_output(self, count_estimates):
        record = StreamRecord("ab", size=32)
        out = FlatMapOperator(lambda v: [v + "x", v + "y"]).apply([record], now=1.0)
        sizes = [r.size for r in out]
        assert count_estimates["n"] == 2
        assert all(s > 0 for s in sizes)
        # Re-reading is cached: no further estimates.
        _ = [r.size for r in out]
        assert count_estimates["n"] == 2

    def test_columnar_kernel_matches_sharing_semantics(self, count_estimates):
        cols = ColumnBatch(["payload"], [None], [1.0], [1.0], [64])
        out = FlatMapOperator(lambda v: [v, v, v]).apply_columns(cols, now=1.0)
        assert out.sizes == [64, 64, 64]
        assert out.total_bytes() == 192
        assert count_estimates["n"] == 0
