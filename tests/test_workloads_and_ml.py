"""Tests for the synthetic workload generators and the ML helpers."""

import pytest

from repro.ml.sentiment import classify_polarity, sentiment_scores
from repro.ml.svm import LinearSVM
from repro.workloads import (
    PORTS,
    SERVICES,
    generate_ais_messages,
    generate_documents,
    generate_frames,
    generate_rides,
    generate_transactions,
    generate_tweets,
    generate_user_traffic,
)
from repro.workloads.transactions import labelled_features, transaction_features


class TestTextWorkload:
    def test_document_count_and_schema(self):
        documents = generate_documents(20, seed=1)
        assert len(documents) == 20
        name, document = documents[0]
        assert name.endswith(".txt")
        assert {"doc_id", "topic", "text"} <= set(document)
        assert len(document["text"].split()) > 3

    def test_determinism(self):
        assert generate_documents(5, seed=7) == generate_documents(5, seed=7)
        assert generate_documents(5, seed=7) != generate_documents(5, seed=8)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_documents(0)


class TestRideWorkload:
    def test_schema_and_values(self):
        rides = generate_rides(50, seed=2)
        assert len(rides) == 50
        for ride in rides:
            assert ride["fare"] > 0
            assert ride["tip"] >= 0
            assert 1 <= ride["passenger_count"] <= 4
            assert ride["area"] in {"downtown", "airport", "university", "harbour", "suburbs"}

    def test_unique_ids(self):
        rides = generate_rides(100, seed=3)
        assert len({ride["ride_id"] for ride in rides}) == 100


class TestTweetWorkload:
    def test_sentiment_mix(self):
        tweets = generate_tweets(300, seed=4)
        labels = {tweet["true_sentiment"] for tweet in tweets}
        assert labels == {"positive", "negative", "neutral"}

    def test_subjective_tweets_have_markers(self):
        tweets = generate_tweets(200, seed=5)
        subjective = [t for t in tweets if t["true_subjective"]]
        assert subjective
        assert any(t["text"].startswith(("i ", "honestly", "personally", "in my")) for t in subjective)


class TestAISWorkload:
    def test_schema(self):
        messages = generate_ais_messages(100, n_ships=10, seed=6)
        assert len(messages) == 100
        for message in messages:
            assert message["destination"] in PORTS
            assert 0 <= message["heading"] < 360
            assert message["speed_knots"] >= 0

    def test_ship_count_respected(self):
        messages = generate_ais_messages(200, n_ships=10, seed=6)
        assert len({m["mmsi"] for m in messages}) == 10


class TestTransactionWorkload:
    def test_fraud_rate_approximate(self):
        transactions = generate_transactions(2000, fraud_rate=0.1, seed=7)
        rate = sum(1 for tx in transactions if tx["is_fraud"]) / len(transactions)
        assert 0.06 < rate < 0.14

    def test_features_and_labels(self):
        transactions = generate_transactions(50, seed=8)
        features, labels = labelled_features(transactions)
        assert len(features) == len(labels) == 50
        assert all(label in (1, -1) for label in labels)
        assert len(transaction_features(transactions[0])) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_transactions(0)
        with pytest.raises(ValueError):
            generate_transactions(10, fraud_rate=2.0)


class TestFramesAndTraffic:
    def test_frames_sizes(self):
        frames = generate_frames(10, seed=9)
        assert len(frames) == 10
        assert all(frame["size"] == 784 + 24 for frame in frames)
        assert all(0 <= frame["label"] <= 9 for frame in frames)

    def test_traffic_scales_with_users(self):
        small = generate_user_traffic(n_users=10, duration_s=3, seed=10)
        large = generate_user_traffic(n_users=50, duration_s=3, seed=10)
        small_packets = sum(len(slot) for slot in small)
        large_packets = sum(len(slot) for slot in large)
        assert len(small) == 3
        assert large_packets > small_packets * 3

    def test_traffic_services_valid(self):
        slots = generate_user_traffic(n_users=5, duration_s=2, seed=11)
        for slot in slots:
            for packet in slot:
                assert packet["service"] in SERVICES
                assert packet["size"] >= 64


class TestSentiment:
    def test_positive_and_negative_polarity(self):
        positive = sentiment_scores("i love this amazing great release")
        negative = sentiment_scores("terrible awful broken outage")
        neutral = sentiment_scores("the meeting is at noon")
        assert positive["polarity"] > 0
        assert negative["polarity"] < 0
        assert neutral["polarity"] == 0

    def test_subjectivity_detects_opinions(self):
        subjective = sentiment_scores("i think this is honestly wonderful")
        objective = sentiment_scores("the server restarted at noon")
        assert subjective["subjectivity"] > objective["subjectivity"]

    def test_classify_polarity(self):
        assert classify_polarity(0.5) == "positive"
        assert classify_polarity(-0.5) == "negative"
        assert classify_polarity(0.0) == "neutral"

    def test_empty_text(self):
        assert sentiment_scores("")["polarity"] == 0.0


class TestLinearSVM:
    def test_learns_separable_data(self):
        transactions = generate_transactions(1500, fraud_rate=0.3, seed=12)
        features, labels = labelled_features(transactions)
        model = LinearSVM(n_features=4, seed=0)
        model.fit(features, labels, epochs=6)
        accuracy = model.accuracy(features, labels)
        assert accuracy > 0.85

    def test_predict_shapes(self):
        model = LinearSVM(n_features=2, seed=0)
        model.fit([[0.0, 1.0], [1.0, 0.0]], [1, -1], epochs=3)
        assert model.predict_one([0.0, 1.0]) in (1, -1)
        assert len(model.predict([[0.0, 1.0], [1.0, 0.0]])) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearSVM(n_features=0)
        model = LinearSVM(n_features=2)
        with pytest.raises(ValueError):
            model.fit([[1.0]], [1])
        with pytest.raises(ValueError):
            model.fit([[1.0, 2.0]], [3])
