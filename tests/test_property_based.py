"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broker.log import PartitionLog
from repro.broker.message import ProducerRecord, _stable_hash
from repro.core.configs import _duration_to_seconds, _size_to_bytes
from repro.core.visualization import cdf, percentile, summarize_distribution
from repro.network.addressing import AddressAllocator
from repro.network.link import LinkConfig
from repro.simulation import Simulator
from repro.simulation.resources import Container, Store
from repro.simulation.rng import SeededRandom
from repro.store import KeyValueStore, TableStore


# ---------------------------------------------------------------------------
# Simulation engine
# ---------------------------------------------------------------------------
@given(delays=st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_simulator_clock_is_monotonic_and_reaches_max_delay(delays):
    sim = Simulator()
    observed = []

    def waiter(delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    for delay in delays:
        sim.process(waiter(delay))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now >= max(delays) - 1e-9


@given(items=st.lists(st.integers(), min_size=0, max_size=50))
@settings(max_examples=50, deadline=None)
def test_store_preserves_fifo_order(items):
    sim = Simulator()
    queue = Store(sim)
    received = []

    def producer():
        for item in items:
            yield queue.put(item)

    def consumer():
        for _ in items:
            value = yield queue.get()
            received.append(value)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == list(items)


@given(
    capacity=st.floats(min_value=1.0, max_value=1000.0),
    amounts=st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=20),
)
@settings(max_examples=50, deadline=None)
def test_container_level_never_exceeds_capacity_or_goes_negative(capacity, amounts):
    sim = Simulator()
    container = Container(sim, capacity=capacity)
    levels = []

    def churn():
        for amount in amounts:
            adjusted = min(amount, capacity)
            yield container.put(adjusted)
            levels.append(container.level)
            yield container.get(adjusted)
            levels.append(container.level)

    sim.process(churn())
    sim.run()
    assert all(-1e-9 <= level <= capacity + 1e-9 for level in levels)


@given(seed=st.integers(min_value=0, max_value=2**31 - 1), name=st.text(min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_named_rng_streams_are_reproducible(seed, name):
    a = SeededRandom(seed).child(name)
    b = SeededRandom(seed).child(name)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


@given(rate=st.floats(min_value=0.01, max_value=1000.0))
@settings(max_examples=50, deadline=None)
def test_exponential_samples_are_positive(rate):
    rng = SeededRandom(1)
    assert all(rng.exponential(rate) >= 0 for _ in range(20))


@given(lam=st.floats(min_value=0.0, max_value=200.0))
@settings(max_examples=50, deadline=None)
def test_poisson_samples_are_non_negative_integers(lam):
    rng = SeededRandom(2)
    for _ in range(10):
        value = rng.poisson(lam)
        assert isinstance(value, int)
        assert value >= 0


# ---------------------------------------------------------------------------
# Network primitives
# ---------------------------------------------------------------------------
@given(names=st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=100, unique=True))
@settings(max_examples=30, deadline=None)
def test_address_allocation_is_unique(names):
    allocator = AddressAllocator()
    addresses = [allocator.allocate(name) for name in names]
    assert len({address.ip for address in addresses}) == len(names)
    assert len({address.mac for address in addresses}) == len(names)


@given(
    size=st.integers(min_value=0, max_value=10**7),
    bandwidth=st.floats(min_value=0.1, max_value=10_000.0),
)
@settings(max_examples=100, deadline=None)
def test_serialization_delay_is_proportional_to_size(size, bandwidth):
    config = LinkConfig(latency_ms=1.0, bandwidth_mbps=bandwidth)
    delay = config.serialization_delay(size)
    assert delay >= 0
    assert delay == (size * 8) / (bandwidth * 1e6)


# ---------------------------------------------------------------------------
# Broker log invariants
# ---------------------------------------------------------------------------
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=100),
    truncate_at=st.integers(min_value=0, max_value=120),
)
@settings(max_examples=100, deadline=None)
def test_partition_log_offsets_contiguous_and_truncation_consistent(sizes, truncate_at):
    log = PartitionLog("t")
    for index, size in enumerate(sizes):
        log.append(key=index, value=index, size=size, timestamp=0.0, produced_at=0.0, leader_epoch=0)
    offsets = [record.offset for record in log.all_records()]
    assert offsets == list(range(len(sizes)))
    log.advance_high_watermark(len(sizes))
    discarded = log.truncate_to(truncate_at)
    assert log.log_end_offset == min(truncate_at, len(sizes))
    assert len(discarded) == max(0, len(sizes) - truncate_at)
    assert log.high_watermark <= log.log_end_offset
    # Re-appending after truncation keeps offsets contiguous.
    record = log.append(key="x", value="x", size=1, timestamp=0.0, produced_at=0.0, leader_epoch=1)
    assert record.offset == log.log_end_offset - 1


@given(
    keys=st.lists(st.text(min_size=0, max_size=12), min_size=1, max_size=50),
    partitions=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=100, deadline=None)
def test_key_partitioning_is_stable_and_in_range(keys, partitions):
    for key in keys:
        record_a = ProducerRecord(topic="t", value="v", key=key)
        record_b = ProducerRecord(topic="t", value="other", key=key)
        partition_a = record_a.partition_for(partitions)
        assert 0 <= partition_a < partitions
        assert partition_a == record_b.partition_for(partitions)


@given(values=st.lists(st.text(max_size=30), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_stable_hash_is_deterministic_across_calls(values):
    assert [_stable_hash(v) for v in values] == [_stable_hash(v) for v in values]


# ---------------------------------------------------------------------------
# Stores
# ---------------------------------------------------------------------------
@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["put", "delete"]), st.integers(0, 20), st.text(max_size=10)),
        max_size=100,
    )
)
@settings(max_examples=50, deadline=None)
def test_kvstore_matches_reference_dict(operations):
    store = KeyValueStore()
    reference = {}
    for operation, key, value in operations:
        if operation == "put":
            store.put(key, value)
            reference[key] = value
        else:
            store.delete(key)
            reference.pop(key, None)
    assert len(store) == len(reference)
    for key, value in reference.items():
        assert store.get(key) == value
    assert store.bytes_stored >= 0


@given(
    rows=st.lists(
        st.tuples(st.integers(0, 50), st.floats(min_value=-100, max_value=100, allow_nan=False)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=50, deadline=None)
def test_table_select_ordering_matches_sorted(rows):
    store = TableStore()
    for key, value in rows:
        store.upsert("t", key, {"v": value})
    selected = store.select("t", order_by="v", descending=True)
    values = [row.get("v") for row in selected]
    assert values == sorted(values, reverse=True)


# ---------------------------------------------------------------------------
# Config parsing and statistics helpers
# ---------------------------------------------------------------------------
@given(megabytes=st.integers(min_value=1, max_value=4096))
@settings(max_examples=50, deadline=None)
def test_size_parsing_roundtrip_for_megabytes(megabytes):
    assert _size_to_bytes(f"{megabytes}m", 0) == megabytes * 1024**2
    assert _size_to_bytes(f"{megabytes}MB", 0) == megabytes * 1024**2


@given(milliseconds=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=50, deadline=None)
def test_duration_parsing_roundtrip_for_milliseconds(milliseconds):
    assert _duration_to_seconds(f"{milliseconds}ms", 0) == milliseconds / 1000.0


@given(values=st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_cdf_and_percentile_invariants(values):
    points = cdf(values)
    fractions = [fraction for _, fraction in points]
    assert fractions == sorted(fractions)
    assert abs(fractions[-1] - 1.0) < 1e-9
    xs = [value for value, _ in points]
    assert xs == sorted(xs)
    assert min(values) <= percentile(values, 0.5) <= max(values)
    summary = summarize_distribution(values)
    assert summary["count"] == len(values)
    assert min(values) <= summary["mean"] <= max(values)
    assert summary["max"] == max(values)
