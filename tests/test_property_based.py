"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broker.batch import RecordBatch
from repro.broker.log import PartitionLog
from repro.broker.message import ProducerRecord, _stable_hash
from repro.broker.segment import LogStorageConfig
from repro.core.configs import _duration_to_seconds, _size_to_bytes
from repro.core.visualization import cdf, percentile, summarize_distribution
from repro.network.addressing import AddressAllocator
from repro.network.link import LinkConfig
from repro.simulation import Simulator
from repro.simulation.resources import Container, Store
from repro.simulation.rng import SeededRandom
from repro.store import KeyValueStore, TableStore


# ---------------------------------------------------------------------------
# Simulation engine
# ---------------------------------------------------------------------------
@given(delays=st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_simulator_clock_is_monotonic_and_reaches_max_delay(delays):
    sim = Simulator()
    observed = []

    def waiter(delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    for delay in delays:
        sim.process(waiter(delay))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now >= max(delays) - 1e-9


@given(items=st.lists(st.integers(), min_size=0, max_size=50))
@settings(max_examples=50, deadline=None)
def test_store_preserves_fifo_order(items):
    sim = Simulator()
    queue = Store(sim)
    received = []

    def producer():
        for item in items:
            yield queue.put(item)

    def consumer():
        for _ in items:
            value = yield queue.get()
            received.append(value)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == list(items)


@given(
    capacity=st.floats(min_value=1.0, max_value=1000.0),
    amounts=st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=20),
)
@settings(max_examples=50, deadline=None)
def test_container_level_never_exceeds_capacity_or_goes_negative(capacity, amounts):
    sim = Simulator()
    container = Container(sim, capacity=capacity)
    levels = []

    def churn():
        for amount in amounts:
            adjusted = min(amount, capacity)
            yield container.put(adjusted)
            levels.append(container.level)
            yield container.get(adjusted)
            levels.append(container.level)

    sim.process(churn())
    sim.run()
    assert all(-1e-9 <= level <= capacity + 1e-9 for level in levels)


@given(seed=st.integers(min_value=0, max_value=2**31 - 1), name=st.text(min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_named_rng_streams_are_reproducible(seed, name):
    a = SeededRandom(seed).child(name)
    b = SeededRandom(seed).child(name)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


@given(rate=st.floats(min_value=0.01, max_value=1000.0))
@settings(max_examples=50, deadline=None)
def test_exponential_samples_are_positive(rate):
    rng = SeededRandom(1)
    assert all(rng.exponential(rate) >= 0 for _ in range(20))


@given(lam=st.floats(min_value=0.0, max_value=200.0))
@settings(max_examples=50, deadline=None)
def test_poisson_samples_are_non_negative_integers(lam):
    rng = SeededRandom(2)
    for _ in range(10):
        value = rng.poisson(lam)
        assert isinstance(value, int)
        assert value >= 0


# ---------------------------------------------------------------------------
# Network primitives
# ---------------------------------------------------------------------------
@given(names=st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=100, unique=True))
@settings(max_examples=30, deadline=None)
def test_address_allocation_is_unique(names):
    allocator = AddressAllocator()
    addresses = [allocator.allocate(name) for name in names]
    assert len({address.ip for address in addresses}) == len(names)
    assert len({address.mac for address in addresses}) == len(names)


@given(
    size=st.integers(min_value=0, max_value=10**7),
    bandwidth=st.floats(min_value=0.1, max_value=10_000.0),
)
@settings(max_examples=100, deadline=None)
def test_serialization_delay_is_proportional_to_size(size, bandwidth):
    config = LinkConfig(latency_ms=1.0, bandwidth_mbps=bandwidth)
    delay = config.serialization_delay(size)
    assert delay >= 0
    assert delay == (size * 8) / (bandwidth * 1e6)


# ---------------------------------------------------------------------------
# Broker log invariants
# ---------------------------------------------------------------------------
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=100),
    truncate_at=st.integers(min_value=0, max_value=120),
)
@settings(max_examples=100, deadline=None)
def test_partition_log_offsets_contiguous_and_truncation_consistent(sizes, truncate_at):
    log = PartitionLog("t")
    for index, size in enumerate(sizes):
        log.append(key=index, value=index, size=size, timestamp=0.0, produced_at=0.0, leader_epoch=0)
    offsets = [record.offset for record in log.all_records()]
    assert offsets == list(range(len(sizes)))
    log.advance_high_watermark(len(sizes))
    discarded = log.truncate_to(truncate_at)
    assert log.log_end_offset == min(truncate_at, len(sizes))
    assert len(discarded) == max(0, len(sizes) - truncate_at)
    assert log.high_watermark <= log.log_end_offset
    # Re-appending after truncation keeps offsets contiguous.
    record = log.append(key="x", value="x", size=1, timestamp=0.0, produced_at=0.0, leader_epoch=1)
    assert record.offset == log.log_end_offset - 1


# ---------------------------------------------------------------------------
# Segmented storage: compaction invariants
# ---------------------------------------------------------------------------
@given(
    appends=st.lists(
        st.tuples(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=999)),
        min_size=1,
        max_size=60,
    ),
    segment_records=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=100, deadline=None)
def test_compaction_keeps_exactly_the_latest_value_per_key_in_offset_order(
    appends, segment_records
):
    log = PartitionLog(
        "t", 0,
        storage=LogStorageConfig(
            segment_records=segment_records, cleanup_policy="compact"
        ),
    )
    for offset, (key, value) in enumerate(appends):
        log.append(
            key=f"k{key}", value=value, size=1, timestamp=float(offset),
            produced_at=float(offset), leader_epoch=0,
        )
    log._seal_head()  # compaction only touches the sealed tier
    log.compact()
    latest = {}
    for offset, (key, value) in enumerate(appends):
        latest[f"k{key}"] = (offset, value)
    expected = sorted(latest.values())
    assert [(r.offset, r.value) for r in log.all_records()] == expected
    # Offset-indexed lookups agree with the compacted view.
    for offset, value in expected:
        assert log.record_at(offset).value == value
    # Compaction is idempotent.
    assert log.compact() == 0


@given(
    script=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=3),  # producer id
            st.integers(min_value=0, max_value=4),  # key
            st.booleans(),  # commit (True) or abort (False)
        ),
        min_size=1,
        max_size=20,
    ),
    segment_records=st.integers(min_value=1, max_value=7),
)
@settings(max_examples=100, deadline=None)
def test_committed_read_of_compacted_log_never_resurrects_aborted_records(
    script, segment_records
):
    log = PartitionLog(
        "t", 0,
        storage=LogStorageConfig(
            segment_records=segment_records, cleanup_policy="compact"
        ),
    )
    sequences = {}
    committed_values = set()
    aborted_values = set()
    for index, (pid, key, commit) in enumerate(script):
        sequence = sequences.get(pid, 0)
        batch = RecordBatch(
            "t", 0, producer_id=pid, producer_epoch=0, base_sequence=sequence
        )
        batch.transactional = True
        value = f"p{pid}-txn{index}"
        batch.append(f"k{key}", value, 1, float(index))
        log.append_batch(batch, timestamp=float(index), leader_epoch=0)
        sequences[pid] = sequence + 1
        log.append_control(
            pid, 0, "commit" if commit else "abort",
            timestamp=float(index), leader_epoch=0,
        )
        (committed_values if commit else aborted_values).add(value)
    log._seal_head()
    log.compact()
    log.advance_high_watermark(log.log_end_offset)
    skipped, _ = log.invisible_offsets(
        0, log.log_end_offset, "read_committed"
    )
    skipped = set(skipped)
    visible = [r.value for r in log.all_records() if r.offset not in skipped]
    assert not aborted_values.intersection(visible)
    assert set(visible).issubset(committed_values)
    # Control markers are invisible to every isolation level.
    uncommitted_skip, _ = log.invisible_offsets(
        0, log.log_end_offset, "read_uncommitted"
    )
    for offset in uncommitted_skip:
        assert log.record_at(offset).value in ("commit", "abort")


# ---------------------------------------------------------------------------
# Producer dedup table (idempotent produce path)
# ---------------------------------------------------------------------------
def _producer_batch(pid, epoch, base_seq, values):
    batch = RecordBatch("t", 0)
    for offset, value in enumerate(values):
        batch.append(key=f"{pid}", value=value, size=1, produced_at=0.0)
    batch.producer_id = pid
    batch.producer_epoch = epoch
    batch.base_sequence = base_seq
    return batch


def _submit(log, batch):
    """The broker's produce gate, reduced to its dedup decision."""
    verdict = log.check_producer_batch(
        batch.producer_id,
        batch.producer_epoch,
        batch.base_sequence,
        count=len(batch.values),
    )
    if verdict == "ok":
        log.append_batch(batch, timestamp=0.0, leader_epoch=0)
    return verdict


def _canonical_batches(pid, batch_sizes, epoch_bumps, start=0):
    """The happy-path batch stream of one producer: consecutive sequences,
    epoch bumps resetting the sequence space (as a producer re-init does)."""
    batches = []
    epoch, sequence, value = 0, 0, start
    for size, bump in zip(batch_sizes, epoch_bumps):
        if bump:
            epoch += 1
            sequence = 0
        values = list(range(value, value + size))
        batches.append(_producer_batch(pid, epoch, sequence, values))
        sequence += size
        value += size
    return batches


@given(
    batch_sizes=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=8),
    epoch_bumps=st.lists(st.booleans(), min_size=8, max_size=8),
    retry_plan=st.lists(
        st.tuples(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)),
        max_size=12,
    ),
)
@settings(max_examples=100, deadline=None)
def test_dedup_gate_yields_happy_path_log_under_any_retry_interleaving(
    batch_sizes, epoch_bumps, retry_plan
):
    """Retries/duplicates/epoch bumps in any interleaving produce exactly the
    dedup-free happy-path log with the duplicates removed."""
    canonical = _canonical_batches(7, batch_sizes, epoch_bumps)
    happy = PartitionLog("t")
    for batch in canonical:
        assert _submit(happy, batch) == "ok"
    expected = [record.value for record in happy.all_records()]

    adversarial = PartitionLog("t")
    submitted = []
    # (after_index, which) pairs: after submitting canonical batch
    # ``after_index`` re-submit an arbitrary earlier batch — a stale
    # Transport retry, a duplicated packet, or a zombie write from before an
    # epoch bump; the gate must drop every one of them.
    retries_after = {}
    for after_index, which in retry_plan:
        retries_after.setdefault(after_index % len(canonical), []).append(which)
    for index, batch in enumerate(canonical):
        assert _submit(adversarial, batch) == "ok"
        submitted.append(batch)
        for which in retries_after.get(index, []):
            stale = submitted[which % len(submitted)]
            verdict = _submit(adversarial, stale)
            assert verdict in ("duplicate", "fenced")
    assert [record.value for record in adversarial.all_records()] == expected


@given(
    sizes_a=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=6),
    sizes_b=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=6),
    merge=st.lists(st.booleans(), min_size=12, max_size=12),
    retries=st.lists(st.integers(min_value=0, max_value=30), max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_dedup_table_isolates_producers_under_interleaving(
    sizes_a, sizes_b, merge, retries
):
    """Two producers' streams interleaved any way (with stale retries mixed
    in) keep exactly each producer's happy-path records, in arrival order."""
    stream_a = _canonical_batches(1, sizes_a, [False] * len(sizes_a))
    stream_b = _canonical_batches(2, sizes_b, [False] * len(sizes_b), start=100)
    log = PartitionLog("t")
    submitted = []
    queue_a, queue_b = list(stream_a), list(stream_b)
    retry_iter = iter(retries)
    while queue_a or queue_b:
        take_a = queue_a and (not queue_b or (merge and merge.pop(0)))
        batch = queue_a.pop(0) if take_a else queue_b.pop(0)
        assert _submit(log, batch) == "ok"
        submitted.append(batch)
        which = next(retry_iter, None)
        if which is not None:
            assert _submit(log, submitted[which % len(submitted)]) != "ok"
    values = [record.value for record in log.all_records()]
    assert [v for v in values if v < 100] == [
        v for batch in stream_a for v in batch.values
    ]
    assert [v for v in values if v >= 100] == [
        v for batch in stream_b for v in batch.values
    ]
    assert log.producer_entry(1).last_sequence == sum(sizes_a) - 1
    assert log.producer_entry(2).last_sequence == sum(sizes_b) - 1


@given(
    keys=st.lists(st.text(min_size=0, max_size=12), min_size=1, max_size=50),
    partitions=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=100, deadline=None)
def test_key_partitioning_is_stable_and_in_range(keys, partitions):
    for key in keys:
        record_a = ProducerRecord(topic="t", value="v", key=key)
        record_b = ProducerRecord(topic="t", value="other", key=key)
        partition_a = record_a.partition_for(partitions)
        assert 0 <= partition_a < partitions
        assert partition_a == record_b.partition_for(partitions)


@given(values=st.lists(st.text(max_size=30), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_stable_hash_is_deterministic_across_calls(values):
    assert [_stable_hash(v) for v in values] == [_stable_hash(v) for v in values]


# ---------------------------------------------------------------------------
# Transactions (atomic visibility + state machine)
# ---------------------------------------------------------------------------
def _txn_data_batch(pid, epoch, base_seq, values):
    batch = _producer_batch(pid, epoch, base_seq, values)
    batch.transactional = True
    return batch


@given(
    script=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1),  # which producer
            st.sampled_from(["send", "commit", "abort", "bump"]),
            st.integers(min_value=1, max_value=3),  # records per send
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=100, deadline=None)
def test_read_committed_view_is_exactly_the_committed_records(script):
    """Any interleaving of two producers' begin/send/commit/abort/epoch-bump
    steps leaves a log whose read_committed view contains *exactly* the
    records of committed transactions, in log order — aborted and fenced
    writes are invisible, while read_uncommitted still sees every data
    record (atomicity is a view, not a rewrite of the log)."""
    log = PartitionLog("t")
    producers = [
        {"pid": 1, "epoch": 0, "seq": 0, "token": None},
        {"pid": 2, "epoch": 0, "seq": 0, "token": None},
    ]
    record_meta = []  # (value, token) per appended data record, log order
    value = 0
    for which, action, n in script:
        producer = producers[which]
        if action == "send":
            values = list(range(value, value + n))
            value += n
            batch = _txn_data_batch(
                producer["pid"], producer["epoch"], producer["seq"], values
            )
            log.append_batch(batch, timestamp=0.0, leader_epoch=0)
            producer["seq"] += n
            if producer["token"] is None:
                producer["token"] = {"committed": False}
            for v in values:
                record_meta.append((v, producer["token"]))
        elif action in ("commit", "abort"):
            if producer["token"] is None:
                continue  # no open transaction: the coordinator refuses this
            log.append_control(
                producer["pid"], producer["epoch"], action,
                timestamp=0.0, leader_epoch=0,
            )
            producer["token"]["committed"] = action == "commit"
            producer["token"] = None
        else:  # bump: a successor fenced this instance (abort, epoch + 1)
            log.append_control(
                producer["pid"], producer["epoch"] + 1, "abort",
                timestamp=0.0, leader_epoch=0,
            )
            producer["epoch"] += 1
            producer["seq"] = 0
            producer["token"] = None
    # The sweeper's job: every still-open transaction ends aborted.
    for producer in producers:
        if producer["token"] is not None:
            log.append_control(
                producer["pid"], producer["epoch"], "abort",
                timestamp=0.0, leader_epoch=0,
            )
            producer["token"] = None
    log.advance_high_watermark(log.log_end_offset)
    assert log.last_stable_offset == log.high_watermark  # nothing left open
    expected = [v for v, token in record_meta if token["committed"]]
    skip, _ = log.invisible_offsets(0, log.last_stable_offset, "read_committed")
    skip_set = frozenset(skip)
    visible = [r.value for r in log.all_records() if r.offset not in skip_set]
    assert visible == expected
    # read_uncommitted hides only the markers: every data record is served.
    skip_u, _ = log.invisible_offsets(0, log.high_watermark, "read_uncommitted")
    visible_u = [
        r.value for r in log.all_records() if r.offset not in frozenset(skip_u)
    ]
    assert visible_u == [v for v, _ in record_meta]


@given(
    targets=st.lists(
        st.sampled_from(
            ["Empty", "Ongoing", "PrepareCommit", "PrepareAbort",
             "CompleteCommit", "CompleteAbort"]
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_transaction_state_machine_rejects_every_illegal_transition(targets):
    """A random walk over transition requests: legal ones follow the KIP-98
    state diagram, illegal ones raise and leave the state untouched."""
    import pytest

    from repro.broker.coordinator import _TXN_TRANSITIONS, TransactionState
    from repro.broker.errors import InvalidTxnStateError

    txn = TransactionState("tx", producer_id=0, producer_epoch=0)
    for target in targets:
        legal = target in _TXN_TRANSITIONS[txn.state]
        before = txn.state
        if legal:
            txn.transition(target)
            assert txn.state == target
        else:
            with pytest.raises(InvalidTxnStateError):
                txn.transition(target)
            assert txn.state == before


# ---------------------------------------------------------------------------
# Stores
# ---------------------------------------------------------------------------
@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["put", "delete"]), st.integers(0, 20), st.text(max_size=10)),
        max_size=100,
    )
)
@settings(max_examples=50, deadline=None)
def test_kvstore_matches_reference_dict(operations):
    store = KeyValueStore()
    reference = {}
    for operation, key, value in operations:
        if operation == "put":
            store.put(key, value)
            reference[key] = value
        else:
            store.delete(key)
            reference.pop(key, None)
    assert len(store) == len(reference)
    for key, value in reference.items():
        assert store.get(key) == value
    assert store.bytes_stored >= 0


@given(
    rows=st.lists(
        st.tuples(st.integers(0, 50), st.floats(min_value=-100, max_value=100, allow_nan=False)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=50, deadline=None)
def test_table_select_ordering_matches_sorted(rows):
    store = TableStore()
    for key, value in rows:
        store.upsert("t", key, {"v": value})
    selected = store.select("t", order_by="v", descending=True)
    values = [row.get("v") for row in selected]
    assert values == sorted(values, reverse=True)


# ---------------------------------------------------------------------------
# Config parsing and statistics helpers
# ---------------------------------------------------------------------------
@given(megabytes=st.integers(min_value=1, max_value=4096))
@settings(max_examples=50, deadline=None)
def test_size_parsing_roundtrip_for_megabytes(megabytes):
    assert _size_to_bytes(f"{megabytes}m", 0) == megabytes * 1024**2
    assert _size_to_bytes(f"{megabytes}MB", 0) == megabytes * 1024**2


@given(milliseconds=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=50, deadline=None)
def test_duration_parsing_roundtrip_for_milliseconds(milliseconds):
    assert _duration_to_seconds(f"{milliseconds}ms", 0) == milliseconds / 1000.0


@given(values=st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_cdf_and_percentile_invariants(values):
    points = cdf(values)
    fractions = [fraction for _, fraction in points]
    assert fractions == sorted(fractions)
    assert abs(fractions[-1] - 1.0) < 1e-9
    xs = [value for value, _ in points]
    assert xs == sorted(xs)
    assert min(values) <= percentile(values, 0.5) <= max(values)
    summary = summarize_distribution(values)
    assert summary["count"] == len(values)
    assert min(values) <= summary["mean"] <= max(values)
    assert summary["max"] == max(values)
