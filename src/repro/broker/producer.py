"""Producer client.

Implements the Kafka producer behaviours the paper's experiments depend on:

* ``buffer.memory`` — records wait in a bounded accumulator (Figure 9c shows
  its effect on the emulation's memory footprint);
* batching with a ``linger`` interval;
* ``request.timeout`` and retries — a producer cut off from the leader keeps
  re-sending records until they are either accepted or the delivery timeout
  expires (the latency inflation of Figure 6c);
* ``acks`` (0, 1 or "all");
* metadata refresh on ``not_leader`` errors so producers find newly elected
  leaders after a failure.

Records are tracked end to end: every send returns a future that fires with
:class:`RecordMetadata` on acknowledgement or fails with
:class:`DeliveryFailed`, and the producer keeps per-record accounting that the
delivery-matrix experiment (Figure 6b) reads back.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

from repro.broker.batch import RecordBatch
from repro.broker.broker import BROKER_PORT, find_coordinator_host
from repro.broker.coordinator import COORDINATOR_PORT
from repro.broker.errors import (
    DeliveryFailed,
    InvalidTxnStateError,
    ProducerFencedError,
)
from repro.broker.message import ProducerRecord, RecordMetadata
from repro.network.host import Host
from repro.network.transport import RequestTimeout, Transport
from repro.simulation.events import Event


@dataclass
class ProducerConfig:
    """Producer tunables (YAML ``prodCfg`` keys map onto these).

    Batching knobs (mirroring Kafka's ``batch.size`` / ``linger.ms`` /
    ``max.in.flight``-per-partition semantics):

    * ``batch_size`` — byte threshold per partition batch.  A batch that
      reaches it (or ``max_batch_records``) is flushed *immediately* rather
      than waiting for the next linger tick, so one RPC, one size estimate
      and one broker CPU charge cover many records under heavy traffic.
    * ``linger`` — how long an under-filled batch may wait for more records
      before the sender flushes it anyway.

    ``idempotence`` turns on the exactly-once produce path: the producer
    initializes a coordinator-allocated ``(producer_id, epoch)`` pair before
    sending, stamps every batch with per-partition sequence numbers, and
    partition leaders drop duplicate retries (acknowledged distinguishably —
    see ``docs/exactly_once.md``).  Orthogonal to ``acks``: dedup closes the
    retry-duplication window whatever the ack level, while *acked implies
    durable* additionally needs ``acks="all"`` (plus KRaft mode under
    partitions), exactly as without idempotence.

    ``transactional_id`` layers transactions on top (implies idempotence):
    sends must happen between :meth:`Producer.begin_transaction` and
    :meth:`Producer.commit_transaction` / ``abort_transaction``, partitions
    register with the coordinator automatically on first send, and commits
    are atomic across every touched partition for ``read_committed``
    consumers.  Re-initializing the same transactional id (producer restart)
    fences the previous instance and aborts its open transaction.
    ``transaction_timeout`` caps how long a transaction may stay open before
    the coordinator's sweeper aborts it.
    """

    buffer_memory: int = 32 * 1024 * 1024
    batch_size: int = 16 * 1024
    linger: float = 0.02
    request_timeout: float = 2.0
    delivery_timeout: float = 120.0
    retries: int = 1_000_000
    retry_backoff: float = 0.1
    acks: Any = 1
    metadata_refresh_interval: float = 5.0
    max_batch_records: int = 500
    idempotence: bool = False
    transactional_id: Optional[str] = None
    transaction_timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.buffer_memory <= 0:
            raise ValueError("buffer_memory must be positive")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.delivery_timeout <= 0:
            raise ValueError("delivery_timeout must be positive")
        if self.acks not in (0, 1, "all"):
            raise ValueError("acks must be 0, 1 or 'all'")
        if self.transaction_timeout <= 0:
            raise ValueError("transaction_timeout must be positive")
        if self.transactional_id:
            # Transactions are sequence-numbered batches plus markers — the
            # idempotent machinery is a prerequisite, exactly as in Kafka.
            self.idempotence = True


class PendingRecord:
    """A record sitting in the accumulator awaiting acknowledgement.

    Fire-and-forget sends (:meth:`Producer.send_noreport`) carry no delivery
    future and no report slot: ``future`` is ``None`` and ``sequence`` is
    ``-1``, and the ack/fail paths skip their bookkeeping for them.

    ``partition`` is -1 while the record waits for topic metadata (keyed and
    round-robin placement need the real partition count — hashing against a
    guessed count would split a key across partitions).  ``fallback`` is the
    shared round-robin index captured at send time, so late placement puts
    the record exactly where send-time placement would have.
    """

    __slots__ = ("record", "partition", "future", "enqueued_at", "sequence", "fallback")

    def __init__(
        self,
        record: ProducerRecord,
        partition: int,
        future: Optional[Event],
        enqueued_at: float,
        sequence: int,
        fallback: int = 0,
    ) -> None:
        self.record = record
        self.partition = partition
        self.future = future
        self.enqueued_at = enqueued_at
        self.sequence = sequence
        self.fallback = fallback


class DeliveryReport:
    """Final outcome of one record (kept for experiment post-processing)."""

    __slots__ = (
        "sequence",
        "topic",
        "key",
        "enqueued_at",
        "acknowledged_at",
        "failed_at",
        "offset",
        "duplicate",
    )

    def __init__(self, sequence: int, topic: str, key: Any, enqueued_at: float) -> None:
        self.sequence = sequence
        self.topic = topic
        self.key = key
        self.enqueued_at = enqueued_at
        self.acknowledged_at: Optional[float] = None
        self.failed_at: Optional[float] = None
        self.offset: Optional[int] = None
        #: True when the acknowledgement was a broker-side dedup hit (the
        #: record was already durable from an earlier attempt whose ack was
        #: lost) — a DuplicateSequence ack, not a silent success.
        self.duplicate = False

    @property
    def acknowledged(self) -> bool:
        return self.acknowledged_at is not None


class Producer:
    """A producer client bound to an emulated host."""

    def __init__(
        self,
        host: Host,
        bootstrap: List[str],
        config: Optional[ProducerConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        if not bootstrap:
            raise ValueError("bootstrap list must contain at least one broker host")
        self.host = host
        self.sim = host.sim
        self.name = name or f"producer-{host.name}"
        self.bootstrap = list(bootstrap)
        self.config = config or ProducerConfig()
        self.transport = Transport(
            host, default_timeout=self.config.request_timeout, max_retries=0
        )
        self.metadata: dict = {"version": -1, "partitions": {}, "brokers": {}}
        self._accumulator: Dict[str, Deque[PendingRecord]] = {}
        self._queued_bytes: Dict[str, int] = {}
        self._in_flight: set = set()
        self._flush_scheduled: set = set()
        self._waiting_for_buffer: List[PendingRecord] = []
        self._buffer_used = 0
        self._sequence = 0
        #: Keyless-record round-robin fallback, shared by send and
        #: send_noreport so partition placement is identical however the two
        #: paths interleave (counts every send; equals _sequence when only
        #: reported sends are used, preserving historical placement).
        self._partition_fallback = 0
        self.running = False
        self.records_sent = 0
        self.records_acked = 0
        self.records_failed = 0
        #: Idempotence state: the coordinator-allocated identity (-1 until
        #: initialized), per-partition sequence counters consumed at drain
        #: time, and a counter of DuplicateSequence acks observed.
        self.producer_id = -1
        self.producer_epoch = -1
        self._next_sequences: Dict[str, int] = {}
        self.duplicate_acks = 0
        #: Transaction state: whether a transaction is open, which partitions
        #: it has registered with the coordinator, whether any record of it
        #: failed (commit then refuses and aborts), and whether this instance
        #: was fenced (fatal — every later transactional call raises).
        self._txn_active = False
        self._txn_registered: set = set()
        self._txn_had_failure = False
        self._txn_fatal = False
        self._coordinator_host: Optional[str] = None
        self.transactions_committed = 0
        self.transactions_aborted = 0
        #: One report per send, appended in sequence order — ``reports[seq]``
        #: is the report for sequence ``seq`` (no side dict needed).
        self.reports: List[DeliveryReport] = []
        self._partition_count_cache: tuple = (None, None)
        host.register_component(self)

    # -- lifecycle -------------------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.sim.process(self._sender_loop(), name=f"{self.name}:sender")

    def stop(self) -> None:
        self.running = False

    @property
    def buffer_used(self) -> int:
        """Bytes of ``buffer.memory`` currently occupied by unacknowledged records."""
        return self._buffer_used

    @property
    def buffer_available(self) -> int:
        return self.config.buffer_memory - self._buffer_used

    # -- public API ------------------------------------------------------------------
    def send(self, record: ProducerRecord) -> Event:
        """Queue a record for delivery; returns a future firing with RecordMetadata."""
        self._check_txn_send()
        future = self.sim.event()
        now = self.sim.now
        pending = PendingRecord(
            record, -1, future, now, self._sequence, fallback=self._partition_fallback
        )
        self._partition_fallback += 1
        self.reports.append(
            DeliveryReport(self._sequence, record.topic, record.key, now)
        )
        self._sequence += 1
        self.records_sent += 1
        self._place_or_wait(pending)
        return future

    def send_noreport(self, record: ProducerRecord) -> None:
        """Fire-and-forget send (``acks=0``-style client bookkeeping).

        Skips the per-record future, :class:`DeliveryReport` and sequence
        allocation of :meth:`send` — the dominant client-side cost for
        throughput workloads that never inspect delivery outcomes.  Wire
        behavior is identical to :meth:`send`: the record takes the same
        accumulator/batch path, respects ``buffer.memory``, and still counts
        in ``records_sent`` / ``records_acked`` / ``records_failed``.
        """
        self._check_txn_send()
        now = self.sim.now
        pending = PendingRecord(
            record, -1, None, now, -1, fallback=self._partition_fallback
        )
        self._partition_fallback += 1
        self.records_sent += 1
        self._place_or_wait(pending)

    def _place_or_wait(self, pending: PendingRecord) -> None:
        """Route a fresh pending record: accumulator, or the waiting line.

        A record waits (outside ``buffer.memory`` accounting) when the buffer
        is full *or* when the topic's partition count is still unknown —
        keyed/round-robin placement against a guessed count would strand
        records of one key on the wrong partition, so placement is deferred
        to the first metadata refresh instead.  Explicit-partition records
        never wait on metadata (the broker validates them on produce).
        """
        record = pending.record
        if not self._resolve_partition(pending):
            self._waiting_for_buffer.append(pending)
            return
        if self._buffer_used + record.size <= self.config.buffer_memory:
            self._buffer_used += record.size
            self._enqueue(pending)
        else:
            # Buffer full: the record waits outside the accumulator until
            # acknowledgements free space (blocking-producer semantics).
            self._waiting_for_buffer.append(pending)

    def _resolve_partition(self, pending: PendingRecord) -> bool:
        """Assign the pending record's partition if the metadata allows.

        Returns False while the topic's partition count is unknown and the
        record has no explicit partition — the single placement rule shared
        by send-time and admit-time paths, so a record places identically
        whenever the decision happens.
        """
        if pending.partition >= 0:
            return True
        record = pending.record
        n_partitions = self._partition_count(record.topic)
        if record.partition is None and n_partitions == 0:
            return False
        pending.partition = record.partition_for(n_partitions, fallback=pending.fallback)
        return True

    def flush_pending(self) -> int:
        """Number of records not yet acknowledged or failed."""
        queued = sum(len(batch) for batch in self._accumulator.values())
        return queued + len(self._waiting_for_buffer)

    def _enqueue(self, pending: PendingRecord) -> None:
        key = f"{pending.record.topic}-{pending.partition}"
        queue = self._accumulator.get(key)
        if queue is None:
            queue = self._accumulator[key] = deque()
        queue.append(pending)
        queued = self._queued_bytes.get(key, 0) + pending.record.size
        self._queued_bytes[key] = queued
        # Size-triggered eager flush: a full batch goes out now instead of
        # waiting (up to ``linger``) for the sender loop's next tick.  The
        # threshold check lives here (before the call) so under-filled
        # enqueues — the common case — pay no extra function call.
        if (
            queued >= self.config.batch_size
            or len(queue) >= self.config.max_batch_records
        ):
            self._maybe_schedule_flush(key)

    def _maybe_schedule_flush(self, key: str) -> None:
        """Schedule an immediate flush if a full batch is waiting.

        Kafka semantics: ``linger`` only delays *under-filled* batches; full
        ones ship as soon as the partition's in-flight slot frees up.  One
        scheduled flush per key at a time, so a same-instant burst past the
        threshold does not push a callback per record.
        """
        if (
            not self.running
            or key in self._in_flight
            or key in self._flush_scheduled
        ):
            return
        queue = self._accumulator.get(key)
        if not queue:
            return
        if (
            self._queued_bytes.get(key, 0) >= self.config.batch_size
            or len(queue) >= self.config.max_batch_records
        ):
            self._flush_scheduled.add(key)
            self.sim.call_later(0.0, self._eager_flush, key)

    def _eager_flush(self, key: str) -> None:
        self._flush_scheduled.discard(key)
        self._flush_key(key)

    def _flush_key(self, key: str) -> None:
        """Drain and transmit one partition's batch if one is ready."""
        if not self.running or key in self._in_flight:
            return
        if self.config.idempotence and self.producer_id < 0:
            # Sequences are only meaningful under an allocated identity; the
            # sender loop flushes everything once the init handshake lands.
            return
        batch, wire_batch = self._drain_batch(key)
        if not batch:
            return
        self._in_flight.add(key)
        self.sim.process(
            self._send_batch_guarded(key, batch, wire_batch),
            name=f"{self.name}:send:{key}",
        )

    def _partition_count(self, topic: str) -> int:
        """Partition count per topic, cached per metadata version.

        ``send`` calls this once per record; rescanning the whole partition
        map each time dominated the client-side cost at high record rates.
        Returns 0 while the topic is absent from the metadata (placement then
        trusts an explicit partition and routes everything else to 0).
        """
        version = self.metadata.get("version", -1)
        cached_version, counts = self._partition_count_cache
        if cached_version != version:
            counts = {}
            for info in self.metadata.get("partitions", {}).values():
                topic_name = info["topic"]
                counts[topic_name] = max(
                    counts.get(topic_name, 0), info["partition"] + 1
                )
            self._partition_count_cache = (version, counts)
        return counts.get(topic, 0)

    # -- sender machinery -----------------------------------------------------------------
    def _sender_loop(self):
        if self.config.idempotence:
            yield from self._init_producer_id()
        yield from self._refresh_metadata()
        last_metadata_refresh = self.sim.now
        while self.running:
            yield self.sim.timeout(self.config.linger)
            if self.sim.now - last_metadata_refresh > self.config.metadata_refresh_interval:
                yield from self._refresh_metadata()
                last_metadata_refresh = self.sim.now
            self._admit_waiting_records()
            for key in list(self._accumulator.keys()):
                # One in-flight batch per partition (enforced inside
                # _flush_key): a partition whose leader is unreachable must
                # not block the other partitions' traffic (the disconnected
                # producer in Figure 6 keeps feeding its local topic while
                # retrying the remote one).
                self._flush_key(key)

    def _send_batch_guarded(self, key: str, batch: List[PendingRecord], wire_batch: RecordBatch):
        try:
            yield from self._send_batch(key, batch, wire_batch)
        finally:
            self._in_flight.discard(key)
            # The freed in-flight slot immediately serves the next full
            # batch; under-filled remainders wait for the linger tick.
            self._maybe_schedule_flush(key)

    def _expire_accumulated_records(self) -> None:
        """Fail accumulator records whose ``delivery_timeout`` passed.

        The sender loop normally enforces the deadline inside ``_send_batch``
        after a drain; while flushing is gated (idempotence init still
        pending) nothing drains, so the deadline is enforced directly on the
        queued records instead of letting their futures hang forever.
        """
        now = self.sim.now
        for key, queue in self._accumulator.items():
            expired = self._overdue(queue, now)
            if not expired:
                continue
            for pending in expired:
                queue.remove(pending)
            freed = sum(pending.record.size for pending in expired)
            self._queued_bytes[key] = self._queued_bytes.get(key, 0) - freed
            self._fail_batch(expired, reason="delivery timeout")

    def _overdue(self, records, now: float) -> List[PendingRecord]:
        """The single ``delivery_timeout`` deadline rule, shared by every
        expiry site (accumulator queues and the waiting line)."""
        deadline_margin = self.config.delivery_timeout
        return [
            pending for pending in records
            if now >= pending.enqueued_at + deadline_margin
        ]

    def _admit_waiting_records(self) -> None:
        """Move waiting records into the accumulator as space/metadata allow.

        Waiting records still honor ``delivery_timeout``: a record parked on
        a topic that never appears in the metadata (or starved by a full
        buffer) fails with :class:`DeliveryFailed` at its deadline instead of
        waiting forever.
        """
        if not self._waiting_for_buffer:
            return
        now = self.sim.now
        expired = self._overdue(self._waiting_for_buffer, now)
        if expired:
            for pending in expired:
                self._waiting_for_buffer.remove(pending)
            # Waiting records never entered buffer accounting.
            self._fail_batch(expired, reason="delivery timeout", free_buffer=False)
        admitted = []
        for pending in self._waiting_for_buffer:
            record = pending.record
            if not self._resolve_partition(pending):
                continue  # still no metadata for this topic
            if self._buffer_used + record.size <= self.config.buffer_memory:
                self._buffer_used += record.size
                self._enqueue(pending)
                admitted.append(pending)
        for pending in admitted:
            self._waiting_for_buffer.remove(pending)

    def _drain_batch(self, key: str):
        """Pop one ready batch off the accumulator.

        Returns ``(pending_records, wire_batch)`` built in a single pass: the
        wire :class:`RecordBatch` is the one object per flush that travels to
        the broker (and is reused verbatim across retries — the broker never
        mutates it); the pending list keeps the futures/report bookkeeping.
        """
        queue = self._accumulator.get(key)
        if not queue:
            return [], None
        first = queue[0]
        wire_batch = RecordBatch(first.record.topic, first.partition)
        batch: List[PendingRecord] = []
        size = 0
        max_records = self.config.max_batch_records
        batch_size = self.config.batch_size
        while queue and len(batch) < max_records:
            candidate = queue[0]
            record = candidate.record
            if batch and size + record.size > batch_size:
                break
            queue.popleft()
            batch.append(candidate)
            size += record.size
            wire_batch.append(
                record.key,
                record.value,
                record.size,
                produced_at=candidate.enqueued_at,
                headers=record.headers,
            )
        if size:
            self._queued_bytes[key] = self._queued_bytes.get(key, 0) - size
        if batch and self.config.idempotence:
            # Stamp the producer identity once per drained batch.  The wire
            # batch is reused verbatim across retries, so its base_sequence
            # never moves — which is exactly what lets the leader recognize
            # a retry as a duplicate.
            wire_batch.producer_id = self.producer_id
            wire_batch.producer_epoch = self.producer_epoch
            base_sequence = self._next_sequences.get(key, 0)
            wire_batch.base_sequence = base_sequence
            self._next_sequences[key] = base_sequence + len(batch)
            if self._txn_active:
                wire_batch.transactional = True
        return batch, wire_batch

    def _send_batch(self, key: str, batch: List[PendingRecord], wire_batch: RecordBatch):
        topic = wire_batch.topic
        partition = wire_batch.partition
        deadline = min(p.enqueued_at for p in batch) + self.config.delivery_timeout
        attempts = 0
        request_size = wire_batch.wire_size + 35
        if wire_batch.transactional and key not in self._txn_registered:
            # First send of this transaction to this partition: register it
            # with the coordinator so end_txn knows where markers go.  Kafka's
            # AddPartitionsToTxn, issued implicitly from the send path.
            registered = yield from self._add_partitions_to_txn(key, deadline)
            if not registered:
                self._fail_batch(
                    batch,
                    reason="producer_fenced" if self._txn_fatal else "transaction_aborted",
                )
                return
        while self.running:
            if self.sim.now >= deadline or attempts > self.config.retries:
                self._fail_batch(batch, reason="delivery timeout")
                return
            leader_host = self._leader_host(key)
            if leader_host is None:
                yield self.sim.timeout(self.config.retry_backoff)
                yield from self._refresh_metadata()
                attempts += 1
                continue
            try:
                reply = yield from self.transport.request(
                    leader_host,
                    BROKER_PORT,
                    {
                        "type": "produce",
                        "topic": topic,
                        "partition": partition,
                        "batch": wire_batch,
                        "acks": self.config.acks,
                    },
                    size=request_size,
                    timeout=self.config.request_timeout,
                )
            except RequestTimeout:
                attempts += 1
                yield self.sim.timeout(self.config.retry_backoff)
                continue
            error = reply.get("error")
            if error is None:
                duplicate = bool(reply.get("duplicate"))
                if duplicate:
                    self.duplicate_acks += 1
                self._ack_batch(
                    batch,
                    reply.get("base_offset", 0),
                    topic,
                    partition,
                    duplicate=duplicate,
                )
                return
            if error == "producer_fenced":
                # A newer instance re-initialized our producer id: fatal for
                # this zombie — retrying can never succeed.
                self._fail_batch(batch, reason="producer_fenced")
                return
            if error == "not_leader":
                attempts += 1
                yield self.sim.timeout(self.config.retry_backoff)
                yield from self._refresh_metadata()
                continue
            if error in ("not_enough_replicas", "unknown_topic"):
                attempts += 1
                yield self.sim.timeout(max(self.config.retry_backoff, 0.5))
                yield from self._refresh_metadata()
                continue
            self._fail_batch(batch, reason=error)
            return

    def _ack_batch(
        self,
        batch: List[PendingRecord],
        base_offset: int,
        topic: str,
        partition: int,
        duplicate: bool = False,
    ) -> None:
        now = self.sim.now
        reports = self.reports
        freed = 0
        for index, pending in enumerate(batch):
            # A duplicate ack for a stale retry may not know the original
            # offsets (base_offset -1): the records are durable, their
            # positions just aren't echoed back — report and metadata both
            # carry None then, never a fake position.
            offset = base_offset + index if base_offset >= 0 else None
            freed += pending.record.size
            if pending.sequence < 0:  # fire-and-forget: no report, no future
                continue
            report = reports[pending.sequence]
            report.acknowledged_at = now
            report.offset = offset
            report.duplicate = duplicate
            if not pending.future.triggered:
                pending.future.succeed(
                    RecordMetadata(topic, partition, offset, now, pending.enqueued_at)
                )
        self._buffer_used -= freed
        self.records_acked += len(batch)

    def _fail_batch(
        self, batch: List[PendingRecord], reason: str, free_buffer: bool = True
    ) -> None:
        now = self.sim.now
        if self.config.transactional_id:
            # A lost record poisons the transaction: commit_transaction will
            # abort instead of committing a partial write set.
            self._txn_had_failure = True
            if reason == "producer_fenced":
                self._txn_fatal = True
        for pending in batch:
            if free_buffer:
                self._buffer_used -= pending.record.size
            self.records_failed += 1
            if pending.sequence < 0:  # fire-and-forget: no report, no future
                continue
            self.reports[pending.sequence].failed_at = now
            if not pending.future.triggered:
                failure = pending.future
                failure._defused = True  # experiment code may ignore the future
                failure.fail(DeliveryFailed(reason))

    # -- idempotence handshake --------------------------------------------------------------
    def _init_producer_id(self):
        """Obtain a ``(producer_id, epoch)`` from the coordinator (blocking).

        Runs once at sender start: nothing is flushed until the identity is
        allocated, because batches without sequence numbers could never be
        deduplicated.  Retries forever — like metadata bootstrap, a producer
        on a partitioned host simply keeps trying until the cluster answers —
        but queued records still honor ``delivery_timeout`` while it waits
        (no flush path runs yet, so expiry must happen here).
        """
        while self.running and self.producer_id < 0:
            self._expire_accumulated_records()
            self._admit_waiting_records()
            coordinator_host = yield from find_coordinator_host(
                self.transport,
                self.bootstrap,
                timeout=min(1.0, self.config.request_timeout),
            )
            if coordinator_host is None:
                yield self.sim.timeout(self.config.retry_backoff)
                continue
            self._coordinator_host = coordinator_host
            init_request = {"type": "init_producer_id", "name": self.name}
            if self.config.transactional_id:
                init_request["transactional_id"] = self.config.transactional_id
                init_request["transaction_timeout"] = self.config.transaction_timeout
            try:
                reply = yield from self.transport.request(
                    coordinator_host,
                    COORDINATOR_PORT,
                    init_request,
                    size=48,
                    timeout=min(1.0, self.config.request_timeout),
                )
            except RequestTimeout:
                yield self.sim.timeout(self.config.retry_backoff)
                continue
            if reply.get("error") is None:
                self.producer_id = reply["producer_id"]
                self.producer_epoch = reply["producer_epoch"]

    # -- transactions ----------------------------------------------------------------------
    def begin_transaction(self) -> None:
        """Open a transaction: later sends belong to it until commit/abort."""
        if not self.config.transactional_id:
            raise InvalidTxnStateError("producer has no transactional_id")
        if self._txn_fatal:
            raise ProducerFencedError(
                f"transactional id {self.config.transactional_id!r} was fenced"
            )
        if self._txn_active:
            raise InvalidTxnStateError("a transaction is already in progress")
        self._txn_active = True
        self._txn_registered = set()
        self._txn_had_failure = False

    def commit_transaction(self, timeout: Optional[float] = None):
        """Generator: flush, then atomically commit the open transaction.

        Returns only after the coordinator completed the marker fan-out —
        every record of the transaction is then visible to ``read_committed``
        consumers.  Raises :class:`DeliveryFailed` if any record of the
        transaction failed (the transaction is aborted instead) or the
        timeout expires, and :class:`ProducerFencedError` if a newer instance
        took over the transactional id.
        """
        yield from self._end_transaction("commit", timeout)

    def abort_transaction(self, timeout: Optional[float] = None):
        """Generator: flush in-flight sends, then abort the open transaction."""
        yield from self._end_transaction("abort", timeout)

    def in_transaction(self) -> bool:
        return self._txn_active

    def _check_txn_send(self) -> None:
        if self.config.transactional_id and not self._txn_active:
            raise InvalidTxnStateError(
                "transactional producer requires begin_transaction() before send"
            )

    def _end_transaction(self, outcome: str, timeout: Optional[float]):
        if not self.config.transactional_id:
            raise InvalidTxnStateError("producer has no transactional_id")
        if not self._txn_active:
            raise InvalidTxnStateError(f"no open transaction to {outcome}")
        if self._txn_fatal:
            self._txn_active = False
            raise ProducerFencedError(
                f"transactional id {self.config.transactional_id!r} was fenced"
            )
        deadline = self.sim.now + (
            timeout if timeout is not None else self.config.delivery_timeout
        )
        # Flush barrier: every record of the transaction must be acknowledged
        # (or failed) before the outcome is decided.
        while (self.flush_pending() or self._in_flight) and not self._txn_fatal:
            if self.sim.now >= deadline:
                if outcome == "commit":
                    yield from self._force_abort()
                    raise DeliveryFailed(
                        "transaction flush timed out before commit; aborted"
                    )
                break
            yield self.sim.timeout(0.01)
        if self._txn_fatal:
            self._txn_active = False
            raise ProducerFencedError(
                f"transactional id {self.config.transactional_id!r} was fenced"
            )
        if outcome == "commit" and self._txn_had_failure:
            # Some record of the transaction was never appended: committing
            # would expose a torn write set.  Abort and surface the failure.
            yield from self._send_end_txn("abort", deadline)
            self._txn_active = False
            self.transactions_aborted += 1
            raise DeliveryFailed(
                "records failed during the transaction; aborted instead of committed"
            )
        if not self._txn_registered:
            # Nothing was sent (or nothing reached a partition): no markers
            # to write — the transaction completes locally.
            self._txn_active = False
            if outcome == "commit":
                self.transactions_committed += 1
            else:
                self.transactions_aborted += 1
            return
        result = yield from self._send_end_txn(outcome, deadline)
        self._txn_active = False
        if result == "fenced":
            raise ProducerFencedError(
                f"transactional id {self.config.transactional_id!r} was fenced"
            )
        if result == "ok":
            if outcome == "commit":
                self.transactions_committed += 1
            else:
                self.transactions_aborted += 1
            return
        if outcome == "commit":
            # The coordinator refused the commit (its timeout sweeper or a
            # fencing re-init aborted the transaction first) or the deadline
            # expired mid-handshake.
            raise DeliveryFailed(f"transaction commit did not complete ({result})")
        self.transactions_aborted += 1

    def _force_abort(self):
        """Abandon a transaction whose flush never completed (best effort).

        Unsent records fail immediately; in-flight requests get a short grace
        to settle so same-epoch stragglers cannot land after the abort marker.
        """
        grace = self.sim.now + self.config.request_timeout + self.config.retry_backoff
        while self._in_flight and self.sim.now < grace:
            yield self.sim.timeout(0.01)
        for key, queue in list(self._accumulator.items()):
            stranded = list(queue)
            queue.clear()
            self._queued_bytes[key] = 0
            if stranded:
                self._fail_batch(stranded, reason="transaction_aborted")
        waiting = self._waiting_for_buffer
        self._waiting_for_buffer = []
        if waiting:
            self._fail_batch(waiting, reason="transaction_aborted", free_buffer=False)
        if self._txn_registered:
            yield from self._send_end_txn("abort", self.sim.now + 10.0)
        self._txn_active = False
        self.transactions_aborted += 1

    def _txn_coordinator(self):
        """Generator: the coordinator's host (cached from the init handshake)."""
        if self._coordinator_host is not None:
            return self._coordinator_host
        coordinator_host = yield from find_coordinator_host(
            self.transport,
            self.bootstrap,
            timeout=min(1.0, self.config.request_timeout),
        )
        self._coordinator_host = coordinator_host
        return coordinator_host

    def _add_partitions_to_txn(self, key: str, deadline: float):
        """Generator: register one partition with the current transaction.

        Returns True on success; False when fenced (fatal) or the deadline
        expired.  ``invalid_txn_state`` (the previous transaction is still
        completing its marker fan-out) is retried.
        """
        while self.running and self.sim.now < deadline:
            coordinator_host = yield from self._txn_coordinator()
            if coordinator_host is None:
                yield self.sim.timeout(self.config.retry_backoff)
                continue
            try:
                reply = yield from self.transport.request(
                    coordinator_host,
                    COORDINATOR_PORT,
                    {
                        "type": "add_partitions_to_txn",
                        "transactional_id": self.config.transactional_id,
                        "producer_id": self.producer_id,
                        "producer_epoch": self.producer_epoch,
                        "partitions": [key],
                    },
                    size=64,
                    timeout=min(1.0, self.config.request_timeout),
                )
            except RequestTimeout:
                yield self.sim.timeout(self.config.retry_backoff)
                continue
            error = reply.get("error")
            if error is None:
                self._txn_registered.add(key)
                return True
            if error == "producer_fenced":
                self._txn_fatal = True
                return False
            yield self.sim.timeout(self.config.retry_backoff)
        return False

    def _send_end_txn(self, outcome: str, deadline: float):
        """Generator: drive the coordinator's end_txn to completion.

        Returns ``"ok"``, ``"fenced"``, ``"invalid"`` (the coordinator's
        state machine refused — e.g. the transaction was already aborted) or
        ``"timeout"``.  Safe to retry: end_txn is idempotent coordinator-side.
        """
        while self.running:
            if self.sim.now >= deadline:
                return "timeout"
            coordinator_host = yield from self._txn_coordinator()
            if coordinator_host is None:
                yield self.sim.timeout(self.config.retry_backoff)
                continue
            try:
                reply = yield from self.transport.request(
                    coordinator_host,
                    COORDINATOR_PORT,
                    {
                        "type": "end_txn",
                        "transactional_id": self.config.transactional_id,
                        "producer_id": self.producer_id,
                        "producer_epoch": self.producer_epoch,
                        "outcome": outcome,
                    },
                    size=64,
                    timeout=self.config.request_timeout,
                )
            except RequestTimeout:
                yield self.sim.timeout(self.config.retry_backoff)
                continue
            error = reply.get("error")
            if error is None:
                return "ok"
            if error == "producer_fenced":
                self._txn_fatal = True
                return "fenced"
            if error == "invalid_txn_state":
                return "invalid"
            yield self.sim.timeout(self.config.retry_backoff)
        return "invalid"

    # -- metadata ---------------------------------------------------------------------------
    def _leader_host(self, key: str) -> Optional[str]:
        info = self.metadata.get("partitions", {}).get(key)
        if not info or not info.get("leader"):
            return None
        broker_entry = self.metadata.get("brokers", {}).get(info["leader"])
        return broker_entry["host"] if broker_entry else None

    def _refresh_metadata(self):
        for bootstrap_host in self.bootstrap:
            try:
                reply = yield from self.transport.request(
                    bootstrap_host,
                    BROKER_PORT,
                    {"type": "metadata"},
                    size=32,
                    timeout=min(1.0, self.config.request_timeout),
                )
            except RequestTimeout:
                continue
            metadata = reply.get("metadata")
            if metadata and metadata.get("version", -1) >= self.metadata.get("version", -1):
                self.metadata = metadata
                # Records parked on an unknown partition count place as soon
                # as metadata lands (their captured round-robin index keeps
                # placement identical to send-time placement).
                self._admit_waiting_records()
            return
        return

    # -- experiment helpers -----------------------------------------------------------------
    def acked_sequences(self) -> List[int]:
        return [report.sequence for report in self.reports if report.acknowledged]

    def failed_sequences(self) -> List[int]:
        return [report.sequence for report in self.reports if report.failed_at is not None]
