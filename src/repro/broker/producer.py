"""Producer client.

Implements the Kafka producer behaviours the paper's experiments depend on:

* ``buffer.memory`` — records wait in a bounded accumulator (Figure 9c shows
  its effect on the emulation's memory footprint);
* batching with a ``linger`` interval;
* ``request.timeout`` and retries — a producer cut off from the leader keeps
  re-sending records until they are either accepted or the delivery timeout
  expires (the latency inflation of Figure 6c);
* ``acks`` (0, 1 or "all");
* metadata refresh on ``not_leader`` errors so producers find newly elected
  leaders after a failure.

Records are tracked end to end: every send returns a future that fires with
:class:`RecordMetadata` on acknowledgement or fails with
:class:`DeliveryFailed`, and the producer keeps per-record accounting that the
delivery-matrix experiment (Figure 6b) reads back.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.broker.broker import BROKER_PORT
from repro.broker.errors import DeliveryFailed
from repro.broker.message import ProducerRecord, RecordMetadata
from repro.network.host import Host
from repro.network.transport import RequestTimeout, Transport
from repro.simulation.events import Event


@dataclass
class ProducerConfig:
    """Producer tunables (YAML ``prodCfg`` keys map onto these).

    Batching knobs (mirroring Kafka's ``batch.size`` / ``linger.ms`` /
    ``max.in.flight``-per-partition semantics):

    * ``batch_size`` — byte threshold per partition batch.  A batch that
      reaches it (or ``max_batch_records``) is flushed *immediately* rather
      than waiting for the next linger tick, so one RPC, one size estimate
      and one broker CPU charge cover many records under heavy traffic.
    * ``linger`` — how long an under-filled batch may wait for more records
      before the sender flushes it anyway.
    """

    buffer_memory: int = 32 * 1024 * 1024
    batch_size: int = 16 * 1024
    linger: float = 0.02
    request_timeout: float = 2.0
    delivery_timeout: float = 120.0
    retries: int = 1_000_000
    retry_backoff: float = 0.1
    acks: Any = 1
    metadata_refresh_interval: float = 5.0
    max_batch_records: int = 500

    def __post_init__(self) -> None:
        if self.buffer_memory <= 0:
            raise ValueError("buffer_memory must be positive")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.delivery_timeout <= 0:
            raise ValueError("delivery_timeout must be positive")
        if self.acks not in (0, 1, "all"):
            raise ValueError("acks must be 0, 1 or 'all'")


@dataclass
class PendingRecord:
    """A record sitting in the accumulator awaiting acknowledgement."""

    record: ProducerRecord
    partition: int
    future: Event
    enqueued_at: float
    sequence: int


@dataclass
class DeliveryReport:
    """Final outcome of one record (kept for experiment post-processing)."""

    sequence: int
    topic: str
    key: Any
    enqueued_at: float
    acknowledged_at: Optional[float] = None
    failed_at: Optional[float] = None
    offset: Optional[int] = None

    @property
    def acknowledged(self) -> bool:
        return self.acknowledged_at is not None


class Producer:
    """A producer client bound to an emulated host."""

    def __init__(
        self,
        host: Host,
        bootstrap: List[str],
        config: Optional[ProducerConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        if not bootstrap:
            raise ValueError("bootstrap list must contain at least one broker host")
        self.host = host
        self.sim = host.sim
        self.name = name or f"producer-{host.name}"
        self.bootstrap = list(bootstrap)
        self.config = config or ProducerConfig()
        self.transport = Transport(
            host, default_timeout=self.config.request_timeout, max_retries=0
        )
        self.metadata: dict = {"version": -1, "partitions": {}, "brokers": {}}
        self._accumulator: Dict[str, Deque[PendingRecord]] = {}
        self._queued_bytes: Dict[str, int] = {}
        self._in_flight: set = set()
        self._flush_scheduled: set = set()
        self._waiting_for_buffer: List[PendingRecord] = []
        self._buffer_used = 0
        self._sequence = 0
        self.running = False
        self.records_sent = 0
        self.records_acked = 0
        self.records_failed = 0
        self.reports: List[DeliveryReport] = []
        self._reports_by_sequence: Dict[int, DeliveryReport] = {}
        host.register_component(self)

    # -- lifecycle -------------------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.sim.process(self._sender_loop(), name=f"{self.name}:sender")

    def stop(self) -> None:
        self.running = False

    @property
    def buffer_used(self) -> int:
        """Bytes of ``buffer.memory`` currently occupied by unacknowledged records."""
        return self._buffer_used

    @property
    def buffer_available(self) -> int:
        return self.config.buffer_memory - self._buffer_used

    # -- public API ------------------------------------------------------------------
    def send(self, record: ProducerRecord) -> Event:
        """Queue a record for delivery; returns a future firing with RecordMetadata."""
        future = self.sim.event()
        n_partitions = self._partition_count(record.topic)
        partition = record.partition_for(n_partitions, fallback=self._sequence)
        pending = PendingRecord(
            record=record,
            partition=partition,
            future=future,
            enqueued_at=self.sim.now,
            sequence=self._sequence,
        )
        report = DeliveryReport(
            sequence=self._sequence,
            topic=record.topic,
            key=record.key,
            enqueued_at=self.sim.now,
        )
        self.reports.append(report)
        self._reports_by_sequence[pending.sequence] = report
        self._sequence += 1
        self.records_sent += 1
        if self._buffer_used + record.size <= self.config.buffer_memory:
            self._buffer_used += record.size
            self._enqueue(pending)
        else:
            # Buffer full: the record waits outside the accumulator until
            # acknowledgements free space (blocking-producer semantics).
            self._waiting_for_buffer.append(pending)
        return future

    def flush_pending(self) -> int:
        """Number of records not yet acknowledged or failed."""
        queued = sum(len(batch) for batch in self._accumulator.values())
        return queued + len(self._waiting_for_buffer)

    def _enqueue(self, pending: PendingRecord) -> None:
        key = f"{pending.record.topic}-{pending.partition}"
        queue = self._accumulator.get(key)
        if queue is None:
            queue = self._accumulator[key] = deque()
        queue.append(pending)
        queued = self._queued_bytes.get(key, 0) + pending.record.size
        self._queued_bytes[key] = queued
        # Size-triggered eager flush: a full batch goes out now instead of
        # waiting (up to ``linger``) for the sender loop's next tick.
        self._maybe_schedule_flush(key)

    def _maybe_schedule_flush(self, key: str) -> None:
        """Schedule an immediate flush if a full batch is waiting.

        Kafka semantics: ``linger`` only delays *under-filled* batches; full
        ones ship as soon as the partition's in-flight slot frees up.  One
        scheduled flush per key at a time, so a same-instant burst past the
        threshold does not push a callback per record.
        """
        if (
            not self.running
            or key in self._in_flight
            or key in self._flush_scheduled
        ):
            return
        queue = self._accumulator.get(key)
        if not queue:
            return
        if (
            self._queued_bytes.get(key, 0) >= self.config.batch_size
            or len(queue) >= self.config.max_batch_records
        ):
            self._flush_scheduled.add(key)
            self.sim.call_later(0.0, self._eager_flush, key)

    def _eager_flush(self, key: str) -> None:
        self._flush_scheduled.discard(key)
        self._flush_key(key)

    def _flush_key(self, key: str) -> None:
        """Drain and transmit one partition's batch if one is ready."""
        if not self.running or key in self._in_flight:
            return
        batch = self._drain_batch(key)
        if not batch:
            return
        self._in_flight.add(key)
        self.sim.process(
            self._send_batch_guarded(key, batch), name=f"{self.name}:send:{key}"
        )

    def _partition_count(self, topic: str) -> int:
        count = 0
        for info in self.metadata.get("partitions", {}).values():
            if info["topic"] == topic:
                count = max(count, info["partition"] + 1)
        return count or 1

    # -- sender machinery -----------------------------------------------------------------
    def _sender_loop(self):
        yield from self._refresh_metadata()
        last_metadata_refresh = self.sim.now
        while self.running:
            yield self.sim.timeout(self.config.linger)
            if self.sim.now - last_metadata_refresh > self.config.metadata_refresh_interval:
                yield from self._refresh_metadata()
                last_metadata_refresh = self.sim.now
            self._admit_waiting_records()
            for key in list(self._accumulator.keys()):
                # One in-flight batch per partition (enforced inside
                # _flush_key): a partition whose leader is unreachable must
                # not block the other partitions' traffic (the disconnected
                # producer in Figure 6 keeps feeding its local topic while
                # retrying the remote one).
                self._flush_key(key)

    def _send_batch_guarded(self, key: str, batch: List[PendingRecord]):
        try:
            yield from self._send_batch(key, batch)
        finally:
            self._in_flight.discard(key)
            # The freed in-flight slot immediately serves the next full
            # batch; under-filled remainders wait for the linger tick.
            self._maybe_schedule_flush(key)

    def _admit_waiting_records(self) -> None:
        admitted = []
        for pending in self._waiting_for_buffer:
            if self._buffer_used + pending.record.size <= self.config.buffer_memory:
                self._buffer_used += pending.record.size
                self._enqueue(pending)
                admitted.append(pending)
        for pending in admitted:
            self._waiting_for_buffer.remove(pending)

    def _drain_batch(self, key: str) -> List[PendingRecord]:
        queue = self._accumulator.get(key)
        if not queue:
            return []
        batch: List[PendingRecord] = []
        size = 0
        while queue and len(batch) < self.config.max_batch_records:
            candidate = queue[0]
            if batch and size + candidate.record.size > self.config.batch_size:
                break
            batch.append(queue.popleft())
            size += candidate.record.size
        if size:
            self._queued_bytes[key] = self._queued_bytes.get(key, 0) - size
        return batch

    def _send_batch(self, key: str, batch: List[PendingRecord]):
        topic = batch[0].record.topic
        partition = batch[0].partition
        deadline = min(p.enqueued_at for p in batch) + self.config.delivery_timeout
        attempts = 0
        while self.running:
            if self.sim.now >= deadline or attempts > self.config.retries:
                self._fail_batch(batch, reason="delivery timeout")
                return
            leader_host = self._leader_host(key)
            if leader_host is None:
                yield self.sim.timeout(self.config.retry_backoff)
                yield from self._refresh_metadata()
                attempts += 1
                continue
            wire_records = [
                {
                    "key": p.record.key,
                    "value": p.record.value,
                    "size": p.record.size,
                    "produced_at": p.enqueued_at,
                    "headers": p.record.headers,
                }
                for p in batch
            ]
            request_size = sum(p.record.size for p in batch) + 96
            try:
                reply = yield from self.transport.request(
                    leader_host,
                    BROKER_PORT,
                    {
                        "type": "produce",
                        "topic": topic,
                        "partition": partition,
                        "records": wire_records,
                        "acks": self.config.acks,
                    },
                    size=request_size,
                    timeout=self.config.request_timeout,
                )
            except RequestTimeout:
                attempts += 1
                yield self.sim.timeout(self.config.retry_backoff)
                continue
            error = reply.get("error")
            if error is None:
                self._ack_batch(batch, reply.get("base_offset", 0), topic, partition)
                return
            if error == "not_leader":
                attempts += 1
                yield self.sim.timeout(self.config.retry_backoff)
                yield from self._refresh_metadata()
                continue
            if error in ("not_enough_replicas", "unknown_topic"):
                attempts += 1
                yield self.sim.timeout(max(self.config.retry_backoff, 0.5))
                yield from self._refresh_metadata()
                continue
            self._fail_batch(batch, reason=error)
            return

    def _ack_batch(
        self, batch: List[PendingRecord], base_offset: int, topic: str, partition: int
    ) -> None:
        for index, pending in enumerate(batch):
            metadata = RecordMetadata(
                topic=topic,
                partition=partition,
                offset=base_offset + index,
                timestamp=self.sim.now,
                produced_at=pending.enqueued_at,
            )
            self._buffer_used -= pending.record.size
            self.records_acked += 1
            report = self._reports_by_sequence[pending.sequence]
            report.acknowledged_at = self.sim.now
            report.offset = metadata.offset
            if not pending.future.triggered:
                pending.future.succeed(metadata)

    def _fail_batch(self, batch: List[PendingRecord], reason: str) -> None:
        for pending in batch:
            self._buffer_used -= pending.record.size
            self.records_failed += 1
            report = self._reports_by_sequence[pending.sequence]
            report.failed_at = self.sim.now
            if not pending.future.triggered:
                failure = pending.future
                failure._defused = True  # experiment code may ignore the future
                failure.fail(DeliveryFailed(reason))

    # -- metadata ---------------------------------------------------------------------------
    def _leader_host(self, key: str) -> Optional[str]:
        info = self.metadata.get("partitions", {}).get(key)
        if not info or not info.get("leader"):
            return None
        broker_entry = self.metadata.get("brokers", {}).get(info["leader"])
        return broker_entry["host"] if broker_entry else None

    def _refresh_metadata(self):
        for bootstrap_host in self.bootstrap:
            try:
                reply = yield from self.transport.request(
                    bootstrap_host,
                    BROKER_PORT,
                    {"type": "metadata"},
                    size=32,
                    timeout=min(1.0, self.config.request_timeout),
                )
            except RequestTimeout:
                continue
            metadata = reply.get("metadata")
            if metadata and metadata.get("version", -1) >= self.metadata.get("version", -1):
                self.metadata = metadata
            return
        return

    # -- experiment helpers -----------------------------------------------------------------
    def acked_sequences(self) -> List[int]:
        return [report.sequence for report in self.reports if report.acknowledged]

    def failed_sequences(self) -> List[int]:
        return [report.sequence for report in self.reports if report.failed_at is not None]
