"""Append-only partition logs (columnar, batch-native, segmented).

Each partition replica is backed by a :class:`PartitionLog`: an append-only
sequence of records with a *log end offset* (next offset to be written) and a
*high watermark* (highest offset known to be replicated to the in-sync
replica set; only records below it are visible to consumers).  Leader
failover and follower rejoin are implemented with epoch bookkeeping and
truncation, which is where the ZooKeeper-mode silent message loss comes from.

Each replica also keeps a per-producer dedup table (:class:`ProducerEntry`,
``producer_state``): the last sequence number appended per producer id, fed
by the producer-identity columns that every append carries and that replica
fetches hand down to followers — so the exactly-once produce guarantee
survives leader elections (see ``docs/exactly_once.md``).

Storage is columnar: parallel arrays of keys/values/sizes/timestamps rather
than one record object per entry.  The hot paths — :meth:`append_batch` on
produce, :meth:`read_batch` on fetch — move whole :class:`RecordBatch`
payloads with C-level list extends/slices and compute sizes once from the
batch header.  The per-record views (:class:`LogRecord`) are materialized
lazily only on the cold paths (tests, truncation loss accounting,
``record_at`` debugging).

Segmented storage (``docs/log_storage.md``)
-------------------------------------------
With a :class:`~repro.broker.segment.LogStorageConfig` the log is the
*head segment* (exactly the flat columns above — every hot path untouched)
plus a list of immutable :class:`~repro.broker.segment.SealedSegment`
chunks.  When the head reaches ``segment_records`` rows it is sealed in
O(1) (the column lists move, nothing is copied) and reads below the head
bisect the sealed base offsets to locate their segment.  Sealed segments
are the unit of retention (whole-segment deletes advance
``log_start_offset``), key compaction (in-place rewrite keeping original
offsets), cold-tier eviction (columns dropped, faulted back from the
segment file on fetch) and recovery (:meth:`PartitionLog.recover` replays
segment files back into a full replica — producer state, epoch boundaries
and transaction state included).  Without storage config the log is one
flat head forever — byte-identical to the pre-segmentation layout.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.broker.batch import CONTROL_RECORD_SIZE, EMPTY_BATCH, RecordBatch
from repro.broker.segment import (
    LogStorageConfig,
    SealedSegment,
    list_segment_files,
    segment_file_name,
    session_default_storage,
)


@dataclass
class LogRecord:
    """One record as viewed out of a partition log (materialized on demand)."""

    offset: int
    key: Any
    value: Any
    size: int
    timestamp: float
    produced_at: float
    leader_epoch: int
    headers: Dict[str, Any] = field(default_factory=dict)
    #: Producer identity the record was appended under (-1 = non-idempotent).
    producer_id: int = -1
    producer_epoch: int = -1
    sequence: int = -1


class ProducerEntry:
    """Per-producer dedup state of one partition replica.

    Mirrors Kafka's producer state snapshot: the producer's current epoch,
    the sequence number of its last appended record, and the base offset /
    record count of its most recent batch (so a duplicate retry can be
    acknowledged with the *original* offsets).
    """

    __slots__ = ("epoch", "last_sequence", "last_base_offset", "last_count")

    def __init__(
        self,
        epoch: int,
        last_sequence: int,
        last_base_offset: int = -1,
        last_count: int = 0,
    ) -> None:
        self.epoch = epoch
        self.last_sequence = last_sequence
        self.last_base_offset = last_base_offset
        self.last_count = last_count

    def __repr__(self) -> str:
        return (
            f"<ProducerEntry epoch={self.epoch} last_seq={self.last_sequence} "
            f"last_base_offset={self.last_base_offset}>"
        )


class PartitionLog:
    """An append-only log for one replica of one partition."""

    def __init__(
        self,
        topic: str,
        partition: int = 0,
        storage: Optional[LogStorageConfig] = None,
        file_tag: str = "",
    ) -> None:
        self.topic = topic
        self.partition = partition
        if storage is None:
            # Session backend default: ``--log-backend=segments`` makes every
            # log without explicit storage run segmented (None under the
            # default memory backend — the flat pre-segmentation layout).
            storage = session_default_storage()
        #: Storage shape (None = flat single-array log, today's default).
        self.storage = storage
        #: Distinguishes replicas of the same partition in a shared cold-tier
        #: directory (the broker passes its own name).
        self._file_tag = file_tag
        #: Head roll threshold; 0 = never roll (flat log).
        self._seg_limit = (storage.segment_records or 0) if storage else 0
        #: Immutable sealed segments, oldest first, plus their base offsets
        #: for bisect (``_sealed_bases[i] == _sealed[i].base_offset``).
        self._sealed: List[SealedSegment] = []
        self._sealed_bases: List[int] = []
        #: Bytes of sealed segments currently resident in memory.
        self._sealed_hot_bytes = 0
        #: First offset still present anywhere in the log; advanced only by
        #: whole-segment retention deletes (compaction keeps boundaries).
        self._log_start = 0
        #: Sealed-segment churn since the last compaction pass.
        self._dirty_sealed = 0
        #: Storage-plane counters (brokers fold these into their metrics).
        self.stats: Dict[str, int] = {
            "segments_sealed": 0,
            "segments_evicted": 0,
            "retention_records_dropped": 0,
            "compaction_records_removed": 0,
            "cold_loads": 0,
        }
        # Columnar head storage; index i holds record (base_offset + i).
        self._keys: List[Any] = []
        self._values: List[Any] = []
        self._sizes: List[int] = []
        self._timestamps: List[float] = []
        self._produced_ats: List[float] = []
        self._epochs: List[int] = []
        self._headers: List[Optional[Dict[str, Any]]] = []
        #: True once any record landed here with headers — lets the fetch
        #: hot path (``read_batch``) skip slicing and scanning the headers
        #: column entirely in the overwhelmingly common header-free case.
        self._has_headers = False
        #: Per-record producer identity columns (-1 = no producer id).  Kept
        #: in the log — not in leader-only session state — so a follower's
        #: replica fetches rebuild the same dedup table and guarantees
        #: survive leader elections.  Materialized lazily: they stay empty
        #: (and cost the hot append path nothing) until the first idempotent
        #: append backfills them — ``_has_producers`` gates every reader.
        self._producer_ids: List[int] = []
        self._producer_epochs: List[int] = []
        self._sequences: List[int] = []
        self._base_offset = 0
        self._size_bytes = 0
        self.high_watermark = 0
        #: (epoch, start_offset) pairs, newest last — Kafka's leader epoch cache.
        self.epoch_boundaries: List[Tuple[int, int]] = []
        self.truncated_records = 0
        #: producer_id -> :class:`ProducerEntry`, maintained incrementally on
        #: every append (and rebuilt from the columns after truncation).
        self.producer_state: Dict[int, ProducerEntry] = {}
        #: True once any record with a producer id landed here (lets the
        #: non-idempotent read path skip slicing the producer columns).
        self._has_producers = False
        #: Per-record transaction columns, lazily materialized exactly like
        #: the producer columns: ``_transactionals[i]`` is True for records of
        #: an (eventually committed or aborted) transaction, ``_controls[i]``
        #: holds a ``(marker, producer_id, producer_epoch)`` tuple for
        #: COMMIT/ABORT control records (``None`` for data).  Kept in the log
        #: so replica fetches rebuild the same LSO/abort state on followers.
        self._transactionals: List[bool] = []
        self._controls: List[Optional[Tuple[str, int, int]]] = []
        self._has_txn = False
        #: producer_id -> first offset of its currently *open* transaction in
        #: this partition (removed when the end marker lands).  The Last
        #: Stable Offset is the earliest of these (capped by the HW).
        self._open_txn_first: Dict[int, int] = {}
        #: Aborted-transaction index: ``(first_offset, marker_offset,
        #: producer_id)`` per aborted transaction — what lets committed reads
        #: filter aborted records out without scanning the whole log.
        self.aborted_ranges: List[Tuple[int, int, int]] = []
        #: producer_id -> (epoch, marker, offset) of its latest control
        #: record; lets a leader acknowledge a retried marker write without
        #: appending it twice.
        self.last_markers: Dict[int, Tuple[int, str, int]] = {}

    # -- basic accessors ------------------------------------------------------------
    @property
    def log_end_offset(self) -> int:
        """The offset that the *next* appended record will receive."""
        return self._base_offset + len(self._values)

    @property
    def log_start_offset(self) -> int:
        """First offset still held (> 0 once retention dropped segments)."""
        return self._log_start

    def __len__(self) -> int:
        count = len(self._values)
        for segment in self._sealed:
            count += segment.count
        return count

    @property
    def size_bytes(self) -> int:
        """Bytes resident in memory (head + non-evicted sealed segments).

        This is what the emulated broker's memory accounting charges; evicted
        cold-tier segments cost disk, not RAM.  Equals :attr:`total_size_bytes`
        until something is evicted.
        """
        return self._size_bytes + self._sealed_hot_bytes

    @property
    def total_size_bytes(self) -> int:
        """Bytes across all tiers, including evicted cold segments."""
        total = self._size_bytes
        for segment in self._sealed:
            total += segment.size_bytes
        return total

    @property
    def segment_count(self) -> int:
        """Sealed segments plus the head."""
        return len(self._sealed) + 1

    @property
    def sealed_segments(self) -> List[SealedSegment]:
        return list(self._sealed)

    # -- transaction state ------------------------------------------------------------
    @property
    def has_transactions(self) -> bool:
        """True once any transactional record or control marker landed here."""
        return self._has_txn

    @property
    def last_stable_offset(self) -> int:
        """First offset of the earliest open transaction, capped at the HW.

        With no open transaction this equals the high watermark — so the
        non-transactional read path is unchanged.  ``read_committed``
        consumers never fetch at or past this offset.
        """
        if not self._open_txn_first:
            return self.high_watermark
        return min(self.high_watermark, min(self._open_txn_first.values()))

    def open_txn_first_offset(self, producer_id: int) -> Optional[int]:
        return self._open_txn_first.get(producer_id)

    def _ensure_txn_columns(self, backfill: int) -> None:
        """First transactional append: backfill the transaction columns for
        the ``backfill`` records already in the head."""
        if self._has_txn:
            return
        self._transactionals = [False] * backfill
        self._controls = [None] * backfill
        self._has_txn = True

    def _note_control(
        self, offset: int, marker: str, producer_id: int, producer_epoch: int
    ) -> None:
        """Fold one control record into LSO / abort-index / fencing state."""
        first = self._open_txn_first.pop(producer_id, None)
        if marker == "abort" and first is not None:
            self.aborted_ranges.append((first, offset, producer_id))
        self.last_markers[producer_id] = (producer_epoch, marker, offset)
        # A marker carries the coordinator's word on the producer's current
        # epoch: bump the dedup entry so a zombie's stale-epoch data batches
        # are fenced at this partition even before the successor produces.
        entry = self.producer_state.get(producer_id)
        if entry is None:
            self.producer_state[producer_id] = ProducerEntry(producer_epoch, -1)
        elif producer_epoch > entry.epoch:
            entry.epoch = producer_epoch
            entry.last_sequence = -1

    def _rebuild_txn_state(self) -> None:
        """Recompute open-transaction/abort state from the columns
        (post-truncation path, mirroring ``_rebuild_producer_state``)."""
        self._open_txn_first = {}
        self.aborted_ranges = []
        self.last_markers = {}
        for offset, transactional, control, producer_id in self._iter_txn_rows():
            if control is not None:
                marker, ctrl_producer, ctrl_epoch = control
                first = self._open_txn_first.pop(ctrl_producer, None)
                if marker == "abort" and first is not None:
                    self.aborted_ranges.append((first, offset, ctrl_producer))
                self.last_markers[ctrl_producer] = (ctrl_epoch, marker, offset)
            elif transactional and producer_id >= 0:
                if producer_id not in self._open_txn_first:
                    self._open_txn_first[producer_id] = offset

    def _iter_txn_rows(self) -> Iterator[Tuple[int, bool, Any, int]]:
        """Yield ``(offset, transactional, control, producer_id)`` across all
        tiers in offset order (loads evicted segments; cold path)."""
        for segment in self._sealed:
            self._ensure_loaded(segment)
            transactionals = segment.transactionals
            controls = segment.controls
            producer_ids = segment.producer_ids
            for index in range(segment.count):
                yield (
                    segment.offset_at(index),
                    transactionals[index] if transactionals is not None else False,
                    controls[index] if controls is not None else None,
                    producer_ids[index] if producer_ids is not None else -1,
                )
        base = self._base_offset
        has_txn = self._has_txn
        has_producers = self._has_producers
        for index in range(len(self._values)):
            yield (
                base + index,
                self._transactionals[index] if has_txn else False,
                self._controls[index] if has_txn else None,
                self._producer_ids[index] if has_producers else -1,
            )

    def invisible_offsets(
        self, from_offset: int, up_to: int, isolation: str
    ) -> Tuple[List[int], int]:
        """Offsets in ``[from_offset, up_to)`` a consumer must not observe.

        Control records are invisible to *every* consumer (Kafka never
        delivers them to clients); records of aborted transactions are
        additionally invisible under ``read_committed``.  Returns the sorted
        offset list plus their total payload bytes, so fetch accounting can
        exclude them in O(len(skipped)).
        """
        if not self._has_txn:
            return [], 0
        if from_offset < self._base_offset and self._sealed:
            return self._invisible_offsets_sealed(from_offset, up_to, isolation)
        base = self._base_offset
        skipped: List[int] = []
        start = max(from_offset, base)
        end = min(up_to, self.log_end_offset)
        for offset in range(start, end):
            if self._controls[offset - base] is not None:
                skipped.append(offset)
        if isolation == "read_committed" and self.aborted_ranges:
            producer_ids = self._producer_ids if self._has_producers else None
            for first, marker_offset, producer_id in self.aborted_ranges:
                lo = max(first, start)
                hi = min(marker_offset, end)
                for offset in range(lo, hi):
                    index = offset - base
                    if (
                        self._transactionals[index]
                        and producer_ids is not None
                        and producer_ids[index] == producer_id
                    ):
                        skipped.append(offset)
        if not skipped:
            return [], 0
        skipped = sorted(set(skipped))
        bytes_skipped = sum(self._sizes[offset - base] for offset in skipped)
        return skipped, bytes_skipped

    def _invisible_offsets_sealed(
        self, from_offset: int, up_to: int, isolation: str
    ) -> Tuple[List[int], int]:
        """Segment-aware invisibility scan (fetches served below the head).

        Row-wise rather than range-arithmetic: compacted segments hold gapped
        offsets, so every row in range is checked against the control column
        and (under ``read_committed``) the aborted-transaction index.
        """
        committed = isolation == "read_committed"
        aborted_by_producer: Dict[int, List[Tuple[int, int]]] = {}
        if committed:
            for first, marker_offset, producer_id in self.aborted_ranges:
                aborted_by_producer.setdefault(producer_id, []).append(
                    (first, marker_offset)
                )
        skipped: List[int] = []
        bytes_skipped = 0
        end = min(up_to, self.log_end_offset)
        for segment in self._sealed:
            if segment.next_offset <= from_offset:
                continue
            if segment.base_offset >= end:
                break
            start_index, end_index = segment.index_range(from_offset, end)
            if start_index >= end_index:
                continue
            self._ensure_loaded(segment)
            controls = segment.controls
            transactionals = segment.transactionals
            producer_ids = segment.producer_ids
            sizes = segment.sizes
            for index in range(start_index, end_index):
                if controls is not None and controls[index] is not None:
                    skipped.append(segment.offset_at(index))
                    bytes_skipped += sizes[index]
                    continue
                if (
                    committed
                    and transactionals is not None
                    and transactionals[index]
                    and producer_ids is not None
                ):
                    producer_id = producer_ids[index]
                    offset = segment.offset_at(index)
                    for first, marker_offset in aborted_by_producer.get(
                        producer_id, ()
                    ):
                        if first <= offset < marker_offset:
                            skipped.append(offset)
                            bytes_skipped += sizes[index]
                            break
        if from_offset < self.log_end_offset and end > self._base_offset:
            head_skipped, head_bytes = self.invisible_offsets(
                max(from_offset, self._base_offset), up_to, isolation
            )
            skipped.extend(head_skipped)
            bytes_skipped += head_bytes
        return skipped, bytes_skipped

    # -- producer dedup table ---------------------------------------------------------
    def check_producer_batch(
        self,
        producer_id: int,
        producer_epoch: int,
        base_sequence: int,
        count: int = 1,
    ) -> str:
        """Dedup/fencing verdict for an incoming produce batch (pure decision).

        * ``"fenced"`` — the batch carries an epoch older than the producer's
          current one: a zombie instance superseded by a re-initialization.
        * ``"duplicate"`` — same epoch, every sequence of the batch at or
          below the last appended one: a retry of a batch this replica fully
          holds (batches are immutable across retries, so full overlap means
          identity).
        * ``"partial"`` — same epoch, the batch *starts* at or below the last
          appended sequence but runs past it.  Happens only when this replica
          holds a prefix of the batch (a replica fetch sliced mid-batch just
          before a failover): the prefix is a duplicate but the tail was
          never appended anywhere — the caller must append the tail, never
          ack the whole batch as a duplicate.
        * ``"ok"`` — everything else: the next batch, a gap left by an
          expired batch (sequences are consumed at drain time, so a
          delivery-timeout failure legitimately skips numbers), or a fresh
          epoch (which resets the sequence space).
        """
        entry = self.producer_state.get(producer_id)
        if entry is None:
            return "ok"
        if producer_epoch < entry.epoch:
            return "fenced"
        if producer_epoch == entry.epoch and base_sequence <= entry.last_sequence:
            if base_sequence + count - 1 <= entry.last_sequence:
                return "duplicate"
            return "partial"
        return "ok"

    def producer_entry(self, producer_id: int) -> Optional[ProducerEntry]:
        return self.producer_state.get(producer_id)

    def _ensure_producer_columns(self, backfill: int) -> None:
        """First idempotent append: backfill the identity columns with -1 for
        the ``backfill`` records already in the head, then keep them in
        lockstep with every later append."""
        if self._has_producers:
            return
        self._producer_ids = [-1] * backfill
        self._producer_epochs = [-1] * backfill
        self._sequences = [-1] * backfill
        self._has_producers = True

    def _note_producer_batch(
        self, producer_id: int, producer_epoch: int, base_sequence: int,
        count: int, base_offset: int,
    ) -> None:
        entry = self.producer_state.get(producer_id)
        last_sequence = base_sequence + count - 1
        if entry is None:
            self.producer_state[producer_id] = ProducerEntry(
                producer_epoch, last_sequence, base_offset, count
            )
            return
        entry.epoch = producer_epoch
        entry.last_sequence = last_sequence
        entry.last_base_offset = base_offset
        entry.last_count = count

    def _rebuild_producer_state(self) -> None:
        """Recompute the dedup table from the columns (post-truncation path).

        Appends are per-producer in-order, so the last occurrence of each
        producer id in the remaining columns is its current state; batch
        base offsets/counts are not recoverable per batch and collapse to
        the record itself (good enough for duplicate *detection*; the cached
        ack offsets only matter on the live leader, whose state was never
        rebuilt this way mid-flight).
        """
        state: Dict[int, ProducerEntry] = {}
        for offset, producer_id, producer_epoch, sequence in self._iter_producer_rows():
            if producer_id < 0:
                continue
            entry = state.get(producer_id)
            if entry is None:
                state[producer_id] = ProducerEntry(
                    producer_epoch, sequence, offset, 1
                )
            else:
                entry.epoch = producer_epoch
                entry.last_sequence = sequence
                entry.last_base_offset = offset
                entry.last_count = 1
        self.producer_state = state

    def _iter_producer_rows(self) -> Iterator[Tuple[int, int, int, int]]:
        """Yield ``(offset, producer_id, producer_epoch, sequence)`` across
        all tiers in offset order (cold path; loads evicted segments)."""
        for segment in self._sealed:
            self._ensure_loaded(segment)
            producer_ids = segment.producer_ids
            if producer_ids is None:
                continue
            producer_epochs = segment.producer_epochs
            sequences = segment.sequences
            for index, producer_id in enumerate(producer_ids):
                if producer_id >= 0:
                    yield (
                        segment.offset_at(index),
                        producer_id,
                        producer_epochs[index],
                        sequences[index],
                    )
        if self._has_producers:
            base = self._base_offset
            producer_epochs = self._producer_epochs
            sequences = self._sequences
            for index, producer_id in enumerate(self._producer_ids):
                if producer_id >= 0:
                    yield (
                        base + index,
                        producer_id,
                        producer_epochs[index],
                        sequences[index],
                    )

    # -- writes -----------------------------------------------------------------------
    def _note_epoch(self, leader_epoch: int, start_offset: int) -> None:
        if self.epoch_boundaries and leader_epoch < self.epoch_boundaries[-1][0]:
            raise ValueError(
                f"appending with stale epoch {leader_epoch} < "
                f"{self.epoch_boundaries[-1][0]}"
            )
        if not self.epoch_boundaries or self.epoch_boundaries[-1][0] != leader_epoch:
            self.epoch_boundaries.append((leader_epoch, start_offset))

    def append(
        self,
        key: Any,
        value: Any,
        size: int,
        timestamp: float,
        produced_at: float,
        leader_epoch: int,
        headers: Optional[Dict[str, Any]] = None,
    ) -> LogRecord:
        """Append one record and return its view (offset assigned here)."""
        offset = self.log_end_offset
        self._note_epoch(leader_epoch, offset)
        self._keys.append(key)
        self._values.append(value)
        self._sizes.append(size)
        self._timestamps.append(timestamp)
        self._produced_ats.append(produced_at)
        self._epochs.append(leader_epoch)
        self._headers.append(dict(headers) if headers else None)
        if headers:
            self._has_headers = True
        if self._has_producers:
            self._producer_ids.append(-1)
            self._producer_epochs.append(-1)
            self._sequences.append(-1)
        if self._has_txn:
            self._transactionals.append(False)
            self._controls.append(None)
        self._size_bytes += size
        record = self._record_view(offset - self._base_offset)
        if self._seg_limit and len(self._values) >= self._seg_limit:
            self._seal_head()
        return record

    def append_batch(
        self, batch: RecordBatch, timestamp: float, leader_epoch: int
    ) -> int:
        """Append a whole produce batch under one epoch; returns its base offset.

        This is the leader-side hot path: one epoch check, C-level column
        extends, and the size accounted once from the batch header.  Produce
        batches are never split across segments: the head rolls *after* the
        whole batch landed (so a segment may exceed ``segment_records`` by
        one batch).
        """
        base_offset = self.log_end_offset
        count = len(batch)
        if count == 0:
            return base_offset
        self._note_epoch(leader_epoch, base_offset)
        self._keys.extend(batch.keys)
        self._values.extend(batch.values)
        self._sizes.extend(batch.sizes)
        self._timestamps.extend([timestamp] * count)
        self._produced_ats.extend(batch.produced_ats)
        self._epochs.extend([leader_epoch] * count)
        if batch.headers is not None:
            self._headers.extend(batch.headers)
            self._has_headers = True
        else:
            self._headers.extend([None] * count)
        producer_id = batch.producer_id
        if producer_id >= 0:
            # The payload columns were already extended: backfill everything
            # before this batch, then add the batch's identity.
            self._ensure_producer_columns(len(self._values) - count)
            base_sequence = batch.base_sequence
            self._producer_ids.extend([producer_id] * count)
            self._producer_epochs.extend([batch.producer_epoch] * count)
            self._sequences.extend(range(base_sequence, base_sequence + count))
            self._note_producer_batch(
                producer_id, batch.producer_epoch, base_sequence, count, base_offset
            )
        elif self._has_producers:
            self._producer_ids.extend([-1] * count)
            self._producer_epochs.extend([-1] * count)
            self._sequences.extend([-1] * count)
        if batch.transactional and producer_id >= 0:
            self._ensure_txn_columns(len(self._values) - count)
            self._transactionals.extend([True] * count)
            self._controls.extend([None] * count)
            if producer_id not in self._open_txn_first:
                self._open_txn_first[producer_id] = base_offset
        elif self._has_txn:
            self._transactionals.extend([False] * count)
            self._controls.extend([None] * count)
        self._size_bytes += batch.total_size
        if self._seg_limit and len(self._values) >= self._seg_limit:
            self._seal_head()
        return base_offset

    def append_control(
        self,
        producer_id: int,
        producer_epoch: int,
        marker: str,
        timestamp: float,
        leader_epoch: int,
    ) -> int:
        """Append one COMMIT/ABORT control record; returns its offset.

        Control records live in the log like data records (so they replicate
        and survive elections) but are invisible to consumers.  Landing one
        closes the producer's open transaction here: the LSO advances, and an
        abort marker files the transaction's range in the abort index.  The
        producer-identity columns stay -1 — the marker's identity lives in
        the control tuple, keeping it out of the sequence-dedup fold that
        followers run over replicated producer columns.
        """
        offset = self.log_end_offset
        self._note_epoch(leader_epoch, offset)
        self._keys.append(None)
        self._values.append(marker)
        self._sizes.append(CONTROL_RECORD_SIZE)
        self._timestamps.append(timestamp)
        self._produced_ats.append(timestamp)
        self._epochs.append(leader_epoch)
        self._headers.append(None)
        if self._has_producers:
            self._producer_ids.append(-1)
            self._producer_epochs.append(-1)
            self._sequences.append(-1)
        self._ensure_txn_columns(len(self._values) - 1)
        self._transactionals.append(False)
        self._controls.append((marker, producer_id, producer_epoch))
        self._size_bytes += CONTROL_RECORD_SIZE
        self._note_control(offset, marker, producer_id, producer_epoch)
        if self._seg_limit and len(self._values) >= self._seg_limit:
            self._seal_head()
        return offset

    def append_wire_batch(self, batch: RecordBatch) -> int:
        """Append a batch fetched from a leader (replication path).

        The batch may overlap records we already hold (the follower refetches
        from its LEO after a timeout); the already-present prefix is skipped.
        A *gapped* batch — compacted ranges ship per-record ``offsets``, and
        a retention-advanced leader may answer above the follower's LEO — is
        only legal on a segmented log: the head is force-sealed and restarts
        at the batch's base, so the follower holds the same records at the
        same offsets with a segment boundary where the leader had the gap.
        Returns the number of records actually appended.
        """
        leo = self.log_end_offset
        if batch.offsets is not None:
            return self._append_wire_gapped(batch)
        if batch.base_offset > leo:
            if self.storage is None:
                raise ValueError(
                    f"non-contiguous append: expected offset {leo}, "
                    f"got {batch.base_offset}"
                )
            self._begin_head_at(batch.base_offset)
        elif batch.base_offset < leo:
            batch = batch.tail(leo - batch.base_offset)
        count = len(batch)
        if count == 0:
            return 0
        epochs = batch.leader_epochs
        if epochs is None:
            self._note_epoch(batch.leader_epoch, batch.base_offset)
            self._epochs.extend([batch.leader_epoch] * count)
        else:
            last = self.epoch_boundaries[-1][0] if self.epoch_boundaries else None
            for index, epoch in enumerate(epochs):
                if epoch != last:
                    self._note_epoch(epoch, batch.base_offset + index)
                    last = epoch
            self._epochs.extend(epochs)
        self._keys.extend(batch.keys)
        self._values.extend(batch.values)
        self._sizes.extend(batch.sizes)
        self._produced_ats.extend(batch.produced_ats)
        if batch.timestamps is not None:
            self._timestamps.extend(batch.timestamps)
        else:
            self._timestamps.extend(batch.produced_ats)
        if batch.headers is not None:
            self._headers.extend(batch.headers)
            self._has_headers = True
        else:
            self._headers.extend([None] * count)
        if batch.producer_ids is not None:
            # Replicated producer identities: extend the columns and fold
            # them into the follower's dedup table, so the table survives a
            # promotion of this replica to leader.
            self._ensure_producer_columns(len(self._values) - count)
            producer_ids = batch.producer_ids
            producer_epochs = batch.producer_epochs
            sequences = batch.sequences
            self._producer_ids.extend(producer_ids)
            self._producer_epochs.extend(producer_epochs)
            self._sequences.extend(sequences)
            base_offset = batch.base_offset
            # Fold contiguous same-producer runs as single batches, so a
            # promoted follower's ProducerEntry carries a real batch extent
            # (last_base_offset/last_count) — what lets it echo original
            # offsets and bound the acks=all wait on a duplicate retry.
            index = 0
            total = len(producer_ids)
            while index < total:
                producer_id = producer_ids[index]
                if producer_id < 0:
                    index += 1
                    continue
                start = index
                epoch = producer_epochs[index]
                while (
                    index + 1 < total
                    and producer_ids[index + 1] == producer_id
                    and producer_epochs[index + 1] == epoch
                    and sequences[index + 1] == sequences[index] + 1
                ):
                    index += 1
                self._note_producer_batch(
                    producer_id,
                    epoch,
                    sequences[start],
                    index - start + 1,
                    base_offset + start,
                )
                index += 1
        elif self._has_producers:
            self._producer_ids.extend([-1] * count)
            self._producer_epochs.extend([-1] * count)
            self._sequences.extend([-1] * count)
        if batch.transactionals is not None or batch.controls is not None:
            # Replicated transaction columns: extend them and replay markers /
            # transaction opens in offset order, so a promoted follower holds
            # the same LSO, abort index and fencing state as the old leader.
            self._ensure_txn_columns(len(self._values) - count)
            transactionals = batch.transactionals or [False] * count
            controls = batch.controls or [None] * count
            self._transactionals.extend(transactionals)
            self._controls.extend(controls)
            base_offset = batch.base_offset
            producer_ids = batch.producer_ids
            for index in range(count):
                control = controls[index]
                if control is not None:
                    marker, producer_id, producer_epoch = control
                    self._note_control(
                        base_offset + index, marker, producer_id, producer_epoch
                    )
                elif transactionals[index] and producer_ids is not None:
                    producer_id = producer_ids[index]
                    if producer_id >= 0 and producer_id not in self._open_txn_first:
                        self._open_txn_first[producer_id] = base_offset + index
        elif self._has_txn:
            self._transactionals.extend([False] * count)
            self._controls.extend([None] * count)
        self._size_bytes += batch.total_size
        if self._seg_limit and len(self._values) >= self._seg_limit:
            self._seal_head()
        return count

    def _append_wire_gapped(self, batch: RecordBatch) -> int:
        """Replicate a gapped (compacted-range) batch: split it into its
        contiguous runs and append each, force-sealing across the gaps."""
        if self.storage is None:
            raise ValueError(
                "gapped wire batch on a non-segmented log: expected offset "
                f"{self.log_end_offset}, got offsets {batch.offsets!r}"
            )
        offsets = batch.offsets
        total = len(offsets)
        appended = 0
        start = 0
        while start < total:
            end = start + 1
            while end < total and offsets[end] == offsets[end - 1] + 1:
                end += 1
            run = batch.run(start, end)
            if run.next_offset > self.log_end_offset:
                appended += self.append_wire_batch(run)
            start = end
        return appended

    def append_record(self, record: LogRecord) -> None:
        """Append a single record view (compat shim for tests/tools)."""
        if record.offset != self.log_end_offset:
            raise ValueError(
                f"non-contiguous append: expected offset {self.log_end_offset}, "
                f"got {record.offset}"
            )
        if not self.epoch_boundaries or self.epoch_boundaries[-1][0] != record.leader_epoch:
            self.epoch_boundaries.append((record.leader_epoch, record.offset))
        self._keys.append(record.key)
        self._values.append(record.value)
        self._sizes.append(record.size)
        self._timestamps.append(record.timestamp)
        self._produced_ats.append(record.produced_at)
        self._epochs.append(record.leader_epoch)
        self._headers.append(dict(record.headers) if record.headers else None)
        if record.headers:
            self._has_headers = True
        if record.producer_id >= 0:
            self._ensure_producer_columns(len(self._values) - 1)
            self._note_producer_batch(
                record.producer_id,
                record.producer_epoch,
                record.sequence,
                1,
                record.offset,
            )
        if self._has_producers:
            self._producer_ids.append(record.producer_id)
            self._producer_epochs.append(record.producer_epoch)
            self._sequences.append(record.sequence)
        if self._has_txn:
            self._transactionals.append(False)
            self._controls.append(None)
        self._size_bytes += record.size
        if self._seg_limit and len(self._values) >= self._seg_limit:
            self._seal_head()

    # -- segment lifecycle -------------------------------------------------------------
    def _seal_head(self) -> None:
        """Move the head columns into a sealed segment (zero copy) and start
        a fresh head at the next offset.  O(1) in the record count."""
        count = len(self._values)
        if count == 0:
            return
        segment = SealedSegment(self._base_offset, self._base_offset + count)
        segment.count = count
        segment.size_bytes = self._size_bytes
        segment.max_timestamp = max(self._timestamps[0], self._timestamps[-1])
        segment.keys = self._keys
        segment.values = self._values
        segment.sizes = self._sizes
        segment.timestamps = self._timestamps
        segment.produced_ats = self._produced_ats
        segment.epochs = self._epochs
        segment.headers = self._headers if self._has_headers else None
        if self._has_producers:
            segment.producer_ids = self._producer_ids
            segment.producer_epochs = self._producer_epochs
            segment.sequences = self._sequences
        if self._has_txn:
            segment.transactionals = self._transactionals
            segment.controls = self._controls
        self._sealed.append(segment)
        self._sealed_bases.append(segment.base_offset)
        self._sealed_hot_bytes += segment.size_bytes
        self._base_offset = segment.next_offset
        self._size_bytes = 0
        self._keys = []
        self._values = []
        self._sizes = []
        self._timestamps = []
        self._produced_ats = []
        self._epochs = []
        self._headers = []
        # The lazily-materialized columns restart empty but keep their flags:
        # once a log saw producers/transactions, every tier carries the
        # columns consistently.
        self._producer_ids = []
        self._producer_epochs = []
        self._sequences = []
        self._transactionals = []
        self._controls = []
        self._dirty_sealed += 1
        self.stats["segments_sealed"] += 1
        storage = self.storage
        if storage is not None and storage.segment_dir is not None:
            segment.write_file(self._segment_path(segment.base_offset))

    def _begin_head_at(self, offset: int) -> None:
        """Seal whatever the head holds and restart it at ``offset`` (replica
        adopting a leader's retention/compaction gap)."""
        self._seal_head()
        if not self._sealed:
            self._log_start = max(self._log_start, offset)
        self._base_offset = offset

    def _segment_path(self, base_offset: int) -> str:
        stem = f"{self._file_tag}-{self.topic}-{self.partition}" if self._file_tag \
            else f"{self.topic}-{self.partition}"
        return f"{self.storage.segment_dir}/{segment_file_name(stem, base_offset)}"

    def _ensure_loaded(self, segment: SealedSegment) -> None:
        """Fault an evicted segment's columns back in from the cold tier."""
        if not segment.evicted:
            return
        segment.load()
        self._sealed_hot_bytes += segment.size_bytes
        self.stats["cold_loads"] += 1
        retention_bytes = self.storage.retention_bytes
        if retention_bytes is not None and self.size_bytes > retention_bytes:
            # A consumer scanning cold history must not re-inflate the hot
            # tier between maintenance passes: push other resident segments
            # back out so (at worst) only the faulted segment stays hot.
            for other in self._sealed:
                if self.size_bytes <= retention_bytes:
                    break
                if other is segment or other.evicted:
                    continue
                other.evict()
                self._sealed_hot_bytes -= other.size_bytes
                self.stats["segments_evicted"] += 1

    def _segment_for(self, offset: int) -> Optional[SealedSegment]:
        """The sealed segment whose ``[base, next)`` range covers ``offset``."""
        index = bisect_right(self._sealed_bases, offset) - 1
        if index < 0:
            return None
        segment = self._sealed[index]
        if offset < segment.next_offset:
            return segment
        return None

    # -- maintenance: retention / compaction / eviction ---------------------------------
    def maybe_maintain(self, now: float) -> None:
        """One storage-maintenance pass (brokers call this after appends).

        Order matters: compaction first (it shrinks segments, so retention
        sees real sizes), then time retention (deletes), then the size bound
        (deletes without a cold tier, evicts with one).
        """
        storage = self.storage
        if storage is None:
            return
        if (
            storage.cleanup_policy == "compact"
            and self._dirty_sealed >= storage.compaction_min_segments
        ):
            self.compact()
        retention_seconds = storage.retention_seconds
        if retention_seconds is not None:
            self._apply_time_retention(now - retention_seconds)
        if storage.retention_bytes is not None:
            if storage.segment_dir is not None:
                self._apply_eviction(storage.retention_bytes)
            else:
                self._apply_size_retention(storage.retention_bytes)

    def _drop_segment(self, index: int) -> None:
        segment = self._sealed.pop(index)
        self._sealed_bases.pop(index)
        if not segment.evicted:
            self._sealed_hot_bytes -= segment.size_bytes
        self.stats["retention_records_dropped"] += segment.count
        segment.delete_file()
        self._log_start = (
            self._sealed[0].base_offset if self._sealed else self._base_offset
        )
        self._dirty_sealed = min(self._dirty_sealed, len(self._sealed))

    def _apply_time_retention(self, cutoff: float) -> None:
        """Delete whole sealed segments whose newest append is older than the
        cutoff (cold-tier files included); the head is never deleted."""
        while self._sealed and self._sealed[0].max_timestamp < cutoff:
            self._drop_segment(0)

    def _apply_size_retention(self, retention_bytes: int) -> None:
        """Delete oldest sealed segments while the log exceeds the bound."""
        while self._sealed and self.total_size_bytes > retention_bytes:
            self._drop_segment(0)

    def _apply_eviction(self, retention_bytes: int) -> None:
        """Cold tier: evict oldest sealed segments (columns only — the data
        stays readable via fault-in) until hot memory fits the bound."""
        for segment in self._sealed:
            if self.size_bytes <= retention_bytes:
                break
            if segment.evicted:
                continue
            segment.evict()
            self._sealed_hot_bytes -= segment.size_bytes
            self.stats["segments_evicted"] += 1

    def compact(self) -> int:
        """Key-compact the sealed segments; returns records removed.

        Deterministic single pass over the sealed tier (the head is never
        compacted): for every key, only its *latest* data record below the
        uncleanable bound survives.  Also retained, so log semantics are
        preserved across the rewrite:

        * control records (COMMIT/ABORT markers) — the LSO/abort replay on
          followers and recovery needs them;
        * each producer's latest-sequence record — the dedup table rebuilt
          from the columns must not regress (aborted records count here too,
          exactly as their sequences counted when first appended);
        * every record at or past the uncleanable bound (the earliest still
          open transaction — Kafka's cleaner also stops at the LSO).

        Retained rows keep their original offsets via the per-segment offset
        index; segment boundaries never move, so ``log_start_offset`` is
        unaffected and followers see stable epochs.  Rows of *aborted*
        transactions lose latest-per-key eligibility entirely (a committed
        read must never resurrect them) and survive only as producer-state
        carriers, still masked by ``aborted_ranges``.
        """
        if not self._sealed:
            self._dirty_sealed = 0
            return 0
        for segment in self._sealed:
            self._ensure_loaded(segment)
        uncleanable = (
            min(self._open_txn_first.values()) if self._open_txn_first else None
        )
        aborted_by_producer: Dict[int, List[Tuple[int, int]]] = {}
        for first, marker_offset, producer_id in self.aborted_ranges:
            aborted_by_producer.setdefault(producer_id, []).append(
                (first, marker_offset)
            )

        def is_aborted(producer_id: int, offset: int) -> bool:
            for first, marker_offset in aborted_by_producer.get(producer_id, ()):
                if first <= offset < marker_offset:
                    return True
            return False

        latest_by_key: Dict[Any, int] = {}
        latest_by_producer: Dict[int, int] = {}
        for segment in self._sealed:
            controls = segment.controls
            producer_ids = segment.producer_ids
            keys = segment.keys
            for index in range(segment.count):
                offset = segment.offset_at(index)
                if uncleanable is not None and offset >= uncleanable:
                    break
                if controls is not None and controls[index] is not None:
                    continue
                producer_id = producer_ids[index] if producer_ids is not None else -1
                if producer_id >= 0:
                    latest_by_producer[producer_id] = offset
                    if is_aborted(producer_id, offset):
                        continue
                latest_by_key[keys[index]] = offset
        removed = 0
        drop_indices: List[int] = []
        for position, segment in enumerate(self._sealed):
            controls = segment.controls
            producer_ids = segment.producer_ids
            keys = segment.keys
            keep: List[int] = []
            for index in range(segment.count):
                offset = segment.offset_at(index)
                if uncleanable is not None and offset >= uncleanable:
                    keep.append(index)
                    continue
                if controls is not None and controls[index] is not None:
                    keep.append(index)
                    continue
                producer_id = producer_ids[index] if producer_ids is not None else -1
                if producer_id >= 0 and latest_by_producer.get(producer_id) == offset:
                    keep.append(index)
                    continue
                if (
                    latest_by_key.get(keys[index]) == offset
                    and not (producer_id >= 0 and is_aborted(producer_id, offset))
                ):
                    keep.append(index)
            if len(keep) == segment.count:
                continue
            removed += segment.count - len(keep)
            self._rewrite_segment(segment, keep)
            if segment.count == 0:
                drop_indices.append(position)
        for position in reversed(drop_indices):
            segment = self._sealed.pop(position)
            self._sealed_bases.pop(position)
            segment.delete_file()
            # An emptied segment's boundary range is simply absorbed by its
            # neighbours; the log start never advances on compaction.
        self.stats["compaction_records_removed"] += removed
        self._dirty_sealed = 0
        return removed

    def _rewrite_segment(self, segment: SealedSegment, keep: List[int]) -> None:
        """Rewrite one sealed segment in place to the ``keep`` row subset,
        materializing its offset index (rows keep original offsets)."""
        old_bytes = segment.size_bytes
        segment.offsets = [segment.offset_at(index) for index in keep]
        segment.keys = [segment.keys[index] for index in keep]
        segment.values = [segment.values[index] for index in keep]
        segment.sizes = [segment.sizes[index] for index in keep]
        segment.timestamps = [segment.timestamps[index] for index in keep]
        segment.produced_ats = [segment.produced_ats[index] for index in keep]
        segment.epochs = [segment.epochs[index] for index in keep]
        if segment.headers is not None:
            segment.headers = [segment.headers[index] for index in keep]
        if segment.producer_ids is not None:
            segment.producer_ids = [segment.producer_ids[index] for index in keep]
            segment.producer_epochs = [
                segment.producer_epochs[index] for index in keep
            ]
            segment.sequences = [segment.sequences[index] for index in keep]
        if segment.transactionals is not None:
            segment.transactionals = [
                segment.transactionals[index] for index in keep
            ]
        if segment.controls is not None:
            segment.controls = [segment.controls[index] for index in keep]
        segment.count = len(keep)
        segment.size_bytes = sum(segment.sizes)
        self._sealed_hot_bytes += segment.size_bytes - old_bytes
        if segment.file_path is not None and segment.count > 0:
            segment.write_file(segment.file_path)

    # -- recovery -----------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        topic: str,
        partition: int,
        storage: LogStorageConfig,
        file_tag: str = "",
    ) -> "PartitionLog":
        """Bootstrap a replica by replaying its cold-tier segment files.

        Loads every segment file in base-offset order, adopts the sealed
        tier, then rebuilds the derived state the same way follower
        replication does — epoch boundaries, the producer dedup table and
        the transaction (LSO/abort/fencing) state — so the recovered log is
        indistinguishable from one that replicated every record.  The high
        watermark restarts at 0 (the recovered replica re-learns it from the
        leader, exactly like a follower rejoining after an outage).
        """
        if storage.segment_dir is None:
            raise ValueError("recovery needs a cold tier (segment_dir unset)")
        log = cls(topic, partition, storage=storage, file_tag=file_tag)
        stem = f"{file_tag}-{topic}-{partition}" if file_tag \
            else f"{topic}-{partition}"
        for path in list_segment_files(storage.segment_dir, stem):
            segment = SealedSegment.from_file(path)
            log._sealed.append(segment)
            log._sealed_bases.append(segment.base_offset)
            log._sealed_hot_bytes += segment.size_bytes
        if log._sealed:
            log._log_start = log._sealed[0].base_offset
            log._base_offset = log._sealed[-1].next_offset
            log._rebuild_epoch_boundaries()
            log._rebuild_producer_state()
            log._rebuild_txn_state()
            if log.producer_state:
                log._has_producers = True
            if any(
                segment.transactionals is not None or segment.controls is not None
                for segment in log._sealed
            ):
                log._has_txn = True
        return log

    def _rebuild_epoch_boundaries(self) -> None:
        """Recompute the leader epoch cache from the epoch columns (recovery)."""
        boundaries: List[Tuple[int, int]] = []
        last: Optional[int] = None
        for segment in self._sealed:
            epochs = segment.epochs
            for index in range(segment.count):
                epoch = epochs[index]
                if epoch != last:
                    boundaries.append((epoch, segment.offset_at(index)))
                    last = epoch
        base = self._base_offset
        for index, epoch in enumerate(self._epochs):
            if epoch != last:
                boundaries.append((epoch, base + index))
                last = epoch
        self.epoch_boundaries = boundaries

    # -- reads -------------------------------------------------------------------------
    def _clamp_range(
        self,
        from_offset: int,
        max_records: Optional[int],
        up_to: Optional[int],
    ) -> Tuple[int, int]:
        if from_offset < self._base_offset:
            from_offset = self._base_offset
        start = from_offset - self._base_offset
        end = len(self._values)
        if up_to is not None:
            end = min(end, max(0, up_to - self._base_offset))
        if max_records is not None:
            end = min(end, start + max_records)
        return start, max(start, end)

    def read_batch(
        self,
        from_offset: int,
        max_records: Optional[int] = None,
        up_to: Optional[int] = None,
        with_epochs: bool = False,
    ) -> RecordBatch:
        """Read a contiguous range as one columnar :class:`RecordBatch`.

        This is the fetch-side hot path: column slices plus one size sum over
        ints — no per-record objects.  Reads below the head are served from
        *one* sealed segment per call (located by bisect): fetch replies stop
        at segment boundaries and the consumer's next poll continues in the
        following segment, mirroring Kafka's one-segment fetch answers.
        """
        if from_offset < self._base_offset and self._sealed:
            return self._read_sealed(from_offset, max_records, up_to, with_epochs)
        start, end = self._clamp_range(from_offset, max_records, up_to)
        if start >= end:
            return EMPTY_BATCH
        # Headers are rare: skip the slice + any() scan entirely unless some
        # record in this log ever carried one (mirrors _has_producers).
        headers = self._headers[start:end] if self._has_headers else None
        # Producer identities travel only on replica fetches (with_epochs) —
        # consumer fetches never need the dedup columns — and, like headers,
        # only when the *range* actually holds one (None otherwise, so
        # all-plain ranges ship no identity columns at all).
        producer_ids = None
        if with_epochs and self._has_producers:
            producer_ids = self._producer_ids[start:end]
            if not any(pid >= 0 for pid in producer_ids):
                producer_ids = None
        # Transaction columns ride replica fetches the same way, so markers
        # and the transactional bits survive leader elections.
        transactionals = None
        controls = None
        if with_epochs and self._has_txn:
            transactionals = self._transactionals[start:end]
            controls = self._controls[start:end]
            if not any(transactionals) and not any(
                control is not None for control in controls
            ):
                transactionals = None
                controls = None
        return RecordBatch.from_columns(
            self.topic,
            self.partition,
            base_offset=self._base_offset + start,
            keys=self._keys[start:end],
            values=self._values[start:end],
            sizes=self._sizes[start:end],
            produced_ats=self._produced_ats[start:end],
            timestamps=self._timestamps[start:end],
            leader_epochs=self._epochs[start:end] if with_epochs else None,
            producer_ids=producer_ids,
            producer_epochs=(
                self._producer_epochs[start:end]
                if producer_ids is not None
                else None
            ),
            sequences=(
                self._sequences[start:end] if producer_ids is not None else None
            ),
            transactionals=transactionals,
            controls=controls,
            headers=headers if headers is not None and any(headers) else None,
        )

    def _read_sealed(
        self,
        from_offset: int,
        max_records: Optional[int],
        up_to: Optional[int],
        with_epochs: bool,
    ) -> RecordBatch:
        """Serve a below-head read out of the sealed tier (bisect lookup)."""
        end_limit = self.log_end_offset if up_to is None else min(
            up_to, self.log_end_offset
        )
        if from_offset < self._log_start:
            from_offset = self._log_start
        index = bisect_right(self._sealed_bases, from_offset) - 1
        if index < 0:
            index = 0
        while index < len(self._sealed):
            segment = self._sealed[index]
            if segment.base_offset >= end_limit:
                return EMPTY_BATCH
            start, end = segment.index_range(from_offset, end_limit)
            if max_records is not None:
                end = min(end, start + max_records)
            if start < end:
                return self._segment_batch(segment, start, end, with_epochs)
            index += 1
        # Past the sealed tier (a gap right before the head): serve the head.
        return self.read_batch(self._base_offset, max_records, up_to, with_epochs)

    def _segment_batch(
        self, segment: SealedSegment, start: int, end: int, with_epochs: bool
    ) -> RecordBatch:
        """Column slices of one sealed segment as a RecordBatch (faults the
        segment in from the cold tier first when evicted)."""
        self._ensure_loaded(segment)
        headers = segment.headers[start:end] if segment.headers is not None else None
        producer_ids = None
        if with_epochs and segment.producer_ids is not None:
            producer_ids = segment.producer_ids[start:end]
            if not any(pid >= 0 for pid in producer_ids):
                producer_ids = None
        transactionals = None
        controls = None
        if with_epochs and (
            segment.transactionals is not None or segment.controls is not None
        ):
            transactionals = (
                segment.transactionals[start:end]
                if segment.transactionals is not None
                else [False] * (end - start)
            )
            controls = (
                segment.controls[start:end]
                if segment.controls is not None
                else [None] * (end - start)
            )
            if not any(transactionals) and not any(
                control is not None for control in controls
            ):
                transactionals = None
                controls = None
        batch = RecordBatch.from_columns(
            self.topic,
            self.partition,
            base_offset=segment.offset_at(start),
            keys=segment.keys[start:end],
            values=segment.values[start:end],
            sizes=segment.sizes[start:end],
            produced_ats=segment.produced_ats[start:end],
            timestamps=segment.timestamps[start:end],
            leader_epochs=segment.epochs[start:end] if with_epochs else None,
            producer_ids=producer_ids,
            producer_epochs=(
                segment.producer_epochs[start:end]
                if producer_ids is not None
                else None
            ),
            sequences=(
                segment.sequences[start:end] if producer_ids is not None else None
            ),
            transactionals=transactionals,
            controls=controls,
            headers=headers if headers is not None and any(headers) else None,
        )
        if segment.offsets is not None:
            # Compacted range: retained rows keep original (gapped) offsets.
            batch.offsets = segment.offsets[start:end]
        return batch

    def committed_read_batch(
        self, from_offset: int, max_records: Optional[int] = None
    ) -> RecordBatch:
        """Batch read of records below the high watermark (consumer rule)."""
        return self.read_batch(
            from_offset, max_records=max_records, up_to=self.high_watermark
        )

    def read(
        self,
        from_offset: int,
        max_records: Optional[int] = None,
        up_to: Optional[int] = None,
    ) -> List[LogRecord]:
        """Read records starting at ``from_offset`` as materialized views."""
        if from_offset < self._base_offset and self._sealed:
            records: List[LogRecord] = []
            end_limit = self.log_end_offset if up_to is None else min(
                up_to, self.log_end_offset
            )
            start_offset = max(from_offset, self._log_start)
            for segment in self._sealed:
                if segment.base_offset >= end_limit:
                    return records
                if segment.next_offset <= start_offset:
                    continue
                lo, hi = segment.index_range(start_offset, end_limit)
                if max_records is not None:
                    hi = min(hi, lo + (max_records - len(records)))
                if lo < hi:
                    self._ensure_loaded(segment)
                    records.extend(
                        self._segment_record_view(segment, index)
                        for index in range(lo, hi)
                    )
                if max_records is not None and len(records) >= max_records:
                    return records
            remaining = None if max_records is None else max_records - len(records)
            records.extend(
                self.read(self._base_offset, remaining, up_to)
            )
            return records
        start, end = self._clamp_range(from_offset, max_records, up_to)
        return [self._record_view(index) for index in range(start, end)]

    def committed_read(
        self, from_offset: int, max_records: Optional[int] = None
    ) -> List[LogRecord]:
        """Read only records below the high watermark (consumer visibility rule)."""
        return self.read(from_offset, max_records=max_records, up_to=self.high_watermark)

    def record_at(self, offset: int) -> Optional[LogRecord]:
        index = offset - self._base_offset
        if 0 <= index < len(self._values):
            return self._record_view(index)
        if offset < self._base_offset and self._sealed:
            segment = self._segment_for(offset)
            if segment is not None:
                row = segment.index_of(offset)
                if row is not None:
                    self._ensure_loaded(segment)
                    return self._segment_record_view(segment, row)
        return None

    def all_records(self) -> List[LogRecord]:
        records: List[LogRecord] = []
        for segment in self._sealed:
            self._ensure_loaded(segment)
            records.extend(
                self._segment_record_view(segment, index)
                for index in range(segment.count)
            )
        records.extend(
            self._record_view(index) for index in range(len(self._values))
        )
        return records

    def _record_view(self, index: int) -> LogRecord:
        has_producers = self._has_producers
        return LogRecord(
            offset=self._base_offset + index,
            key=self._keys[index],
            value=self._values[index],
            size=self._sizes[index],
            timestamp=self._timestamps[index],
            produced_at=self._produced_ats[index],
            leader_epoch=self._epochs[index],
            headers=self._headers[index] or {},
            producer_id=self._producer_ids[index] if has_producers else -1,
            producer_epoch=self._producer_epochs[index] if has_producers else -1,
            sequence=self._sequences[index] if has_producers else -1,
        )

    def _segment_record_view(self, segment: SealedSegment, index: int) -> LogRecord:
        producer_ids = segment.producer_ids
        return LogRecord(
            offset=segment.offset_at(index),
            key=segment.keys[index],
            value=segment.values[index],
            size=segment.sizes[index],
            timestamp=segment.timestamps[index],
            produced_at=segment.produced_ats[index],
            leader_epoch=segment.epochs[index],
            headers=(segment.headers[index] or {}) if segment.headers else {},
            producer_id=producer_ids[index] if producer_ids is not None else -1,
            producer_epoch=(
                segment.producer_epochs[index] if producer_ids is not None else -1
            ),
            sequence=segment.sequences[index] if producer_ids is not None else -1,
        )

    # -- watermark / truncation ------------------------------------------------------------
    def advance_high_watermark(self, offset: int) -> None:
        """Move the high watermark forward (never backwards) up to the log end."""
        self.high_watermark = max(self.high_watermark, min(offset, self.log_end_offset))

    def set_high_watermark(self, offset: int) -> None:
        """Force the high watermark (used by followers applying the leader's value)."""
        self.high_watermark = min(offset, self.log_end_offset)

    def truncate_to(self, offset: int) -> List[LogRecord]:
        """Discard every record at or beyond ``offset``.

        Returns the discarded records.  This is the mechanism behind the
        silent message loss observed with ZooKeeper-based Kafka: a stale
        leader that accepted writes during a partition truncates them away
        when it rejoins and follows the new leader.  A cut below the head's
        base offset slices into the sealed tier: later segments are dropped
        whole, the boundary segment is rewritten in place, and the head
        restarts empty at the cut.
        """
        if offset >= self.log_end_offset:
            return []
        if offset < self._base_offset:
            return self._truncate_into_sealed(offset)
        keep = max(0, offset - self._base_offset)
        discarded = [
            self._record_view(index) for index in range(keep, len(self._values))
        ]
        del self._keys[keep:]
        del self._values[keep:]
        del self._timestamps[keep:]
        del self._produced_ats[keep:]
        del self._epochs[keep:]
        del self._headers[keep:]
        if self._has_producers:
            del self._producer_ids[keep:]
            del self._producer_epochs[keep:]
            del self._sequences[keep:]
        if self._has_txn:
            del self._transactionals[keep:]
            del self._controls[keep:]
        self._size_bytes -= sum(self._sizes[keep:])
        del self._sizes[keep:]
        self.truncated_records += len(discarded)
        self.high_watermark = min(self.high_watermark, self.log_end_offset)
        self.epoch_boundaries = [
            (epoch, start) for epoch, start in self.epoch_boundaries
            if start < self.log_end_offset
        ]
        if self._has_producers:
            # Truncation may have discarded a producer's latest batches; the
            # dedup table must roll back with the log (cold path — faults
            # only).
            self._rebuild_producer_state()
        if self._has_txn:
            # Same for the transaction state: a discarded marker re-opens its
            # transaction, a discarded open re-closes it.
            self._rebuild_txn_state()
        return discarded

    def _truncate_into_sealed(self, offset: int) -> List[LogRecord]:
        """Truncation whose cut lands inside (or before) the sealed tier."""
        offset = max(offset, self._log_start)
        discarded: List[LogRecord] = []
        keep_sealed: List[SealedSegment] = []
        for segment in self._sealed:
            if segment.next_offset <= offset:
                keep_sealed.append(segment)
                continue
            self._ensure_loaded(segment)
            cut, _ = segment.index_range(offset, segment.next_offset)
            discarded.extend(
                self._segment_record_view(segment, index)
                for index in range(cut, segment.count)
            )
            if cut > 0:
                self._rewrite_segment(segment, list(range(cut)))
                segment.next_offset = offset
                keep_sealed.append(segment)
            else:
                self._sealed_hot_bytes -= segment.size_bytes
                segment.delete_file()
        # Everything in the head is beyond the cut: discard it wholesale.
        discarded.extend(
            self._record_view(index) for index in range(len(self._values))
        )
        self._size_bytes = 0
        self._keys = []
        self._values = []
        self._sizes = []
        self._timestamps = []
        self._produced_ats = []
        self._epochs = []
        self._headers = []
        self._producer_ids = []
        self._producer_epochs = []
        self._sequences = []
        self._transactionals = []
        self._controls = []
        self._sealed = keep_sealed
        self._sealed_bases = [segment.base_offset for segment in keep_sealed]
        self._base_offset = offset
        self._dirty_sealed = min(self._dirty_sealed, len(keep_sealed))
        self.truncated_records += len(discarded)
        self.high_watermark = min(self.high_watermark, self.log_end_offset)
        self.epoch_boundaries = [
            (epoch, start) for epoch, start in self.epoch_boundaries
            if start < self.log_end_offset
        ]
        if self._has_producers:
            self._rebuild_producer_state()
        if self._has_txn:
            self._rebuild_txn_state()
        return discarded

    def epoch_start_offset(self, epoch: int) -> Optional[int]:
        """First offset written under ``epoch`` (None if the epoch never led here)."""
        for known_epoch, start in self.epoch_boundaries:
            if known_epoch == epoch:
                return start
        return None

    def __repr__(self) -> str:
        return (
            f"<PartitionLog {self.topic}-{self.partition} "
            f"leo={self.log_end_offset} hw={self.high_watermark}>"
        )
