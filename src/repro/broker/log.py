"""Append-only partition logs.

Each partition replica is backed by a :class:`PartitionLog`: an append-only
sequence of records with a *log end offset* (next offset to be written) and a
*high watermark* (highest offset known to be replicated to the in-sync
replica set; only records below it are visible to consumers).  Leader
failover and follower rejoin are implemented with epoch bookkeeping and
truncation, which is where the ZooKeeper-mode silent message loss comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class LogRecord:
    """One record as stored in a partition log."""

    offset: int
    key: Any
    value: Any
    size: int
    timestamp: float
    produced_at: float
    leader_epoch: int
    headers: Dict[str, Any] = field(default_factory=dict)


class PartitionLog:
    """An append-only log for one replica of one partition."""

    def __init__(self, topic: str, partition: int = 0) -> None:
        self.topic = topic
        self.partition = partition
        self._records: List[LogRecord] = []
        self._base_offset = 0
        self.high_watermark = 0
        #: (epoch, start_offset) pairs, newest last — Kafka's leader epoch cache.
        self.epoch_boundaries: List[Tuple[int, int]] = []
        self.truncated_records = 0

    # -- basic accessors ------------------------------------------------------------
    @property
    def log_end_offset(self) -> int:
        """The offset that the *next* appended record will receive."""
        return self._base_offset + len(self._records)

    @property
    def log_start_offset(self) -> int:
        return self._base_offset

    def __len__(self) -> int:
        return len(self._records)

    @property
    def size_bytes(self) -> int:
        return sum(record.size for record in self._records)

    # -- writes -----------------------------------------------------------------------
    def append(
        self,
        key: Any,
        value: Any,
        size: int,
        timestamp: float,
        produced_at: float,
        leader_epoch: int,
        headers: Optional[Dict[str, Any]] = None,
    ) -> LogRecord:
        """Append one record and return it (offset assigned here)."""
        if self.epoch_boundaries and leader_epoch < self.epoch_boundaries[-1][0]:
            raise ValueError(
                f"appending with stale epoch {leader_epoch} < "
                f"{self.epoch_boundaries[-1][0]}"
            )
        if not self.epoch_boundaries or self.epoch_boundaries[-1][0] != leader_epoch:
            self.epoch_boundaries.append((leader_epoch, self.log_end_offset))
        record = LogRecord(
            offset=self.log_end_offset,
            key=key,
            value=value,
            size=size,
            timestamp=timestamp,
            produced_at=produced_at,
            leader_epoch=leader_epoch,
            headers=dict(headers or {}),
        )
        self._records.append(record)
        return record

    def append_record(self, record: LogRecord) -> None:
        """Append a record copied from a leader (replication path)."""
        if record.offset != self.log_end_offset:
            raise ValueError(
                f"non-contiguous append: expected offset {self.log_end_offset}, "
                f"got {record.offset}"
            )
        if not self.epoch_boundaries or self.epoch_boundaries[-1][0] != record.leader_epoch:
            self.epoch_boundaries.append((record.leader_epoch, record.offset))
        self._records.append(record)

    # -- reads -------------------------------------------------------------------------
    def read(
        self,
        from_offset: int,
        max_records: Optional[int] = None,
        up_to: Optional[int] = None,
    ) -> List[LogRecord]:
        """Read records starting at ``from_offset`` (bounded by ``up_to`` exclusive)."""
        if from_offset < self._base_offset:
            from_offset = self._base_offset
        start_index = from_offset - self._base_offset
        if start_index >= len(self._records):
            return []
        end_index = len(self._records)
        if up_to is not None:
            end_index = min(end_index, max(0, up_to - self._base_offset))
        records = self._records[start_index:end_index]
        if max_records is not None:
            records = records[:max_records]
        return records

    def committed_read(
        self, from_offset: int, max_records: Optional[int] = None
    ) -> List[LogRecord]:
        """Read only records below the high watermark (consumer visibility rule)."""
        return self.read(from_offset, max_records=max_records, up_to=self.high_watermark)

    def record_at(self, offset: int) -> Optional[LogRecord]:
        index = offset - self._base_offset
        if 0 <= index < len(self._records):
            return self._records[index]
        return None

    def all_records(self) -> List[LogRecord]:
        return list(self._records)

    # -- watermark / truncation ------------------------------------------------------------
    def advance_high_watermark(self, offset: int) -> None:
        """Move the high watermark forward (never backwards) up to the log end."""
        self.high_watermark = max(self.high_watermark, min(offset, self.log_end_offset))

    def set_high_watermark(self, offset: int) -> None:
        """Force the high watermark (used by followers applying the leader's value)."""
        self.high_watermark = min(offset, self.log_end_offset)

    def truncate_to(self, offset: int) -> List[LogRecord]:
        """Discard every record at or beyond ``offset``.

        Returns the discarded records.  This is the mechanism behind the
        silent message loss observed with ZooKeeper-based Kafka: a stale
        leader that accepted writes during a partition truncates them away
        when it rejoins and follows the new leader.
        """
        if offset >= self.log_end_offset:
            return []
        keep = max(0, offset - self._base_offset)
        discarded = self._records[keep:]
        self._records = self._records[:keep]
        self.truncated_records += len(discarded)
        self.high_watermark = min(self.high_watermark, self.log_end_offset)
        self.epoch_boundaries = [
            (epoch, start) for epoch, start in self.epoch_boundaries
            if start < self.log_end_offset
        ]
        return discarded

    def epoch_start_offset(self, epoch: int) -> Optional[int]:
        """First offset written under ``epoch`` (None if the epoch never led here)."""
        for known_epoch, start in self.epoch_boundaries:
            if known_epoch == epoch:
                return start
        return None

    def __repr__(self) -> str:
        return (
            f"<PartitionLog {self.topic}-{self.partition} "
            f"leo={self.log_end_offset} hw={self.high_watermark}>"
        )
