"""Append-only partition logs (columnar, batch-native).

Each partition replica is backed by a :class:`PartitionLog`: an append-only
sequence of records with a *log end offset* (next offset to be written) and a
*high watermark* (highest offset known to be replicated to the in-sync
replica set; only records below it are visible to consumers).  Leader
failover and follower rejoin are implemented with epoch bookkeeping and
truncation, which is where the ZooKeeper-mode silent message loss comes from.

Each replica also keeps a per-producer dedup table (:class:`ProducerEntry`,
``producer_state``): the last sequence number appended per producer id, fed
by the producer-identity columns that every append carries and that replica
fetches hand down to followers — so the exactly-once produce guarantee
survives leader elections (see ``docs/exactly_once.md``).

Storage is columnar: parallel arrays of keys/values/sizes/timestamps rather
than one record object per entry.  The hot paths — :meth:`append_batch` on
produce, :meth:`read_batch` on fetch — move whole :class:`RecordBatch`
payloads with C-level list extends/slices and compute sizes once from the
batch header.  The per-record views (:class:`LogRecord`) are materialized
lazily only on the cold paths (tests, truncation loss accounting,
``record_at`` debugging).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.broker.batch import CONTROL_RECORD_SIZE, EMPTY_BATCH, RecordBatch


@dataclass
class LogRecord:
    """One record as viewed out of a partition log (materialized on demand)."""

    offset: int
    key: Any
    value: Any
    size: int
    timestamp: float
    produced_at: float
    leader_epoch: int
    headers: Dict[str, Any] = field(default_factory=dict)
    #: Producer identity the record was appended under (-1 = non-idempotent).
    producer_id: int = -1
    producer_epoch: int = -1
    sequence: int = -1


class ProducerEntry:
    """Per-producer dedup state of one partition replica.

    Mirrors Kafka's producer state snapshot: the producer's current epoch,
    the sequence number of its last appended record, and the base offset /
    record count of its most recent batch (so a duplicate retry can be
    acknowledged with the *original* offsets).
    """

    __slots__ = ("epoch", "last_sequence", "last_base_offset", "last_count")

    def __init__(
        self,
        epoch: int,
        last_sequence: int,
        last_base_offset: int = -1,
        last_count: int = 0,
    ) -> None:
        self.epoch = epoch
        self.last_sequence = last_sequence
        self.last_base_offset = last_base_offset
        self.last_count = last_count

    def __repr__(self) -> str:
        return (
            f"<ProducerEntry epoch={self.epoch} last_seq={self.last_sequence} "
            f"last_base_offset={self.last_base_offset}>"
        )


class PartitionLog:
    """An append-only log for one replica of one partition."""

    def __init__(self, topic: str, partition: int = 0) -> None:
        self.topic = topic
        self.partition = partition
        # Columnar storage; index i holds record (base_offset + i).
        self._keys: List[Any] = []
        self._values: List[Any] = []
        self._sizes: List[int] = []
        self._timestamps: List[float] = []
        self._produced_ats: List[float] = []
        self._epochs: List[int] = []
        self._headers: List[Optional[Dict[str, Any]]] = []
        #: True once any record landed here with headers — lets the fetch
        #: hot path (``read_batch``) skip slicing and scanning the headers
        #: column entirely in the overwhelmingly common header-free case.
        self._has_headers = False
        #: Per-record producer identity columns (-1 = no producer id).  Kept
        #: in the log — not in leader-only session state — so a follower's
        #: replica fetches rebuild the same dedup table and guarantees
        #: survive leader elections.  Materialized lazily: they stay empty
        #: (and cost the hot append path nothing) until the first idempotent
        #: append backfills them — ``_has_producers`` gates every reader.
        self._producer_ids: List[int] = []
        self._producer_epochs: List[int] = []
        self._sequences: List[int] = []
        self._base_offset = 0
        self._size_bytes = 0
        self.high_watermark = 0
        #: (epoch, start_offset) pairs, newest last — Kafka's leader epoch cache.
        self.epoch_boundaries: List[Tuple[int, int]] = []
        self.truncated_records = 0
        #: producer_id -> :class:`ProducerEntry`, maintained incrementally on
        #: every append (and rebuilt from the columns after truncation).
        self.producer_state: Dict[int, ProducerEntry] = {}
        #: True once any record with a producer id landed here (lets the
        #: non-idempotent read path skip slicing the producer columns).
        self._has_producers = False
        #: Per-record transaction columns, lazily materialized exactly like
        #: the producer columns: ``_transactionals[i]`` is True for records of
        #: an (eventually committed or aborted) transaction, ``_controls[i]``
        #: holds a ``(marker, producer_id, producer_epoch)`` tuple for
        #: COMMIT/ABORT control records (``None`` for data).  Kept in the log
        #: so replica fetches rebuild the same LSO/abort state on followers.
        self._transactionals: List[bool] = []
        self._controls: List[Optional[Tuple[str, int, int]]] = []
        self._has_txn = False
        #: producer_id -> first offset of its currently *open* transaction in
        #: this partition (removed when the end marker lands).  The Last
        #: Stable Offset is the earliest of these (capped by the HW).
        self._open_txn_first: Dict[int, int] = {}
        #: Aborted-transaction index: ``(first_offset, marker_offset,
        #: producer_id)`` per aborted transaction — what lets committed reads
        #: filter aborted records out without scanning the whole log.
        self.aborted_ranges: List[Tuple[int, int, int]] = []
        #: producer_id -> (epoch, marker, offset) of its latest control
        #: record; lets a leader acknowledge a retried marker write without
        #: appending it twice.
        self.last_markers: Dict[int, Tuple[int, str, int]] = {}

    # -- basic accessors ------------------------------------------------------------
    @property
    def log_end_offset(self) -> int:
        """The offset that the *next* appended record will receive."""
        return self._base_offset + len(self._values)

    @property
    def log_start_offset(self) -> int:
        return self._base_offset

    def __len__(self) -> int:
        return len(self._values)

    @property
    def size_bytes(self) -> int:
        return self._size_bytes

    # -- transaction state ------------------------------------------------------------
    @property
    def has_transactions(self) -> bool:
        """True once any transactional record or control marker landed here."""
        return self._has_txn

    @property
    def last_stable_offset(self) -> int:
        """First offset of the earliest open transaction, capped at the HW.

        With no open transaction this equals the high watermark — so the
        non-transactional read path is unchanged.  ``read_committed``
        consumers never fetch at or past this offset.
        """
        if not self._open_txn_first:
            return self.high_watermark
        return min(self.high_watermark, min(self._open_txn_first.values()))

    def open_txn_first_offset(self, producer_id: int) -> Optional[int]:
        return self._open_txn_first.get(producer_id)

    def _ensure_txn_columns(self, backfill: int) -> None:
        """First transactional append: backfill the transaction columns for
        the ``backfill`` records already in the log."""
        if self._has_txn:
            return
        self._transactionals = [False] * backfill
        self._controls = [None] * backfill
        self._has_txn = True

    def _note_control(
        self, offset: int, marker: str, producer_id: int, producer_epoch: int
    ) -> None:
        """Fold one control record into LSO / abort-index / fencing state."""
        first = self._open_txn_first.pop(producer_id, None)
        if marker == "abort" and first is not None:
            self.aborted_ranges.append((first, offset, producer_id))
        self.last_markers[producer_id] = (producer_epoch, marker, offset)
        # A marker carries the coordinator's word on the producer's current
        # epoch: bump the dedup entry so a zombie's stale-epoch data batches
        # are fenced at this partition even before the successor produces.
        entry = self.producer_state.get(producer_id)
        if entry is None:
            self.producer_state[producer_id] = ProducerEntry(producer_epoch, -1)
        elif producer_epoch > entry.epoch:
            entry.epoch = producer_epoch
            entry.last_sequence = -1

    def _rebuild_txn_state(self) -> None:
        """Recompute open-transaction/abort state from the columns
        (post-truncation path, mirroring ``_rebuild_producer_state``)."""
        self._open_txn_first = {}
        self.aborted_ranges = []
        self.last_markers = {}
        base = self._base_offset
        controls = self._controls
        transactionals = self._transactionals
        producer_ids = self._producer_ids if self._has_producers else None
        for index in range(len(self._values)):
            control = controls[index]
            if control is not None:
                marker, producer_id, producer_epoch = control
                first = self._open_txn_first.pop(producer_id, None)
                if marker == "abort" and first is not None:
                    self.aborted_ranges.append((first, base + index, producer_id))
                self.last_markers[producer_id] = (producer_epoch, marker, base + index)
            elif transactionals[index] and producer_ids is not None:
                producer_id = producer_ids[index]
                if producer_id >= 0 and producer_id not in self._open_txn_first:
                    self._open_txn_first[producer_id] = base + index

    def invisible_offsets(
        self, from_offset: int, up_to: int, isolation: str
    ) -> Tuple[List[int], int]:
        """Offsets in ``[from_offset, up_to)`` a consumer must not observe.

        Control records are invisible to *every* consumer (Kafka never
        delivers them to clients); records of aborted transactions are
        additionally invisible under ``read_committed``.  Returns the sorted
        offset list plus their total payload bytes, so fetch accounting can
        exclude them in O(len(skipped)).
        """
        if not self._has_txn:
            return [], 0
        base = self._base_offset
        skipped: List[int] = []
        start = max(from_offset, base)
        end = min(up_to, self.log_end_offset)
        for offset in range(start, end):
            if self._controls[offset - base] is not None:
                skipped.append(offset)
        if isolation == "read_committed" and self.aborted_ranges:
            producer_ids = self._producer_ids if self._has_producers else None
            for first, marker_offset, producer_id in self.aborted_ranges:
                lo = max(first, start)
                hi = min(marker_offset, end)
                for offset in range(lo, hi):
                    index = offset - base
                    if (
                        self._transactionals[index]
                        and producer_ids is not None
                        and producer_ids[index] == producer_id
                    ):
                        skipped.append(offset)
        if not skipped:
            return [], 0
        skipped = sorted(set(skipped))
        bytes_skipped = sum(self._sizes[offset - base] for offset in skipped)
        return skipped, bytes_skipped

    # -- producer dedup table ---------------------------------------------------------
    def check_producer_batch(
        self,
        producer_id: int,
        producer_epoch: int,
        base_sequence: int,
        count: int = 1,
    ) -> str:
        """Dedup/fencing verdict for an incoming produce batch (pure decision).

        * ``"fenced"`` — the batch carries an epoch older than the producer's
          current one: a zombie instance superseded by a re-initialization.
        * ``"duplicate"`` — same epoch, every sequence of the batch at or
          below the last appended one: a retry of a batch this replica fully
          holds (batches are immutable across retries, so full overlap means
          identity).
        * ``"partial"`` — same epoch, the batch *starts* at or below the last
          appended sequence but runs past it.  Happens only when this replica
          holds a prefix of the batch (a replica fetch sliced mid-batch just
          before a failover): the prefix is a duplicate but the tail was
          never appended anywhere — the caller must append the tail, never
          ack the whole batch as a duplicate.
        * ``"ok"`` — everything else: the next batch, a gap left by an
          expired batch (sequences are consumed at drain time, so a
          delivery-timeout failure legitimately skips numbers), or a fresh
          epoch (which resets the sequence space).
        """
        entry = self.producer_state.get(producer_id)
        if entry is None:
            return "ok"
        if producer_epoch < entry.epoch:
            return "fenced"
        if producer_epoch == entry.epoch and base_sequence <= entry.last_sequence:
            if base_sequence + count - 1 <= entry.last_sequence:
                return "duplicate"
            return "partial"
        return "ok"

    def producer_entry(self, producer_id: int) -> Optional[ProducerEntry]:
        return self.producer_state.get(producer_id)

    def _ensure_producer_columns(self, backfill: int) -> None:
        """First idempotent append: backfill the identity columns with -1 for
        the ``backfill`` records already in the log, then keep them in
        lockstep with every later append."""
        if self._has_producers:
            return
        self._producer_ids = [-1] * backfill
        self._producer_epochs = [-1] * backfill
        self._sequences = [-1] * backfill
        self._has_producers = True

    def _note_producer_batch(
        self, producer_id: int, producer_epoch: int, base_sequence: int,
        count: int, base_offset: int,
    ) -> None:
        entry = self.producer_state.get(producer_id)
        last_sequence = base_sequence + count - 1
        if entry is None:
            self.producer_state[producer_id] = ProducerEntry(
                producer_epoch, last_sequence, base_offset, count
            )
            return
        entry.epoch = producer_epoch
        entry.last_sequence = last_sequence
        entry.last_base_offset = base_offset
        entry.last_count = count

    def _rebuild_producer_state(self) -> None:
        """Recompute the dedup table from the columns (post-truncation path).

        Appends are per-producer in-order, so the last occurrence of each
        producer id in the remaining columns is its current state; batch
        base offsets/counts are not recoverable per batch and collapse to
        the record itself (good enough for duplicate *detection*; the cached
        ack offsets only matter on the live leader, whose state was never
        rebuilt this way mid-flight).
        """
        state: Dict[int, ProducerEntry] = {}
        producer_ids = self._producer_ids
        producer_epochs = self._producer_epochs
        sequences = self._sequences
        base = self._base_offset
        for index, producer_id in enumerate(producer_ids):
            if producer_id < 0:
                continue
            entry = state.get(producer_id)
            if entry is None:
                state[producer_id] = ProducerEntry(
                    producer_epochs[index], sequences[index], base + index, 1
                )
            else:
                entry.epoch = producer_epochs[index]
                entry.last_sequence = sequences[index]
                entry.last_base_offset = base + index
                entry.last_count = 1
        self.producer_state = state

    # -- writes -----------------------------------------------------------------------
    def _note_epoch(self, leader_epoch: int, start_offset: int) -> None:
        if self.epoch_boundaries and leader_epoch < self.epoch_boundaries[-1][0]:
            raise ValueError(
                f"appending with stale epoch {leader_epoch} < "
                f"{self.epoch_boundaries[-1][0]}"
            )
        if not self.epoch_boundaries or self.epoch_boundaries[-1][0] != leader_epoch:
            self.epoch_boundaries.append((leader_epoch, start_offset))

    def append(
        self,
        key: Any,
        value: Any,
        size: int,
        timestamp: float,
        produced_at: float,
        leader_epoch: int,
        headers: Optional[Dict[str, Any]] = None,
    ) -> LogRecord:
        """Append one record and return its view (offset assigned here)."""
        offset = self.log_end_offset
        self._note_epoch(leader_epoch, offset)
        self._keys.append(key)
        self._values.append(value)
        self._sizes.append(size)
        self._timestamps.append(timestamp)
        self._produced_ats.append(produced_at)
        self._epochs.append(leader_epoch)
        self._headers.append(dict(headers) if headers else None)
        if headers:
            self._has_headers = True
        if self._has_producers:
            self._producer_ids.append(-1)
            self._producer_epochs.append(-1)
            self._sequences.append(-1)
        if self._has_txn:
            self._transactionals.append(False)
            self._controls.append(None)
        self._size_bytes += size
        return self._record_view(offset - self._base_offset)

    def append_batch(
        self, batch: RecordBatch, timestamp: float, leader_epoch: int
    ) -> int:
        """Append a whole produce batch under one epoch; returns its base offset.

        This is the leader-side hot path: one epoch check, C-level column
        extends, and the size accounted once from the batch header.
        """
        base_offset = self.log_end_offset
        count = len(batch)
        if count == 0:
            return base_offset
        self._note_epoch(leader_epoch, base_offset)
        self._keys.extend(batch.keys)
        self._values.extend(batch.values)
        self._sizes.extend(batch.sizes)
        self._timestamps.extend([timestamp] * count)
        self._produced_ats.extend(batch.produced_ats)
        self._epochs.extend([leader_epoch] * count)
        if batch.headers is not None:
            self._headers.extend(batch.headers)
            self._has_headers = True
        else:
            self._headers.extend([None] * count)
        producer_id = batch.producer_id
        if producer_id >= 0:
            # The payload columns were already extended: backfill everything
            # before this batch, then add the batch's identity.
            self._ensure_producer_columns(len(self._values) - count)
            base_sequence = batch.base_sequence
            self._producer_ids.extend([producer_id] * count)
            self._producer_epochs.extend([batch.producer_epoch] * count)
            self._sequences.extend(range(base_sequence, base_sequence + count))
            self._note_producer_batch(
                producer_id, batch.producer_epoch, base_sequence, count, base_offset
            )
        elif self._has_producers:
            self._producer_ids.extend([-1] * count)
            self._producer_epochs.extend([-1] * count)
            self._sequences.extend([-1] * count)
        if batch.transactional and producer_id >= 0:
            self._ensure_txn_columns(len(self._values) - count)
            self._transactionals.extend([True] * count)
            self._controls.extend([None] * count)
            if producer_id not in self._open_txn_first:
                self._open_txn_first[producer_id] = base_offset
        elif self._has_txn:
            self._transactionals.extend([False] * count)
            self._controls.extend([None] * count)
        self._size_bytes += batch.total_size
        return base_offset

    def append_control(
        self,
        producer_id: int,
        producer_epoch: int,
        marker: str,
        timestamp: float,
        leader_epoch: int,
    ) -> int:
        """Append one COMMIT/ABORT control record; returns its offset.

        Control records live in the log like data records (so they replicate
        and survive elections) but are invisible to consumers.  Landing one
        closes the producer's open transaction here: the LSO advances, and an
        abort marker files the transaction's range in the abort index.  The
        producer-identity columns stay -1 — the marker's identity lives in
        the control tuple, keeping it out of the sequence-dedup fold that
        followers run over replicated producer columns.
        """
        offset = self.log_end_offset
        self._note_epoch(leader_epoch, offset)
        self._keys.append(None)
        self._values.append(marker)
        self._sizes.append(CONTROL_RECORD_SIZE)
        self._timestamps.append(timestamp)
        self._produced_ats.append(timestamp)
        self._epochs.append(leader_epoch)
        self._headers.append(None)
        if self._has_producers:
            self._producer_ids.append(-1)
            self._producer_epochs.append(-1)
            self._sequences.append(-1)
        self._ensure_txn_columns(len(self._values) - 1)
        self._transactionals.append(False)
        self._controls.append((marker, producer_id, producer_epoch))
        self._size_bytes += CONTROL_RECORD_SIZE
        self._note_control(offset, marker, producer_id, producer_epoch)
        return offset

    def append_wire_batch(self, batch: RecordBatch) -> int:
        """Append a batch fetched from a leader (replication path).

        The batch may overlap records we already hold (the follower refetches
        from its LEO after a timeout); the already-present prefix is skipped.
        Returns the number of records actually appended.
        """
        leo = self.log_end_offset
        if batch.base_offset > leo:
            raise ValueError(
                f"non-contiguous append: expected offset {leo}, "
                f"got {batch.base_offset}"
            )
        if batch.base_offset < leo:
            batch = batch.tail(leo - batch.base_offset)
        count = len(batch)
        if count == 0:
            return 0
        epochs = batch.leader_epochs
        if epochs is None:
            self._note_epoch(batch.leader_epoch, batch.base_offset)
            self._epochs.extend([batch.leader_epoch] * count)
        else:
            last = self.epoch_boundaries[-1][0] if self.epoch_boundaries else None
            for index, epoch in enumerate(epochs):
                if epoch != last:
                    self._note_epoch(epoch, batch.base_offset + index)
                    last = epoch
            self._epochs.extend(epochs)
        self._keys.extend(batch.keys)
        self._values.extend(batch.values)
        self._sizes.extend(batch.sizes)
        self._produced_ats.extend(batch.produced_ats)
        if batch.timestamps is not None:
            self._timestamps.extend(batch.timestamps)
        else:
            self._timestamps.extend(batch.produced_ats)
        if batch.headers is not None:
            self._headers.extend(batch.headers)
            self._has_headers = True
        else:
            self._headers.extend([None] * count)
        if batch.producer_ids is not None:
            # Replicated producer identities: extend the columns and fold
            # them into the follower's dedup table, so the table survives a
            # promotion of this replica to leader.
            self._ensure_producer_columns(len(self._values) - count)
            producer_ids = batch.producer_ids
            producer_epochs = batch.producer_epochs
            sequences = batch.sequences
            self._producer_ids.extend(producer_ids)
            self._producer_epochs.extend(producer_epochs)
            self._sequences.extend(sequences)
            base_offset = batch.base_offset
            # Fold contiguous same-producer runs as single batches, so a
            # promoted follower's ProducerEntry carries a real batch extent
            # (last_base_offset/last_count) — what lets it echo original
            # offsets and bound the acks=all wait on a duplicate retry.
            index = 0
            total = len(producer_ids)
            while index < total:
                producer_id = producer_ids[index]
                if producer_id < 0:
                    index += 1
                    continue
                start = index
                epoch = producer_epochs[index]
                while (
                    index + 1 < total
                    and producer_ids[index + 1] == producer_id
                    and producer_epochs[index + 1] == epoch
                    and sequences[index + 1] == sequences[index] + 1
                ):
                    index += 1
                self._note_producer_batch(
                    producer_id,
                    epoch,
                    sequences[start],
                    index - start + 1,
                    base_offset + start,
                )
                index += 1
        elif self._has_producers:
            self._producer_ids.extend([-1] * count)
            self._producer_epochs.extend([-1] * count)
            self._sequences.extend([-1] * count)
        if batch.transactionals is not None or batch.controls is not None:
            # Replicated transaction columns: extend them and replay markers /
            # transaction opens in offset order, so a promoted follower holds
            # the same LSO, abort index and fencing state as the old leader.
            self._ensure_txn_columns(len(self._values) - count)
            transactionals = batch.transactionals or [False] * count
            controls = batch.controls or [None] * count
            self._transactionals.extend(transactionals)
            self._controls.extend(controls)
            base_offset = batch.base_offset
            producer_ids = batch.producer_ids
            for index in range(count):
                control = controls[index]
                if control is not None:
                    marker, producer_id, producer_epoch = control
                    self._note_control(
                        base_offset + index, marker, producer_id, producer_epoch
                    )
                elif transactionals[index] and producer_ids is not None:
                    producer_id = producer_ids[index]
                    if producer_id >= 0 and producer_id not in self._open_txn_first:
                        self._open_txn_first[producer_id] = base_offset + index
        elif self._has_txn:
            self._transactionals.extend([False] * count)
            self._controls.extend([None] * count)
        self._size_bytes += batch.total_size
        return count

    def append_record(self, record: LogRecord) -> None:
        """Append a single record view (compat shim for tests/tools)."""
        if record.offset != self.log_end_offset:
            raise ValueError(
                f"non-contiguous append: expected offset {self.log_end_offset}, "
                f"got {record.offset}"
            )
        if not self.epoch_boundaries or self.epoch_boundaries[-1][0] != record.leader_epoch:
            self.epoch_boundaries.append((record.leader_epoch, record.offset))
        self._keys.append(record.key)
        self._values.append(record.value)
        self._sizes.append(record.size)
        self._timestamps.append(record.timestamp)
        self._produced_ats.append(record.produced_at)
        self._epochs.append(record.leader_epoch)
        self._headers.append(dict(record.headers) if record.headers else None)
        if record.headers:
            self._has_headers = True
        if record.producer_id >= 0:
            self._ensure_producer_columns(len(self._values) - 1)
            self._note_producer_batch(
                record.producer_id,
                record.producer_epoch,
                record.sequence,
                1,
                record.offset,
            )
        if self._has_producers:
            self._producer_ids.append(record.producer_id)
            self._producer_epochs.append(record.producer_epoch)
            self._sequences.append(record.sequence)
        if self._has_txn:
            self._transactionals.append(False)
            self._controls.append(None)
        self._size_bytes += record.size

    # -- reads -------------------------------------------------------------------------
    def _clamp_range(
        self,
        from_offset: int,
        max_records: Optional[int],
        up_to: Optional[int],
    ) -> Tuple[int, int]:
        if from_offset < self._base_offset:
            from_offset = self._base_offset
        start = from_offset - self._base_offset
        end = len(self._values)
        if up_to is not None:
            end = min(end, max(0, up_to - self._base_offset))
        if max_records is not None:
            end = min(end, start + max_records)
        return start, max(start, end)

    def read_batch(
        self,
        from_offset: int,
        max_records: Optional[int] = None,
        up_to: Optional[int] = None,
        with_epochs: bool = False,
    ) -> RecordBatch:
        """Read a contiguous range as one columnar :class:`RecordBatch`.

        This is the fetch-side hot path: column slices plus one size sum over
        ints — no per-record objects.
        """
        start, end = self._clamp_range(from_offset, max_records, up_to)
        if start >= end:
            return EMPTY_BATCH
        # Headers are rare: skip the slice + any() scan entirely unless some
        # record in this log ever carried one (mirrors _has_producers).
        headers = self._headers[start:end] if self._has_headers else None
        # Producer identities travel only on replica fetches (with_epochs) —
        # consumer fetches never need the dedup columns — and, like headers,
        # only when the *range* actually holds one (None otherwise, so
        # all-plain ranges ship no identity columns at all).
        producer_ids = None
        if with_epochs and self._has_producers:
            producer_ids = self._producer_ids[start:end]
            if not any(pid >= 0 for pid in producer_ids):
                producer_ids = None
        # Transaction columns ride replica fetches the same way, so markers
        # and the transactional bits survive leader elections.
        transactionals = None
        controls = None
        if with_epochs and self._has_txn:
            transactionals = self._transactionals[start:end]
            controls = self._controls[start:end]
            if not any(transactionals) and not any(
                control is not None for control in controls
            ):
                transactionals = None
                controls = None
        return RecordBatch.from_columns(
            self.topic,
            self.partition,
            base_offset=self._base_offset + start,
            keys=self._keys[start:end],
            values=self._values[start:end],
            sizes=self._sizes[start:end],
            produced_ats=self._produced_ats[start:end],
            timestamps=self._timestamps[start:end],
            leader_epochs=self._epochs[start:end] if with_epochs else None,
            producer_ids=producer_ids,
            producer_epochs=(
                self._producer_epochs[start:end]
                if producer_ids is not None
                else None
            ),
            sequences=(
                self._sequences[start:end] if producer_ids is not None else None
            ),
            transactionals=transactionals,
            controls=controls,
            headers=headers if headers is not None and any(headers) else None,
        )

    def committed_read_batch(
        self, from_offset: int, max_records: Optional[int] = None
    ) -> RecordBatch:
        """Batch read of records below the high watermark (consumer rule)."""
        return self.read_batch(
            from_offset, max_records=max_records, up_to=self.high_watermark
        )

    def read(
        self,
        from_offset: int,
        max_records: Optional[int] = None,
        up_to: Optional[int] = None,
    ) -> List[LogRecord]:
        """Read records starting at ``from_offset`` as materialized views."""
        start, end = self._clamp_range(from_offset, max_records, up_to)
        return [self._record_view(index) for index in range(start, end)]

    def committed_read(
        self, from_offset: int, max_records: Optional[int] = None
    ) -> List[LogRecord]:
        """Read only records below the high watermark (consumer visibility rule)."""
        return self.read(from_offset, max_records=max_records, up_to=self.high_watermark)

    def record_at(self, offset: int) -> Optional[LogRecord]:
        index = offset - self._base_offset
        if 0 <= index < len(self._values):
            return self._record_view(index)
        return None

    def all_records(self) -> List[LogRecord]:
        return [self._record_view(index) for index in range(len(self._values))]

    def _record_view(self, index: int) -> LogRecord:
        has_producers = self._has_producers
        return LogRecord(
            offset=self._base_offset + index,
            key=self._keys[index],
            value=self._values[index],
            size=self._sizes[index],
            timestamp=self._timestamps[index],
            produced_at=self._produced_ats[index],
            leader_epoch=self._epochs[index],
            headers=self._headers[index] or {},
            producer_id=self._producer_ids[index] if has_producers else -1,
            producer_epoch=self._producer_epochs[index] if has_producers else -1,
            sequence=self._sequences[index] if has_producers else -1,
        )

    # -- watermark / truncation ------------------------------------------------------------
    def advance_high_watermark(self, offset: int) -> None:
        """Move the high watermark forward (never backwards) up to the log end."""
        self.high_watermark = max(self.high_watermark, min(offset, self.log_end_offset))

    def set_high_watermark(self, offset: int) -> None:
        """Force the high watermark (used by followers applying the leader's value)."""
        self.high_watermark = min(offset, self.log_end_offset)

    def truncate_to(self, offset: int) -> List[LogRecord]:
        """Discard every record at or beyond ``offset``.

        Returns the discarded records.  This is the mechanism behind the
        silent message loss observed with ZooKeeper-based Kafka: a stale
        leader that accepted writes during a partition truncates them away
        when it rejoins and follows the new leader.
        """
        if offset >= self.log_end_offset:
            return []
        keep = max(0, offset - self._base_offset)
        discarded = [
            self._record_view(index) for index in range(keep, len(self._values))
        ]
        del self._keys[keep:]
        del self._values[keep:]
        del self._timestamps[keep:]
        del self._produced_ats[keep:]
        del self._epochs[keep:]
        del self._headers[keep:]
        if self._has_producers:
            del self._producer_ids[keep:]
            del self._producer_epochs[keep:]
            del self._sequences[keep:]
        if self._has_txn:
            del self._transactionals[keep:]
            del self._controls[keep:]
        self._size_bytes -= sum(self._sizes[keep:])
        del self._sizes[keep:]
        self.truncated_records += len(discarded)
        self.high_watermark = min(self.high_watermark, self.log_end_offset)
        self.epoch_boundaries = [
            (epoch, start) for epoch, start in self.epoch_boundaries
            if start < self.log_end_offset
        ]
        if self._has_producers:
            # Truncation may have discarded a producer's latest batches; the
            # dedup table must roll back with the log (cold path — faults
            # only).
            self._rebuild_producer_state()
        if self._has_txn:
            # Same for the transaction state: a discarded marker re-opens its
            # transaction, a discarded open re-closes it.
            self._rebuild_txn_state()
        return discarded

    def epoch_start_offset(self, epoch: int) -> Optional[int]:
        """First offset written under ``epoch`` (None if the epoch never led here)."""
        for known_epoch, start in self.epoch_boundaries:
            if known_epoch == epoch:
                return start
        return None

    def __repr__(self) -> str:
        return (
            f"<PartitionLog {self.topic}-{self.partition} "
            f"leo={self.log_end_offset} hw={self.high_watermark}>"
        )
