"""Append-only partition logs (columnar, batch-native).

Each partition replica is backed by a :class:`PartitionLog`: an append-only
sequence of records with a *log end offset* (next offset to be written) and a
*high watermark* (highest offset known to be replicated to the in-sync
replica set; only records below it are visible to consumers).  Leader
failover and follower rejoin are implemented with epoch bookkeeping and
truncation, which is where the ZooKeeper-mode silent message loss comes from.

Storage is columnar: parallel arrays of keys/values/sizes/timestamps rather
than one record object per entry.  The hot paths — :meth:`append_batch` on
produce, :meth:`read_batch` on fetch — move whole :class:`RecordBatch`
payloads with C-level list extends/slices and compute sizes once from the
batch header.  The per-record views (:class:`LogRecord`) are materialized
lazily only on the cold paths (tests, truncation loss accounting,
``record_at`` debugging).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.broker.batch import EMPTY_BATCH, RecordBatch


@dataclass
class LogRecord:
    """One record as viewed out of a partition log (materialized on demand)."""

    offset: int
    key: Any
    value: Any
    size: int
    timestamp: float
    produced_at: float
    leader_epoch: int
    headers: Dict[str, Any] = field(default_factory=dict)


class PartitionLog:
    """An append-only log for one replica of one partition."""

    def __init__(self, topic: str, partition: int = 0) -> None:
        self.topic = topic
        self.partition = partition
        # Columnar storage; index i holds record (base_offset + i).
        self._keys: List[Any] = []
        self._values: List[Any] = []
        self._sizes: List[int] = []
        self._timestamps: List[float] = []
        self._produced_ats: List[float] = []
        self._epochs: List[int] = []
        self._headers: List[Optional[Dict[str, Any]]] = []
        self._base_offset = 0
        self._size_bytes = 0
        self.high_watermark = 0
        #: (epoch, start_offset) pairs, newest last — Kafka's leader epoch cache.
        self.epoch_boundaries: List[Tuple[int, int]] = []
        self.truncated_records = 0

    # -- basic accessors ------------------------------------------------------------
    @property
    def log_end_offset(self) -> int:
        """The offset that the *next* appended record will receive."""
        return self._base_offset + len(self._values)

    @property
    def log_start_offset(self) -> int:
        return self._base_offset

    def __len__(self) -> int:
        return len(self._values)

    @property
    def size_bytes(self) -> int:
        return self._size_bytes

    # -- writes -----------------------------------------------------------------------
    def _note_epoch(self, leader_epoch: int, start_offset: int) -> None:
        if self.epoch_boundaries and leader_epoch < self.epoch_boundaries[-1][0]:
            raise ValueError(
                f"appending with stale epoch {leader_epoch} < "
                f"{self.epoch_boundaries[-1][0]}"
            )
        if not self.epoch_boundaries or self.epoch_boundaries[-1][0] != leader_epoch:
            self.epoch_boundaries.append((leader_epoch, start_offset))

    def append(
        self,
        key: Any,
        value: Any,
        size: int,
        timestamp: float,
        produced_at: float,
        leader_epoch: int,
        headers: Optional[Dict[str, Any]] = None,
    ) -> LogRecord:
        """Append one record and return its view (offset assigned here)."""
        offset = self.log_end_offset
        self._note_epoch(leader_epoch, offset)
        self._keys.append(key)
        self._values.append(value)
        self._sizes.append(size)
        self._timestamps.append(timestamp)
        self._produced_ats.append(produced_at)
        self._epochs.append(leader_epoch)
        self._headers.append(dict(headers) if headers else None)
        self._size_bytes += size
        return self._record_view(offset - self._base_offset)

    def append_batch(
        self, batch: RecordBatch, timestamp: float, leader_epoch: int
    ) -> int:
        """Append a whole produce batch under one epoch; returns its base offset.

        This is the leader-side hot path: one epoch check, C-level column
        extends, and the size accounted once from the batch header.
        """
        base_offset = self.log_end_offset
        count = len(batch)
        if count == 0:
            return base_offset
        self._note_epoch(leader_epoch, base_offset)
        self._keys.extend(batch.keys)
        self._values.extend(batch.values)
        self._sizes.extend(batch.sizes)
        self._timestamps.extend([timestamp] * count)
        self._produced_ats.extend(batch.produced_ats)
        self._epochs.extend([leader_epoch] * count)
        if batch.headers is not None:
            self._headers.extend(batch.headers)
        else:
            self._headers.extend([None] * count)
        self._size_bytes += batch.total_size
        return base_offset

    def append_wire_batch(self, batch: RecordBatch) -> int:
        """Append a batch fetched from a leader (replication path).

        The batch may overlap records we already hold (the follower refetches
        from its LEO after a timeout); the already-present prefix is skipped.
        Returns the number of records actually appended.
        """
        leo = self.log_end_offset
        if batch.base_offset > leo:
            raise ValueError(
                f"non-contiguous append: expected offset {leo}, "
                f"got {batch.base_offset}"
            )
        if batch.base_offset < leo:
            batch = batch.tail(leo - batch.base_offset)
        count = len(batch)
        if count == 0:
            return 0
        epochs = batch.leader_epochs
        if epochs is None:
            self._note_epoch(batch.leader_epoch, batch.base_offset)
            self._epochs.extend([batch.leader_epoch] * count)
        else:
            last = self.epoch_boundaries[-1][0] if self.epoch_boundaries else None
            for index, epoch in enumerate(epochs):
                if epoch != last:
                    self._note_epoch(epoch, batch.base_offset + index)
                    last = epoch
            self._epochs.extend(epochs)
        self._keys.extend(batch.keys)
        self._values.extend(batch.values)
        self._sizes.extend(batch.sizes)
        self._produced_ats.extend(batch.produced_ats)
        if batch.timestamps is not None:
            self._timestamps.extend(batch.timestamps)
        else:
            self._timestamps.extend(batch.produced_ats)
        if batch.headers is not None:
            self._headers.extend(batch.headers)
        else:
            self._headers.extend([None] * count)
        self._size_bytes += batch.total_size
        return count

    def append_record(self, record: LogRecord) -> None:
        """Append a single record view (compat shim for tests/tools)."""
        if record.offset != self.log_end_offset:
            raise ValueError(
                f"non-contiguous append: expected offset {self.log_end_offset}, "
                f"got {record.offset}"
            )
        if not self.epoch_boundaries or self.epoch_boundaries[-1][0] != record.leader_epoch:
            self.epoch_boundaries.append((record.leader_epoch, record.offset))
        self._keys.append(record.key)
        self._values.append(record.value)
        self._sizes.append(record.size)
        self._timestamps.append(record.timestamp)
        self._produced_ats.append(record.produced_at)
        self._epochs.append(record.leader_epoch)
        self._headers.append(dict(record.headers) if record.headers else None)
        self._size_bytes += record.size

    # -- reads -------------------------------------------------------------------------
    def _clamp_range(
        self,
        from_offset: int,
        max_records: Optional[int],
        up_to: Optional[int],
    ) -> Tuple[int, int]:
        if from_offset < self._base_offset:
            from_offset = self._base_offset
        start = from_offset - self._base_offset
        end = len(self._values)
        if up_to is not None:
            end = min(end, max(0, up_to - self._base_offset))
        if max_records is not None:
            end = min(end, start + max_records)
        return start, max(start, end)

    def read_batch(
        self,
        from_offset: int,
        max_records: Optional[int] = None,
        up_to: Optional[int] = None,
        with_epochs: bool = False,
    ) -> RecordBatch:
        """Read a contiguous range as one columnar :class:`RecordBatch`.

        This is the fetch-side hot path: column slices plus one size sum over
        ints — no per-record objects.
        """
        start, end = self._clamp_range(from_offset, max_records, up_to)
        if start >= end:
            return EMPTY_BATCH
        headers = self._headers[start:end]
        return RecordBatch.from_columns(
            self.topic,
            self.partition,
            base_offset=self._base_offset + start,
            keys=self._keys[start:end],
            values=self._values[start:end],
            sizes=self._sizes[start:end],
            produced_ats=self._produced_ats[start:end],
            timestamps=self._timestamps[start:end],
            leader_epochs=self._epochs[start:end] if with_epochs else None,
            headers=headers if any(headers) else None,
        )

    def committed_read_batch(
        self, from_offset: int, max_records: Optional[int] = None
    ) -> RecordBatch:
        """Batch read of records below the high watermark (consumer rule)."""
        return self.read_batch(
            from_offset, max_records=max_records, up_to=self.high_watermark
        )

    def read(
        self,
        from_offset: int,
        max_records: Optional[int] = None,
        up_to: Optional[int] = None,
    ) -> List[LogRecord]:
        """Read records starting at ``from_offset`` as materialized views."""
        start, end = self._clamp_range(from_offset, max_records, up_to)
        return [self._record_view(index) for index in range(start, end)]

    def committed_read(
        self, from_offset: int, max_records: Optional[int] = None
    ) -> List[LogRecord]:
        """Read only records below the high watermark (consumer visibility rule)."""
        return self.read(from_offset, max_records=max_records, up_to=self.high_watermark)

    def record_at(self, offset: int) -> Optional[LogRecord]:
        index = offset - self._base_offset
        if 0 <= index < len(self._values):
            return self._record_view(index)
        return None

    def all_records(self) -> List[LogRecord]:
        return [self._record_view(index) for index in range(len(self._values))]

    def _record_view(self, index: int) -> LogRecord:
        return LogRecord(
            offset=self._base_offset + index,
            key=self._keys[index],
            value=self._values[index],
            size=self._sizes[index],
            timestamp=self._timestamps[index],
            produced_at=self._produced_ats[index],
            leader_epoch=self._epochs[index],
            headers=self._headers[index] or {},
        )

    # -- watermark / truncation ------------------------------------------------------------
    def advance_high_watermark(self, offset: int) -> None:
        """Move the high watermark forward (never backwards) up to the log end."""
        self.high_watermark = max(self.high_watermark, min(offset, self.log_end_offset))

    def set_high_watermark(self, offset: int) -> None:
        """Force the high watermark (used by followers applying the leader's value)."""
        self.high_watermark = min(offset, self.log_end_offset)

    def truncate_to(self, offset: int) -> List[LogRecord]:
        """Discard every record at or beyond ``offset``.

        Returns the discarded records.  This is the mechanism behind the
        silent message loss observed with ZooKeeper-based Kafka: a stale
        leader that accepted writes during a partition truncates them away
        when it rejoins and follows the new leader.
        """
        if offset >= self.log_end_offset:
            return []
        keep = max(0, offset - self._base_offset)
        discarded = [
            self._record_view(index) for index in range(keep, len(self._values))
        ]
        del self._keys[keep:]
        del self._values[keep:]
        del self._timestamps[keep:]
        del self._produced_ats[keep:]
        del self._epochs[keep:]
        del self._headers[keep:]
        self._size_bytes -= sum(self._sizes[keep:])
        del self._sizes[keep:]
        self.truncated_records += len(discarded)
        self.high_watermark = min(self.high_watermark, self.log_end_offset)
        self.epoch_boundaries = [
            (epoch, start) for epoch, start in self.epoch_boundaries
            if start < self.log_end_offset
        ]
        return discarded

    def epoch_start_offset(self, epoch: int) -> Optional[int]:
        """First offset written under ``epoch`` (None if the epoch never led here)."""
        for known_epoch, start in self.epoch_boundaries:
            if known_epoch == epoch:
                return start
        return None

    def __repr__(self) -> str:
        return (
            f"<PartitionLog {self.topic}-{self.partition} "
            f"leo={self.log_end_offset} hw={self.high_watermark}>"
        )
