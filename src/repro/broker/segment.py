"""Segmented log storage: sealed segments, cold-tier files, storage config.

A :class:`~repro.broker.log.PartitionLog` with storage enabled is a sequence
of immutable **sealed segments** plus one mutable **head segment** (the log's
existing columnar arrays).  When the head reaches ``segment_records`` rows it
is *sealed*: its column lists move wholesale (zero copy) into a
:class:`SealedSegment` and the head restarts empty at the next offset.
Fetches below the head locate their segment by bisect over the sealed base
offsets — O(log S) instead of assuming one flat array.

Sealed segments are what retention, compaction and tiering operate on:

* **retention** drops whole sealed segments (never the head) and advances
  the log start offset;
* **compaction** rewrites sealed segments in place keeping the latest value
  per key (retained rows keep their original offsets via a per-segment
  ``offsets`` index, so compacted segments are *gapped* but never renumber);
* the **cold tier** serializes each sealed segment to one file at seal time
  (the payload is the segment's full :class:`~repro.broker.batch.RecordBatch`
  — the same wire encoding replica fetches ship) so its columns can be
  evicted from memory and faulted back on fetch, and a replica can bootstrap
  an entire log by replaying the segment files
  (:meth:`~repro.broker.log.PartitionLog.recover`).

The module also owns the session-wide *log backend* default (mirroring the
engine-path switch): ``pytest --log-backend=segments`` makes every
``PartitionLog`` created without explicit storage run segmented, which is how
the broker/chaos suites re-run against this plane.
"""

from __future__ import annotations

import os
import pickle
from bisect import bisect_left
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

#: Segment roll size used when ``--log-backend=segments`` forces segmentation
#: on logs that did not configure storage explicitly.  Small enough that the
#: ordinary unit/chaos suites actually roll (and so exercise sealed-segment
#: reads), large enough that micro-tests stay fast.
SEGMENTS_BACKEND_DEFAULT_RECORDS = 512

#: Segment roll size used when a topic opts into retention/compaction without
#: choosing an explicit ``segment_records`` (rolling is what makes whole-
#: segment retention/compaction possible at all).
DEFAULT_SEGMENT_RECORDS = 4096

#: Cold-tier segment file format version (pickled payload header).
SEGMENT_FILE_VERSION = 1

_default_backend = "memory"


def set_default_log_backend(backend: str) -> None:
    """Set the session-wide storage plane for logs without explicit config.

    ``"memory"`` (the default) keeps the flat single-array layout —
    byte-identical to the pre-segmentation log.  ``"segments"`` gives every
    :class:`~repro.broker.log.PartitionLog` created *without* an explicit
    :class:`LogStorageConfig` a segmented layout with
    :data:`SEGMENTS_BACKEND_DEFAULT_RECORDS` rows per segment (no retention,
    no compaction — pure segmentation), which is what
    ``pytest --log-backend=segments`` uses to re-run the broker and chaos
    suites on segmented storage.
    """
    if backend not in ("memory", "segments"):
        raise ValueError(
            f"unknown log backend {backend!r}; expected 'memory' or 'segments'"
        )
    global _default_backend
    _default_backend = backend


def default_log_backend() -> str:
    return _default_backend


@dataclass
class LogStorageConfig:
    """Storage shape of one partition log (``None`` anywhere = flat memory).

    Attributes
    ----------
    segment_records:
        Seal the head segment once it holds this many records (``None`` =
        never roll: the log stays one flat array, today's layout).
    retention_bytes:
        Size bound.  Without a cold tier, the oldest sealed segments are
        *deleted* while the log's total bytes exceed this.  With a cold tier
        (``segment_dir`` set) they are *evicted* to their segment files
        instead — the hot tier stays under the bound but every offset remains
        readable (faulted back on fetch).
    retention_ms:
        Time bound in milliseconds (Kafka's unit): sealed segments whose
        newest append timestamp is older than this are deleted — from memory
        *and* the cold tier — and ``log_start_offset`` advances.
    cleanup_policy:
        ``"delete"`` (retention only, the default) or ``"compact"`` — sealed
        segments are periodically rewritten keeping only the latest value per
        key (plus control markers and producer-state carriers; see
        ``docs/log_storage.md``).
    segment_dir:
        Directory for cold-tier segment files (``None`` = memory-only
        segments).  Sealed segments are written through at seal time and the
        file is kept in sync by compaction/truncation.
    compaction_min_segments:
        Run the compactor once this many *newly sealed* segments accumulated
        since the last pass (batching keeps the pass amortized).
    """

    segment_records: Optional[int] = None
    retention_bytes: Optional[int] = None
    retention_ms: Optional[float] = None
    cleanup_policy: str = "delete"
    segment_dir: Optional[str] = None
    compaction_min_segments: int = 2

    def __post_init__(self) -> None:
        if self.cleanup_policy not in ("delete", "compact"):
            raise ValueError(
                f"unknown cleanup_policy {self.cleanup_policy!r}; expected "
                "'delete' or 'compact'"
            )
        if self.segment_records is not None and self.segment_records <= 0:
            raise ValueError("segment_records must be positive")
        if self.retention_bytes is not None and self.retention_bytes <= 0:
            raise ValueError("retention_bytes must be positive")
        if self.retention_ms is not None and self.retention_ms <= 0:
            raise ValueError("retention_ms must be positive")
        if self.compaction_min_segments <= 0:
            raise ValueError("compaction_min_segments must be positive")

    @property
    def retention_seconds(self) -> Optional[float]:
        """``retention_ms`` in the simulator's clock unit (seconds)."""
        if self.retention_ms is None:
            return None
        return self.retention_ms / 1000.0


def resolve_log_storage(
    overrides: Optional[Dict[str, Any]],
    default: Optional[LogStorageConfig],
) -> Optional[LogStorageConfig]:
    """Effective storage config for one partition replica.

    ``overrides`` is the per-topic dict the coordinator ships in its metadata
    snapshot (only for topics that set non-default storage); ``default`` is
    the broker-level :class:`LogStorageConfig` (cluster-wide knobs).  Returns
    ``None`` for the flat memory layout — the session backend default is then
    applied by ``PartitionLog`` itself.
    """
    if overrides:
        base = default if default is not None else LogStorageConfig()
        merged = replace(base, **overrides)
        if merged.segment_records is None:
            # A topic that asked for retention/compaction needs the log to
            # actually roll; give it the stock segment size.
            merged.segment_records = DEFAULT_SEGMENT_RECORDS
        return merged
    return default


def session_default_storage() -> Optional[LogStorageConfig]:
    """Storage applied to logs constructed without explicit config."""
    if _default_backend == "segments":
        return LogStorageConfig(segment_records=SEGMENTS_BACKEND_DEFAULT_RECORDS)
    return None


def segment_file_name(stem: str, base_offset: int) -> str:
    """Kafka-style zero-padded segment file name (sorts by base offset)."""
    return f"{stem}-{base_offset:020d}.seg"


def list_segment_files(segment_dir: str, stem: str) -> List[str]:
    """Paths of ``stem``'s segment files in base-offset order."""
    prefix = f"{stem}-"
    try:
        names = os.listdir(segment_dir)
    except FileNotFoundError:
        return []
    matches = [
        name
        for name in names
        if name.startswith(prefix) and name.endswith(".seg")
    ]
    return [os.path.join(segment_dir, name) for name in sorted(matches)]


class SealedSegment:
    """One immutable sealed chunk of a partition log.

    Columns mirror the head layout; the gated columns (producer identity,
    transaction, headers) are ``None`` when the segment holds none.  A
    ``None`` ``offsets`` index means the rows are contiguous
    ``[base_offset, next_offset)``; after compaction the retained rows keep
    their original offsets in an explicit sorted ``offsets`` list (the
    per-segment index fetches bisect).  The index and boundary metadata stay
    resident even while the data columns are **evicted** to the segment file.
    """

    __slots__ = (
        "base_offset",
        "next_offset",
        "count",
        "size_bytes",
        "max_timestamp",
        "offsets",
        "keys",
        "values",
        "sizes",
        "timestamps",
        "produced_ats",
        "epochs",
        "headers",
        "producer_ids",
        "producer_epochs",
        "sequences",
        "transactionals",
        "controls",
        "evicted",
        "file_path",
    )

    def __init__(self, base_offset: int, next_offset: int) -> None:
        self.base_offset = base_offset
        #: Offset boundary this segment covered when sealed.  Compaction
        #: shrinks ``count`` but never the ``[base_offset, next_offset)``
        #: range, so segment boundaries stay contiguous across the log.
        self.next_offset = next_offset
        self.count = 0
        self.size_bytes = 0
        self.max_timestamp = 0.0
        self.offsets: Optional[List[int]] = None
        self.keys: Optional[List[Any]] = None
        self.values: Optional[List[Any]] = None
        self.sizes: Optional[List[int]] = None
        self.timestamps: Optional[List[float]] = None
        self.produced_ats: Optional[List[float]] = None
        self.epochs: Optional[List[int]] = None
        self.headers: Optional[List[Optional[Dict[str, Any]]]] = None
        self.producer_ids: Optional[List[int]] = None
        self.producer_epochs: Optional[List[int]] = None
        self.sequences: Optional[List[int]] = None
        self.transactionals: Optional[List[bool]] = None
        self.controls: Optional[List[Optional[Tuple[str, int, int]]]] = None
        self.evicted = False
        self.file_path: Optional[str] = None

    # -- offset index -----------------------------------------------------------------
    def offset_at(self, index: int) -> int:
        if self.offsets is None:
            return self.base_offset + index
        return self.offsets[index]

    def index_of(self, offset: int) -> Optional[int]:
        """Row index of ``offset`` (None when compacted away / out of range)."""
        if self.offsets is None:
            index = offset - self.base_offset
            if 0 <= index < self.count:
                return index
            return None
        index = bisect_left(self.offsets, offset)
        if index < self.count and self.offsets[index] == offset:
            return index
        return None

    def index_range(self, from_offset: int, up_to: int) -> Tuple[int, int]:
        """Row range ``[start, end)`` covering offsets ``[from_offset, up_to)``."""
        if self.offsets is None:
            start = max(0, from_offset - self.base_offset)
            end = min(self.count, up_to - self.base_offset)
        else:
            start = bisect_left(self.offsets, from_offset)
            end = bisect_left(self.offsets, up_to)
        return start, max(start, end)

    # -- cold tier --------------------------------------------------------------------
    def write_file(self, path: str) -> None:
        """Write-through serialization (called at seal / after a rewrite).

        The payload reuses the columnar :class:`RecordBatch`-shaped layout of
        the wire format: plain parallel column lists plus the header fields,
        so a reader replays it exactly like a replica fetch would.
        """
        payload = {
            "version": SEGMENT_FILE_VERSION,
            "base_offset": self.base_offset,
            "next_offset": self.next_offset,
            "max_timestamp": self.max_timestamp,
            "offsets": self.offsets,
            "keys": self.keys,
            "values": self.values,
            "sizes": self.sizes,
            "timestamps": self.timestamps,
            "produced_ats": self.produced_ats,
            "epochs": self.epochs,
            "headers": self.headers,
            "producer_ids": self.producer_ids,
            "producer_epochs": self.producer_epochs,
            "sequences": self.sequences,
            "transactionals": self.transactionals,
            "controls": self.controls,
        }
        tmp_path = path + ".tmp"
        with open(tmp_path, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)
        self.file_path = path

    def evict(self) -> None:
        """Drop the data columns; the file (and the offset index) remain."""
        if self.file_path is None:
            raise RuntimeError("cannot evict a sealed segment with no cold file")
        self.keys = None
        self.values = None
        self.sizes = None
        self.timestamps = None
        self.produced_ats = None
        self.epochs = None
        self.headers = None
        self.producer_ids = None
        self.producer_epochs = None
        self.sequences = None
        self.transactionals = None
        self.controls = None
        self.evicted = True

    def load(self) -> None:
        """Fault the data columns back in from the segment file."""
        if not self.evicted:
            return
        if self.file_path is None:
            raise RuntimeError("evicted segment has no cold file to load")
        payload = _read_segment_file(self.file_path)
        self._adopt_payload(payload)
        self.evicted = False

    def _adopt_payload(self, payload: Dict[str, Any]) -> None:
        self.offsets = payload["offsets"]
        self.keys = payload["keys"]
        self.values = payload["values"]
        self.sizes = payload["sizes"]
        self.timestamps = payload["timestamps"]
        self.produced_ats = payload["produced_ats"]
        self.epochs = payload["epochs"]
        self.headers = payload["headers"]
        self.producer_ids = payload["producer_ids"]
        self.producer_epochs = payload["producer_epochs"]
        self.sequences = payload["sequences"]
        self.transactionals = payload["transactionals"]
        self.controls = payload["controls"]
        self.count = len(self.values)
        self.size_bytes = sum(self.sizes)
        self.max_timestamp = payload["max_timestamp"]

    def delete_file(self) -> None:
        if self.file_path is None:
            return
        try:
            os.remove(self.file_path)
        except FileNotFoundError:
            pass
        self.file_path = None

    @classmethod
    def from_file(cls, path: str) -> "SealedSegment":
        """Load one segment file (replica bootstrap / recovery path)."""
        payload = _read_segment_file(path)
        segment = cls(payload["base_offset"], payload["next_offset"])
        segment._adopt_payload(payload)
        segment.file_path = path
        return segment

    def __repr__(self) -> str:
        state = "cold" if self.evicted else "hot"
        return (
            f"<SealedSegment [{self.base_offset},{self.next_offset}) "
            f"n={self.count} bytes={self.size_bytes} {state}>"
        )


def _read_segment_file(path: str) -> Dict[str, Any]:
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    version = payload.get("version")
    if version != SEGMENT_FILE_VERSION:
        raise ValueError(
            f"unsupported segment file version {version!r} in {path}"
        )
    return payload
