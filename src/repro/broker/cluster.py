"""Cluster orchestration helper: coordinator + brokers + topics + clients.

:class:`BrokerCluster` is the convenience layer the stream2gym core uses to
stand up the event streaming platform described in a task description: it
places the coordination service, starts one broker per requested host,
creates the configured topics and hands out producers/consumers bound to
specific hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.broker.broker import Broker, BrokerConfig
from repro.broker.consumer import Consumer, ConsumerConfig
from repro.broker.coordinator import CoordinationMode, Coordinator
from repro.broker.producer import Producer, ProducerConfig
from repro.broker.segment import LogStorageConfig
from repro.broker.topic import TopicConfig
from repro.network.network import Network


@dataclass
class ClusterConfig:
    """Cluster-wide knobs for the event streaming platform."""

    mode: CoordinationMode = CoordinationMode.ZOOKEEPER
    session_timeout: float = 9.0
    failure_check_interval: float = 1.0
    preferred_election_interval: float = 30.0
    #: Ceiling on how long a transaction may stay open before the
    #: coordinator's sweeper aborts it (producers may configure less).
    transaction_timeout: float = 60.0
    broker: BrokerConfig = field(default_factory=BrokerConfig)
    #: Catalog-wide log storage defaults (sweepable like every other knob
    #: here).  When any is set they are folded into one
    #: :class:`~repro.broker.segment.LogStorageConfig` on
    #: ``broker.log_storage``; all-``None`` (the default) keeps the flat
    #: in-memory log layout.  ``retention_ms`` follows Kafka's unit;
    #: ``log_dir`` enables the on-disk cold tier for sealed segments.
    segment_records: Optional[int] = None
    retention_bytes: Optional[int] = None
    retention_ms: Optional[float] = None
    cleanup_policy: str = "delete"
    log_dir: Optional[str] = None

    def __post_init__(self) -> None:
        self.mode = CoordinationMode(self.mode)
        if (
            self.segment_records is not None
            or self.retention_bytes is not None
            or self.retention_ms is not None
            or self.cleanup_policy != "delete"
            or self.log_dir is not None
        ) and self.broker.log_storage is None:
            self.broker.log_storage = LogStorageConfig(
                segment_records=self.segment_records,
                retention_bytes=self.retention_bytes,
                retention_ms=self.retention_ms,
                cleanup_policy=self.cleanup_policy,
                segment_dir=self.log_dir,
            )


class BrokerCluster:
    """One event streaming cluster deployed over an emulated network."""

    def __init__(
        self,
        network: Network,
        coordinator_host: str,
        config: Optional[ClusterConfig] = None,
    ) -> None:
        self.network = network
        self.sim = network.sim
        self.config = config or ClusterConfig()
        self.coordinator = Coordinator(
            network.host(coordinator_host),
            mode=self.config.mode,
            session_timeout=self.config.session_timeout,
            failure_check_interval=self.config.failure_check_interval,
            preferred_election_interval=self.config.preferred_election_interval,
            transaction_timeout=self.config.transaction_timeout,
        )
        self.brokers: Dict[str, Broker] = {}
        self.topics: Dict[str, TopicConfig] = {}
        self.producers: List[Producer] = []
        self.consumers: List[Consumer] = []
        self._started = False

    # -- construction -------------------------------------------------------------------
    def add_broker(self, host_name: str, name: Optional[str] = None) -> Broker:
        """Place a broker on ``host_name``."""
        broker = Broker(
            self.network.host(host_name),
            name=name or f"broker-{host_name}",
            coordinator_host=self.coordinator.host.name,
            mode=self.config.mode,
            config=self.config.broker,
        )
        self.brokers[broker.name] = broker
        return broker

    def add_topic(self, config: TopicConfig) -> None:
        """Declare a topic; it is created on the coordinator at start()."""
        if config.name in self.topics:
            raise ValueError(f"topic {config.name!r} already declared")
        self.topics[config.name] = config

    def create_producer(
        self,
        host_name: str,
        config: Optional[ProducerConfig] = None,
        name: Optional[str] = None,
    ) -> Producer:
        producer = Producer(
            self.network.host(host_name),
            bootstrap=self.bootstrap_hosts(prefer=host_name),
            config=config,
            name=name,
        )
        self.producers.append(producer)
        return producer

    def create_consumer(
        self,
        host_name: str,
        config: Optional[ConsumerConfig] = None,
        name: Optional[str] = None,
        on_record=None,
    ) -> Consumer:
        consumer = Consumer(
            self.network.host(host_name),
            bootstrap=self.bootstrap_hosts(prefer=host_name),
            config=config,
            name=name,
            on_record=on_record,
        )
        self.consumers.append(consumer)
        return consumer

    def bootstrap_hosts(self, prefer: Optional[str] = None) -> List[str]:
        """Broker host names usable for bootstrapping clients.

        A client co-located with a broker lists its local broker first, which
        mirrors the common Kafka deployment practice and matters during
        partitions (the local broker remains reachable over loopback).
        """
        hosts = [broker.host.name for broker in self.brokers.values()]
        if prefer in hosts:
            hosts.remove(prefer)
            hosts.insert(0, prefer)
        return hosts

    # -- lifecycle ----------------------------------------------------------------------
    def start(self, settle_time: float = 5.0) -> None:
        """Start coordinator and brokers and create topics.

        ``settle_time`` schedules topic creation shortly after the brokers
        have registered (registration itself is an asynchronous exchange).
        """
        if self._started:
            return
        self._started = True
        self.coordinator.start()
        for broker in self.brokers.values():
            broker.start()
        self.sim.schedule_callback(
            settle_time, self._create_topics, name="cluster:create-topics"
        )

    def _create_topics(self) -> None:
        for config in self.topics.values():
            self.coordinator.create_topic(config)

    def start_clients(self) -> None:
        for producer in self.producers:
            producer.start()
        for consumer in self.consumers:
            consumer.start()

    # -- introspection --------------------------------------------------------------------
    def broker_on(self, host_name: str) -> Optional[Broker]:
        for broker in self.brokers.values():
            if broker.host.name == host_name:
                return broker
        return None

    def leader_broker(self, topic: str, partition: int = 0) -> Optional[Broker]:
        leader_name = self.coordinator.leader_of(topic, partition)
        return self.brokers.get(leader_name) if leader_name else None

    def partition_states(self, topic: str) -> List:
        """All partition states of one topic, in partition order."""
        states = [
            state
            for state in self.coordinator.partitions.values()
            if state.topic == topic
        ]
        return sorted(states, key=lambda state: state.partition)

    def group_state(self, name: str):
        """Coordinator-side state of one consumer group (or None)."""
        return self.coordinator.group_state(name)

    def total_lost_records(self) -> int:
        """Records that were acknowledged to producers but truncated away."""
        return sum(len(broker.lost_records) for broker in self.brokers.values())

    def total_duplicates_dropped(self) -> int:
        """Duplicate records dropped by broker-side idempotence dedup."""
        return sum(
            broker.metrics["duplicate_records"] for broker in self.brokers.values()
        )

    def total_transactions_committed(self) -> int:
        """Transactions the coordinator drove to CompleteCommit."""
        return self.coordinator.txn_metrics["transactions_committed"]

    def total_transactions_aborted(self) -> int:
        """Transactions aborted (producer-requested, timed out, or fenced)."""
        return self.coordinator.txn_metrics["transactions_aborted"]

    def total_fenced_end_txn(self) -> int:
        """end_txn attempts rejected because a newer instance fenced the caller."""
        return self.coordinator.txn_metrics["fenced_end_txn"]

    def total_control_batches(self) -> int:
        """COMMIT/ABORT control records appended across all partition leaders."""
        return sum(
            broker.metrics["control_batches"] for broker in self.brokers.values()
        )

    def total_control_batch_bytes(self) -> int:
        """Log bytes occupied by transaction control records."""
        return sum(
            broker.metrics["control_batch_bytes"] for broker in self.brokers.values()
        )

    def _total_storage_metric(self, name: str) -> int:
        # Refresh first: fetch-driven fault-in can evict segments between
        # produce-side maintenance passes, leaving broker.metrics stale.
        total = 0
        for broker in self.brokers.values():
            broker.refresh_storage_metrics()
            total += broker.metrics[name]
        return total

    def total_segments_sealed(self) -> int:
        """Head segments sealed across all replicas (storage plane)."""
        return self._total_storage_metric("segments_sealed")

    def total_segments_evicted(self) -> int:
        """Sealed segments evicted to the cold tier across all replicas."""
        return self._total_storage_metric("segments_evicted")

    def total_retention_records_dropped(self) -> int:
        """Records deleted by time/size retention across all replicas."""
        return self._total_storage_metric("retention_records_dropped")

    def total_compaction_records_removed(self) -> int:
        """Records removed by key compaction across all replicas."""
        return self._total_storage_metric("compaction_records_removed")

    def describe(self) -> dict:
        return {
            "mode": self.config.mode.value,
            "coordinator": self.coordinator.host.name,
            "brokers": {name: broker.host.name for name, broker in self.brokers.items()},
            "topics": list(self.topics),
        }
