"""Consumer client.

Consumers subscribe to topics, poll the partition leader for committed
records, track their own offsets and record per-message delivery latency
(time between the producer's send call and local receipt) — the measurement
behind Figures 5, 6b and 6c.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.broker.broker import BROKER_PORT
from repro.network.host import Host
from repro.network.transport import RequestTimeout, Transport


@dataclass
class ConsumerConfig:
    """Consumer tunables (YAML ``consCfg`` keys map onto these)."""

    poll_interval: float = 0.05
    max_records_per_fetch: int = 500
    fetch_timeout: float = 1.0
    metadata_refresh_interval: float = 5.0
    retry_backoff: float = 0.2
    #: Per-record processing cost charged to the consumer's host CPU.
    cpu_per_record: float = 15e-6
    #: Append every received record to ``Consumer.received`` (disable for
    #: large experiments to bound memory; the ``on_record`` callback always
    #: sees the full record either way).
    keep_payloads: bool = True

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.max_records_per_fetch <= 0:
            raise ValueError("max_records_per_fetch must be positive")


@dataclass
class ConsumerRecord:
    """One record as observed by a consumer."""

    topic: str
    partition: int
    offset: int
    key: Any
    value: Any
    size: int
    timestamp: float
    produced_at: float
    received_at: float

    @property
    def latency(self) -> float:
        """End-to-end delivery latency (producer send -> consumer receipt)."""
        return self.received_at - self.produced_at


class Consumer:
    """A consumer client bound to an emulated host."""

    def __init__(
        self,
        host: Host,
        bootstrap: List[str],
        config: Optional[ConsumerConfig] = None,
        name: Optional[str] = None,
        on_record: Optional[Callable[[ConsumerRecord], None]] = None,
    ) -> None:
        if not bootstrap:
            raise ValueError("bootstrap list must contain at least one broker host")
        self.host = host
        self.sim = host.sim
        self.name = name or f"consumer-{host.name}"
        self.bootstrap = list(bootstrap)
        self.config = config or ConsumerConfig()
        self.on_record = on_record
        self.transport = Transport(
            host, default_timeout=self.config.fetch_timeout, max_retries=0
        )
        self.metadata: dict = {"version": -1, "partitions": {}, "brokers": {}}
        self.subscriptions: List[str] = []
        self.offsets: Dict[str, int] = {}
        self.received: List[ConsumerRecord] = []
        self.records_consumed = 0
        self.bytes_consumed = 0
        self.fetch_errors = 0
        self.running = False
        host.register_component(self)

    # -- lifecycle -----------------------------------------------------------------
    def subscribe(self, topics: List[str]) -> None:
        for topic in topics:
            if topic not in self.subscriptions:
                self.subscriptions.append(topic)

    def start(self) -> None:
        if self.running:
            return
        if not self.subscriptions:
            raise RuntimeError(f"{self.name} started without subscriptions")
        self.running = True
        self.sim.process(self._poll_loop(), name=f"{self.name}:poll")

    def stop(self) -> None:
        self.running = False

    def seek(self, topic: str, partition: int, offset: int) -> None:
        self.offsets[f"{topic}-{partition}"] = offset

    def position(self, topic: str, partition: int = 0) -> int:
        return self.offsets.get(f"{topic}-{partition}", 0)

    # -- poll loop ------------------------------------------------------------------
    def _poll_loop(self):
        yield from self._refresh_metadata()
        last_refresh = self.sim.now
        while self.running:
            yield self.sim.timeout(self.config.poll_interval)
            if self.sim.now - last_refresh > self.config.metadata_refresh_interval:
                yield from self._refresh_metadata()
                last_refresh = self.sim.now
            for key, info in list(self.metadata.get("partitions", {}).items()):
                if info["topic"] not in self.subscriptions:
                    continue
                progressed = yield from self._fetch_partition(key, info)
                if progressed is False:
                    # Leader unknown or unreachable: back off a little and
                    # refresh metadata so we discover newly elected leaders.
                    yield self.sim.timeout(self.config.retry_backoff)
                    yield from self._refresh_metadata()
                    last_refresh = self.sim.now

    def _fetch_partition(self, key: str, info: dict):
        leader = info.get("leader")
        broker_entry = self.metadata.get("brokers", {}).get(leader) if leader else None
        if broker_entry is None:
            return False
        leader_host = broker_entry["host"]
        offset = self.offsets.get(key, 0)
        try:
            reply = yield from self.transport.request(
                leader_host,
                BROKER_PORT,
                {
                    "type": "fetch",
                    "topic": info["topic"],
                    "partition": info["partition"],
                    "offset": offset,
                    "max_records": self.config.max_records_per_fetch,
                },
                size=96,
                timeout=self.config.fetch_timeout,
            )
        except RequestTimeout:
            self.fetch_errors += 1
            return False
        if reply.get("error") is not None:
            self.fetch_errors += 1
            return False
        records = reply.get("records", [])
        if not records:
            return True
        cost = self.config.cpu_per_record * len(records)
        if cost > 0:
            yield from self.host.compute(cost)
        if not self.config.keep_payloads and self.on_record is None:
            # Fast path for large experiments: count the batch without
            # materializing a ConsumerRecord per message.
            for wire_record in records:
                self.records_consumed += 1
                self.bytes_consumed += wire_record["size"]
            self.offsets[key] = records[-1]["offset"] + 1
            return True
        for wire_record in records:
            consumer_record = ConsumerRecord(
                topic=info["topic"],
                partition=info["partition"],
                offset=wire_record["offset"],
                key=wire_record["key"],
                value=wire_record["value"],
                size=wire_record["size"],
                timestamp=wire_record["timestamp"],
                produced_at=wire_record["produced_at"],
                received_at=self.sim.now,
            )
            self.records_consumed += 1
            self.bytes_consumed += consumer_record.size
            if self.config.keep_payloads:
                self.received.append(consumer_record)
            if self.on_record is not None:
                self.on_record(consumer_record)
            self.offsets[key] = wire_record["offset"] + 1
        return True

    # -- metadata -----------------------------------------------------------------------
    def _refresh_metadata(self):
        for bootstrap_host in self.bootstrap:
            try:
                reply = yield from self.transport.request(
                    bootstrap_host,
                    BROKER_PORT,
                    {"type": "metadata"},
                    size=32,
                    timeout=1.0,
                )
            except RequestTimeout:
                continue
            metadata = reply.get("metadata")
            if metadata and metadata.get("version", -1) >= self.metadata.get("version", -1):
                self.metadata = metadata
            return
        return

    # -- experiment helpers -----------------------------------------------------------------
    def latencies(self, topic: Optional[str] = None) -> List[float]:
        return [
            record.latency
            for record in self.received
            if topic is None or record.topic == topic
        ]

    def received_keys(self, topic: Optional[str] = None) -> List[Any]:
        return [
            record.key
            for record in self.received
            if topic is None or record.topic == topic
        ]
