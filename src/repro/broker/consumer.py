"""Consumer client.

Consumers subscribe to topics, poll the partition leader for committed
records, track their own offsets and record per-message delivery latency
(time between the producer's send call and local receipt) — the measurement
behind Figures 5, 6b and 6c.

Fetch replies arrive as one :class:`~repro.broker.batch.RecordBatch` per
partition: the consumer decodes the batch *header* (base offset, count,
total size) in O(1) and only materializes per-record
:class:`ConsumerRecord` objects when an observer (``keep_payloads`` or the
``on_record`` callback) actually needs them.  Batch-aware observers can set
``on_batch`` instead and receive the columnar batch directly.

Three assignment modes exist:

* **standalone** (default): the consumer fetches every partition of its
  subscriptions and keeps offsets purely locally;
* **manual** (:meth:`Consumer.assign`): fetch exactly the given partitions —
  the static-sharding mode the partition-aware SPE sources use;
* **group** (``ConsumerConfig.group``): membership, partition assignment and
  committed offsets are managed by the cluster coordinator; the member only
  fetches its assigned partitions and re-syncs on every rebalance (see
  ``docs/partitioning.md`` for the protocol walkthrough).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.broker.batch import RecordBatch
from repro.broker.broker import BROKER_PORT, find_coordinator_host
from repro.broker.coordinator import COORDINATOR_PORT, GROUP_ASSIGNORS
from repro.network.host import Host
from repro.network.transport import RequestTimeout, Transport


@dataclass
class ConsumerConfig:
    """Consumer tunables (YAML ``consCfg`` keys map onto these)."""

    poll_interval: float = 0.05
    max_records_per_fetch: int = 500
    fetch_timeout: float = 1.0
    metadata_refresh_interval: float = 5.0
    retry_backoff: float = 0.2
    #: Per-record processing cost charged to the consumer's host CPU.
    cpu_per_record: float = 15e-6
    #: Append every received record to ``Consumer.received`` (disable for
    #: large experiments to bound memory; the ``on_record`` callback always
    #: sees the full record either way).
    keep_payloads: bool = True
    #: Consumer group to join (``None`` = standalone: the consumer reads every
    #: partition of its subscriptions and manages offsets purely locally).
    group: Optional[str] = None
    #: Partition assignor the group uses: ``"range"`` or ``"roundrobin"``.
    assignor: str = "range"
    #: How often a group member heartbeats the coordinator (each heartbeat
    #: also commits the member's current offsets).
    group_heartbeat_interval: float = 1.0
    #: ``"read_uncommitted"`` (default — every record below the HW, exactly
    #: today's behaviour) or ``"read_committed"`` — fetches stop at the Last
    #: Stable Offset and records of aborted transactions are filtered out, so
    #: only atomically committed transactions are ever observed.
    isolation_level: str = "read_uncommitted"
    #: What to do when a fetch lands below the partition's log start offset
    #: (retention deleted the requested range): ``"earliest"`` (default,
    #: Kafka's semantics for a consumer that fell behind retention — resume
    #: at the new log start), ``"latest"`` (skip to the log end) or
    #: ``"error"`` (count a fetch error and stop polling the partition).
    auto_offset_reset: str = "earliest"

    def __post_init__(self) -> None:
        if self.isolation_level not in ("read_uncommitted", "read_committed"):
            raise ValueError(
                f"unknown isolation_level {self.isolation_level!r}; expected "
                "'read_uncommitted' or 'read_committed'"
            )
        if self.auto_offset_reset not in ("earliest", "latest", "error"):
            raise ValueError(
                f"unknown auto_offset_reset {self.auto_offset_reset!r}; "
                "expected 'earliest', 'latest' or 'error'"
            )
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.max_records_per_fetch <= 0:
            raise ValueError("max_records_per_fetch must be positive")
        if self.group_heartbeat_interval <= 0:
            raise ValueError("group_heartbeat_interval must be positive")
        if self.assignor not in GROUP_ASSIGNORS:
            raise ValueError(
                f"unknown assignor {self.assignor!r}; expected one of {GROUP_ASSIGNORS}"
            )


@dataclass
class ConsumerRecord:
    """One record as observed by a consumer."""

    topic: str
    partition: int
    offset: int
    key: Any
    value: Any
    size: int
    timestamp: float
    produced_at: float
    received_at: float

    @property
    def latency(self) -> float:
        """End-to-end delivery latency (producer send -> consumer receipt)."""
        return self.received_at - self.produced_at


class Consumer:
    """A consumer client bound to an emulated host."""

    def __init__(
        self,
        host: Host,
        bootstrap: List[str],
        config: Optional[ConsumerConfig] = None,
        name: Optional[str] = None,
        on_record: Optional[Callable[[ConsumerRecord], None]] = None,
        on_batch: Optional[Callable[[str, int, RecordBatch, float], None]] = None,
    ) -> None:
        if not bootstrap:
            raise ValueError("bootstrap list must contain at least one broker host")
        self.host = host
        self.sim = host.sim
        self.name = name or f"consumer-{host.name}"
        self.bootstrap = list(bootstrap)
        self.config = config or ConsumerConfig()
        self.on_record = on_record
        #: Batch-level observer: called as ``on_batch(topic, partition, batch,
        #: received_at)`` instead of materializing ConsumerRecords — plus a
        #: trailing ``skip`` frozenset of invisible offsets (control records,
        #: aborted transactions) whenever the batch contains any; the observer
        #: must not surface those records.  Ignored while ``on_record`` or
        #: ``keep_payloads`` demand per-record objects.  Ownership: every
        #: delivered batch is built from fresh column slices and the consumer
        #: never touches it again, so the observer may adopt its column lists
        #: zero-copy (the SPE's fused columnar ingest does — see
        #: ``repro.engine.columns.ColumnBatch.extend_from_wire``).  Empty
        #: batches (including the shared ``EMPTY_BATCH`` sentinel) are never
        #: delivered.
        self.on_batch = on_batch
        self.transport = Transport(
            host, default_timeout=self.config.fetch_timeout, max_retries=0
        )
        self.metadata: dict = {"version": -1, "partitions": {}, "brokers": {}}
        self._poll_targets_cache: tuple = (None, None)
        self.subscriptions: List[str] = []
        self.offsets: Dict[str, int] = {}
        #: Partition keys this consumer may fetch.  ``None`` means "every
        #: partition of the subscribed topics" (standalone consumers); a
        #: frozenset restricts polling to a manual or group assignment.
        self._assigned: Optional[frozenset] = None
        self._assignment_epoch = 0
        #: Group-membership state (meaningful only when ``config.group`` set).
        self.generation = -1
        self.rebalances = 0
        #: Permanent group-protocol error (e.g. an assignor mismatch with the
        #: existing group); set once, then the group loop stops retrying.
        self.group_error: Optional[str] = None
        self._group_joined = False
        self._coordinator_host: Optional[str] = None
        self.received: List[ConsumerRecord] = []
        self.records_consumed = 0
        self.bytes_consumed = 0
        self.fetch_errors = 0
        #: Out-of-range resets applied (``auto_offset_reset`` hits).
        self.offset_resets = 0
        #: Partitions abandoned under ``auto_offset_reset="error"``.
        self._dead_partitions: set = set()
        self.running = False
        host.register_component(self)

    # -- lifecycle -----------------------------------------------------------------
    def subscribe(self, topics: List[str]) -> None:
        for topic in topics:
            if topic not in self.subscriptions:
                self.subscriptions.append(topic)
        self._poll_targets_cache = (None, None)

    def assign(self, topic: str, partitions: List[int]) -> None:
        """Manually assign specific partitions (mutually exclusive with a group).

        The consumer polls exactly the given partitions of ``topic`` (plus any
        earlier manual assignments), never the topic's other partitions — the
        client half of a static sharding plan such as one SPE source instance
        per partition.
        """
        if self.config.group:
            raise RuntimeError(
                f"{self.name} is in group {self.config.group!r}; manual assign() "
                "cannot be combined with group-managed assignment"
            )
        self.subscribe([topic])
        assigned = set(self._assigned or ())
        assigned.update(f"{topic}-{partition}" for partition in partitions)
        self._assigned = frozenset(assigned)
        self._assignment_epoch += 1

    def start(self) -> None:
        if self.running:
            return
        if not self.subscriptions:
            raise RuntimeError(f"{self.name} started without subscriptions")
        self.running = True
        if self.config.group:
            # Nothing may be fetched before the coordinator hands out an
            # assignment, or members would double-consume each other's
            # partitions while joining.
            self._assigned = frozenset()
            self._assignment_epoch += 1
            self.sim.process(self._group_loop(), name=f"{self.name}:group")
        self.sim.process(self._poll_loop(), name=f"{self.name}:poll")

    def stop(self) -> None:
        was_running = self.running
        self.running = False
        if was_running and self.config.group and self._group_joined:
            # Graceful leave: commit final offsets so whoever inherits our
            # partitions resumes exactly where we stopped (no re-delivery).
            self._group_joined = False
            self.sim.process(self._leave_group(), name=f"{self.name}:leave-group")

    def seek(self, topic: str, partition: int, offset: int) -> None:
        """Set the next fetch offset for one partition (per-partition positions)."""
        self.offsets[f"{topic}-{partition}"] = offset

    def position(self, topic: str, partition: int = 0) -> int:
        """Next offset this consumer will fetch for ``topic``/``partition``."""
        return self.offsets.get(f"{topic}-{partition}", 0)

    def assignment(self) -> Optional[List[str]]:
        """Currently assigned partition keys (None = all subscribed partitions)."""
        if self._assigned is None:
            return None
        return sorted(self._assigned)

    # -- poll loop ------------------------------------------------------------------
    def _poll_loop(self):
        yield from self._refresh_metadata()
        last_refresh = self.sim.now
        while self.running:
            yield self.sim.timeout(self.config.poll_interval)
            if self.sim.now - last_refresh > self.config.metadata_refresh_interval:
                yield from self._refresh_metadata()
                last_refresh = self.sim.now
            for key, info in self._poll_targets():
                if self._dead_partitions and key in self._dead_partitions:
                    continue
                progressed = yield from self._fetch_partition(key, info)
                if progressed is False:
                    # Leader unknown or unreachable: back off a little and
                    # refresh metadata so we discover newly elected leaders.
                    yield self.sim.timeout(self.config.retry_backoff)
                    yield from self._refresh_metadata()
                    last_refresh = self.sim.now

    def _poll_targets(self) -> list:
        """Fetchable (key, info) pairs, cached per (metadata version, assignment).

        The poll loop runs tens of thousands of times per simulated run;
        rebuilding the partition list on every tick showed up in profiles.
        Standalone consumers see every partition of their subscriptions;
        assigned consumers (manual or group) only their assigned keys.
        """
        version = (self.metadata.get("version", -1), self._assignment_epoch)
        cached_version, targets = self._poll_targets_cache
        if cached_version != version:
            assigned = self._assigned
            targets = [
                (key, info)
                for key, info in self.metadata.get("partitions", {}).items()
                if info["topic"] in self.subscriptions
                and (assigned is None or key in assigned)
            ]
            self._poll_targets_cache = (version, targets)
        return targets

    # -- group membership -----------------------------------------------------------
    def _group_loop(self):
        """Join the configured group, then heartbeat/commit/resync forever."""
        config = self.config
        while self.running:
            if self._coordinator_host is None:
                yield from self._find_coordinator()
                if self._coordinator_host is None:
                    yield self.sim.timeout(config.retry_backoff)
                    continue
            if not self._group_joined:
                joined = yield from self._join_group()
                if self.group_error is not None:
                    # Permanent protocol error (misconfiguration): retrying
                    # would hammer the coordinator forever without progress.
                    return
                if not joined:
                    yield self.sim.timeout(config.retry_backoff)
                    continue
            yield self.sim.timeout(config.group_heartbeat_interval)
            if self.running:
                yield from self._group_heartbeat()

    def _find_coordinator(self):
        self._coordinator_host = yield from find_coordinator_host(
            self.transport, self.bootstrap
        )

    def _join_group(self):
        try:
            reply = yield from self.transport.request(
                self._coordinator_host,
                COORDINATOR_PORT,
                {
                    "type": "join_group",
                    "group": self.config.group,
                    "member": self.name,
                    "topics": list(self.subscriptions),
                    "assignor": self.config.assignor,
                },
                size=96,
                timeout=1.0,
            )
        except RequestTimeout:
            return False
        if reply.get("error") is not None:
            # Join errors are misconfigurations (assignor mismatch/unknown),
            # never transient: record and give up rather than retry forever.
            self.group_error = reply["error"]
            return False
        self._apply_assignment(reply)
        self._group_joined = True
        return True

    def _group_heartbeat(self):
        offsets = {key: self.offsets.get(key, 0) for key in self._assigned or ()}
        try:
            reply = yield from self.transport.request(
                self._coordinator_host,
                COORDINATOR_PORT,
                {
                    "type": "group_heartbeat",
                    "group": self.config.group,
                    "member": self.name,
                    "generation": self.generation,
                    "offsets": offsets,
                },
                size=64 + 16 * len(offsets),
                timeout=1.0,
            )
        except RequestTimeout:
            return
        error = reply.get("error")
        if error is None:
            return
        if error == "rebalance":
            yield from self._sync_group()
        elif error == "unknown_member":
            # Our session expired (e.g. a long coordinator partition): the
            # coordinator has already handed our partitions to other members,
            # so stop fetching them immediately and rejoin from scratch.
            self._fenced()

    def _fenced(self) -> None:
        """Drop group membership and the assignment until a rejoin succeeds."""
        self._group_joined = False
        self._assigned = frozenset()
        self._assignment_epoch += 1

    def _sync_group(self):
        try:
            reply = yield from self.transport.request(
                self._coordinator_host,
                COORDINATOR_PORT,
                {
                    "type": "sync_group",
                    "group": self.config.group,
                    "member": self.name,
                },
                size=64,
                timeout=1.0,
            )
        except RequestTimeout:
            return
        if reply.get("error") is not None:
            self._fenced()
            return
        self._apply_assignment(reply)

    def _apply_assignment(self, reply: dict) -> None:
        """Adopt a (re)assignment: new partitions start at their committed offset.

        Partitions we already own keep the local position when it is ahead of
        the committed one (commits trail consumption by up to one heartbeat
        interval; rewinding would re-deliver records we already handled).
        """
        new_assigned = frozenset(reply["assignment"])
        committed = reply.get("offsets", {})
        previous = self._assigned or frozenset()
        for key in new_assigned:
            offset = committed.get(key, 0)
            if key in previous:
                offset = max(offset, self.offsets.get(key, 0))
            self.offsets[key] = offset
        if reply["generation"] != self.generation:
            self.rebalances += 1
        self.generation = reply["generation"]
        self._assigned = new_assigned
        self._assignment_epoch += 1

    def _leave_group(self):
        offsets = {key: self.offsets.get(key, 0) for key in self._assigned or ()}
        if self._coordinator_host is None:
            return
        try:
            yield from self.transport.request(
                self._coordinator_host,
                COORDINATOR_PORT,
                {
                    "type": "leave_group",
                    "group": self.config.group,
                    "member": self.name,
                    "offsets": offsets,
                },
                size=64 + 16 * len(offsets),
                timeout=1.0,
            )
        except RequestTimeout:
            return

    def _fetch_partition(self, key: str, info: dict):
        leader = info.get("leader")
        broker_entry = self.metadata.get("brokers", {}).get(leader) if leader else None
        if broker_entry is None:
            return False
        leader_host = broker_entry["host"]
        offset = self.offsets.get(key, 0)
        fetch_request = {
            "type": "fetch",
            "topic": info["topic"],
            "partition": info["partition"],
            "offset": offset,
            "max_records": self.config.max_records_per_fetch,
        }
        if self.config.isolation_level != "read_uncommitted":
            # Only stamped when non-default, so default-path requests are
            # byte-identical to the pre-transactions wire format.
            fetch_request["isolation"] = self.config.isolation_level
        try:
            reply = yield from self.transport.request(
                leader_host,
                BROKER_PORT,
                fetch_request,
                size=96,
                timeout=self.config.fetch_timeout,
            )
        except RequestTimeout:
            self.fetch_errors += 1
            return False
        if reply.get("error") == "offset_out_of_range":
            # Retention deleted the range we asked for.  Apply the configured
            # reset policy against the bounds the broker returned (exactly
            # Kafka's client-side auto.offset.reset handling).
            policy = self.config.auto_offset_reset
            if policy == "error":
                self.fetch_errors += 1
                self._dead_partitions.add(key)
                return True
            self.offsets[key] = (
                reply["log_end_offset"]
                if policy == "latest"
                else reply["log_start_offset"]
            )
            self.offset_resets += 1
            return True
        if reply.get("error") is not None:
            self.fetch_errors += 1
            return False
        batch: RecordBatch = reply["batch"]
        count = len(batch)
        if not count:
            return True
        cost = self.config.cpu_per_record * count
        if cost > 0:
            yield from self.host.compute(cost)
        if not self.running:
            # Stopped while the fetch was in flight: drop the batch without
            # advancing offsets — a group member's leave-time committed
            # offsets must match what it actually delivered.
            return True
        # Offsets the broker marked invisible: control records (always) and,
        # under read_committed, records of aborted transactions.  They ship
        # inside the contiguous batch but never reach the application, and
        # they do not count towards consumer-visible record/byte metrics.
        skip_offsets = reply.get("skip_offsets")
        if not self.config.keep_payloads and self.on_record is None:
            # Fast path for large experiments: the batch header already
            # carries the count, byte total and next offset — O(1) per fetch.
            if skip_offsets:
                self.records_consumed += count - len(skip_offsets)
                self.bytes_consumed += batch.total_size - reply.get("skipped_bytes", 0)
            else:
                self.records_consumed += count
                self.bytes_consumed += batch.total_size
            self.offsets[key] = batch.next_offset
            if self.on_batch is not None:
                if skip_offsets:
                    self.on_batch(
                        info["topic"],
                        info["partition"],
                        batch,
                        self.sim.now,
                        frozenset(skip_offsets),
                    )
                else:
                    self.on_batch(info["topic"], info["partition"], batch, self.sim.now)
            return True
        now = self.sim.now
        topic = info["topic"]
        partition = info["partition"]
        skip = frozenset(skip_offsets) if skip_offsets else None
        for index, (offset, record_key, value, size, produced_at) in enumerate(
            batch.iter_records()
        ):
            if skip is not None and offset in skip:
                self.offsets[key] = offset + 1
                continue
            consumer_record = ConsumerRecord(
                topic=topic,
                partition=partition,
                offset=offset,
                key=record_key,
                value=value,
                size=size,
                # Row index, not offset arithmetic: compacted ranges carry
                # gapped per-record offsets.
                timestamp=batch.timestamp_at(index, now),
                produced_at=produced_at,
                received_at=now,
            )
            self.records_consumed += 1
            self.bytes_consumed += size
            if self.config.keep_payloads:
                self.received.append(consumer_record)
            if self.on_record is not None:
                self.on_record(consumer_record)
            self.offsets[key] = offset + 1
        return True

    # -- metadata -----------------------------------------------------------------------
    def _refresh_metadata(self):
        for bootstrap_host in self.bootstrap:
            try:
                reply = yield from self.transport.request(
                    bootstrap_host,
                    BROKER_PORT,
                    {"type": "metadata"},
                    size=32,
                    timeout=1.0,
                )
            except RequestTimeout:
                continue
            metadata = reply.get("metadata")
            if metadata and metadata.get("version", -1) >= self.metadata.get("version", -1):
                self.metadata = metadata
            return
        return

    # -- experiment helpers -----------------------------------------------------------------
    def latencies(self, topic: Optional[str] = None) -> List[float]:
        return [
            record.latency
            for record in self.received
            if topic is None or record.topic == topic
        ]

    def received_keys(self, topic: Optional[str] = None) -> List[Any]:
        return [
            record.key
            for record in self.received
            if topic is None or record.topic == topic
        ]
