"""Consumer client.

Consumers subscribe to topics, poll the partition leader for committed
records, track their own offsets and record per-message delivery latency
(time between the producer's send call and local receipt) — the measurement
behind Figures 5, 6b and 6c.

Fetch replies arrive as one :class:`~repro.broker.batch.RecordBatch` per
partition: the consumer decodes the batch *header* (base offset, count,
total size) in O(1) and only materializes per-record
:class:`ConsumerRecord` objects when an observer (``keep_payloads`` or the
``on_record`` callback) actually needs them.  Batch-aware observers can set
``on_batch`` instead and receive the columnar batch directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.broker.batch import RecordBatch
from repro.broker.broker import BROKER_PORT
from repro.network.host import Host
from repro.network.transport import RequestTimeout, Transport


@dataclass
class ConsumerConfig:
    """Consumer tunables (YAML ``consCfg`` keys map onto these)."""

    poll_interval: float = 0.05
    max_records_per_fetch: int = 500
    fetch_timeout: float = 1.0
    metadata_refresh_interval: float = 5.0
    retry_backoff: float = 0.2
    #: Per-record processing cost charged to the consumer's host CPU.
    cpu_per_record: float = 15e-6
    #: Append every received record to ``Consumer.received`` (disable for
    #: large experiments to bound memory; the ``on_record`` callback always
    #: sees the full record either way).
    keep_payloads: bool = True

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.max_records_per_fetch <= 0:
            raise ValueError("max_records_per_fetch must be positive")


@dataclass
class ConsumerRecord:
    """One record as observed by a consumer."""

    topic: str
    partition: int
    offset: int
    key: Any
    value: Any
    size: int
    timestamp: float
    produced_at: float
    received_at: float

    @property
    def latency(self) -> float:
        """End-to-end delivery latency (producer send -> consumer receipt)."""
        return self.received_at - self.produced_at


class Consumer:
    """A consumer client bound to an emulated host."""

    def __init__(
        self,
        host: Host,
        bootstrap: List[str],
        config: Optional[ConsumerConfig] = None,
        name: Optional[str] = None,
        on_record: Optional[Callable[[ConsumerRecord], None]] = None,
        on_batch: Optional[Callable[[str, int, RecordBatch, float], None]] = None,
    ) -> None:
        if not bootstrap:
            raise ValueError("bootstrap list must contain at least one broker host")
        self.host = host
        self.sim = host.sim
        self.name = name or f"consumer-{host.name}"
        self.bootstrap = list(bootstrap)
        self.config = config or ConsumerConfig()
        self.on_record = on_record
        #: Batch-level observer: called as ``on_batch(topic, partition, batch,
        #: received_at)`` instead of materializing ConsumerRecords.  Ignored
        #: while ``on_record`` or ``keep_payloads`` demand per-record objects.
        self.on_batch = on_batch
        self.transport = Transport(
            host, default_timeout=self.config.fetch_timeout, max_retries=0
        )
        self.metadata: dict = {"version": -1, "partitions": {}, "brokers": {}}
        self._poll_targets_cache: tuple = (None, None)
        self.subscriptions: List[str] = []
        self.offsets: Dict[str, int] = {}
        self.received: List[ConsumerRecord] = []
        self.records_consumed = 0
        self.bytes_consumed = 0
        self.fetch_errors = 0
        self.running = False
        host.register_component(self)

    # -- lifecycle -----------------------------------------------------------------
    def subscribe(self, topics: List[str]) -> None:
        for topic in topics:
            if topic not in self.subscriptions:
                self.subscriptions.append(topic)
        self._poll_targets_cache = (None, None)

    def start(self) -> None:
        if self.running:
            return
        if not self.subscriptions:
            raise RuntimeError(f"{self.name} started without subscriptions")
        self.running = True
        self.sim.process(self._poll_loop(), name=f"{self.name}:poll")

    def stop(self) -> None:
        self.running = False

    def seek(self, topic: str, partition: int, offset: int) -> None:
        self.offsets[f"{topic}-{partition}"] = offset

    def position(self, topic: str, partition: int = 0) -> int:
        return self.offsets.get(f"{topic}-{partition}", 0)

    # -- poll loop ------------------------------------------------------------------
    def _poll_loop(self):
        yield from self._refresh_metadata()
        last_refresh = self.sim.now
        while self.running:
            yield self.sim.timeout(self.config.poll_interval)
            if self.sim.now - last_refresh > self.config.metadata_refresh_interval:
                yield from self._refresh_metadata()
                last_refresh = self.sim.now
            for key, info in self._poll_targets():
                progressed = yield from self._fetch_partition(key, info)
                if progressed is False:
                    # Leader unknown or unreachable: back off a little and
                    # refresh metadata so we discover newly elected leaders.
                    yield self.sim.timeout(self.config.retry_backoff)
                    yield from self._refresh_metadata()
                    last_refresh = self.sim.now

    def _poll_targets(self) -> list:
        """Subscribed (key, info) pairs, cached per metadata version.

        The poll loop runs tens of thousands of times per simulated run;
        rebuilding the partition list on every tick showed up in profiles.
        """
        version = self.metadata.get("version", -1)
        cached_version, targets = self._poll_targets_cache
        if cached_version != version:
            targets = [
                (key, info)
                for key, info in self.metadata.get("partitions", {}).items()
                if info["topic"] in self.subscriptions
            ]
            self._poll_targets_cache = (version, targets)
        return targets

    def _fetch_partition(self, key: str, info: dict):
        leader = info.get("leader")
        broker_entry = self.metadata.get("brokers", {}).get(leader) if leader else None
        if broker_entry is None:
            return False
        leader_host = broker_entry["host"]
        offset = self.offsets.get(key, 0)
        try:
            reply = yield from self.transport.request(
                leader_host,
                BROKER_PORT,
                {
                    "type": "fetch",
                    "topic": info["topic"],
                    "partition": info["partition"],
                    "offset": offset,
                    "max_records": self.config.max_records_per_fetch,
                },
                size=96,
                timeout=self.config.fetch_timeout,
            )
        except RequestTimeout:
            self.fetch_errors += 1
            return False
        if reply.get("error") is not None:
            self.fetch_errors += 1
            return False
        batch: RecordBatch = reply["batch"]
        count = len(batch)
        if not count:
            return True
        cost = self.config.cpu_per_record * count
        if cost > 0:
            yield from self.host.compute(cost)
        if not self.config.keep_payloads and self.on_record is None:
            # Fast path for large experiments: the batch header already
            # carries the count, byte total and next offset — O(1) per fetch.
            self.records_consumed += count
            self.bytes_consumed += batch.total_size
            self.offsets[key] = batch.next_offset
            if self.on_batch is not None:
                self.on_batch(info["topic"], info["partition"], batch, self.sim.now)
            return True
        now = self.sim.now
        topic = info["topic"]
        partition = info["partition"]
        for offset, record_key, value, size, produced_at in batch.iter_records():
            consumer_record = ConsumerRecord(
                topic=topic,
                partition=partition,
                offset=offset,
                key=record_key,
                value=value,
                size=size,
                timestamp=batch.timestamp_at(offset - batch.base_offset, now),
                produced_at=produced_at,
                received_at=now,
            )
            self.records_consumed += 1
            self.bytes_consumed += size
            if self.config.keep_payloads:
                self.received.append(consumer_record)
            if self.on_record is not None:
                self.on_record(consumer_record)
            self.offsets[key] = offset + 1
        return True

    # -- metadata -----------------------------------------------------------------------
    def _refresh_metadata(self):
        for bootstrap_host in self.bootstrap:
            try:
                reply = yield from self.transport.request(
                    bootstrap_host,
                    BROKER_PORT,
                    {"type": "metadata"},
                    size=32,
                    timeout=1.0,
                )
            except RequestTimeout:
                continue
            metadata = reply.get("metadata")
            if metadata and metadata.get("version", -1) >= self.metadata.get("version", -1):
                self.metadata = metadata
            return
        return

    # -- experiment helpers -----------------------------------------------------------------
    def latencies(self, topic: Optional[str] = None) -> List[float]:
        return [
            record.latency
            for record in self.received
            if topic is None or record.topic == topic
        ]

    def received_keys(self, topic: Optional[str] = None) -> List[Any]:
        return [
            record.key
            for record in self.received
            if topic is None or record.topic == topic
        ]
