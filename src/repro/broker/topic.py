"""Topic configuration and partition state metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class TopicConfig:
    """Static configuration of one topic (from the ``topicCfg`` graph attribute).

    Attributes
    ----------
    name:
        Topic name.
    partitions:
        Number of partitions (the paper's scenarios use 1 per topic).
    replication_factor:
        Number of replicas per partition.
    preferred_leader:
        Broker name that should lead partition 0 (stream2gym lets users pin a
        "primary broker" per topic); remaining replicas are assigned by the
        cluster.
    """

    name: str
    partitions: int = 1
    replication_factor: int = 1
    preferred_leader: Optional[str] = None
    retention_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("topic name must be non-empty")
        if self.partitions <= 0:
            raise ValueError("partitions must be positive")
        if self.replication_factor <= 0:
            raise ValueError("replication_factor must be positive")


@dataclass
class PartitionState:
    """Dynamic, cluster-wide view of one topic-partition.

    This is the metadata the controller maintains and distributes: the replica
    assignment (first entry = preferred leader), the current leader, the
    leader epoch, and the in-sync replica set.
    """

    topic: str
    partition: int
    replicas: List[str]
    leader: Optional[str] = None
    leader_epoch: int = 0
    isr: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("a partition needs at least one replica")
        if not self.isr:
            self.isr = list(self.replicas)
        if self.leader is None:
            self.leader = self.replicas[0]

    @property
    def key(self) -> str:
        return f"{self.topic}-{self.partition}"

    @property
    def preferred_leader(self) -> str:
        return self.replicas[0]

    def copy(self) -> "PartitionState":
        return PartitionState(
            topic=self.topic,
            partition=self.partition,
            replicas=list(self.replicas),
            leader=self.leader,
            leader_epoch=self.leader_epoch,
            isr=list(self.isr),
        )

    def shrink_isr(self, broker: str) -> None:
        if broker in self.isr and len(self.isr) > 1:
            self.isr.remove(broker)

    def expand_isr(self, broker: str) -> None:
        if broker in self.replicas and broker not in self.isr:
            self.isr.append(broker)

    def __repr__(self) -> str:
        return (
            f"<PartitionState {self.key} leader={self.leader} epoch={self.leader_epoch} "
            f"isr={self.isr}>"
        )
