"""Topic configuration and partition state metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class TopicConfig:
    """Static configuration of one topic (from the ``topicCfg`` graph attribute).

    Attributes
    ----------
    name:
        Topic name.
    partitions:
        Number of partitions (the paper's scenarios use 1 per topic).
    replication_factor:
        Number of replicas per partition.
    preferred_leader:
        Broker name that should lead partition 0 (stream2gym lets users pin a
        "primary broker" per topic); remaining replicas are assigned by the
        cluster.
    retention_bytes / retention_ms / segment_records / cleanup_policy:
        Per-topic log storage knobs (Kafka's ``retention.bytes`` /
        ``retention.ms`` / ``segment.*`` / ``cleanup.policy``).  All default
        to "unset" — topics then inherit the broker-wide
        :class:`~repro.broker.segment.LogStorageConfig` (or the flat
        in-memory layout when no storage is configured at all).  Non-default
        values travel in the metadata snapshot's per-partition ``"log"``
        entry and are merged over the broker default on every replica.
    """

    name: str
    partitions: int = 1
    replication_factor: int = 1
    preferred_leader: Optional[str] = None
    retention_bytes: Optional[int] = None
    retention_ms: Optional[float] = None
    segment_records: Optional[int] = None
    cleanup_policy: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("topic name must be non-empty")
        if self.partitions <= 0:
            raise ValueError("partitions must be positive")
        if self.replication_factor <= 0:
            raise ValueError("replication_factor must be positive")
        if self.cleanup_policy is not None and self.cleanup_policy not in (
            "delete",
            "compact",
        ):
            raise ValueError(
                f"unknown cleanup_policy {self.cleanup_policy!r}; expected "
                "'delete' or 'compact'"
            )
        if self.retention_bytes is not None and self.retention_bytes <= 0:
            raise ValueError("retention_bytes must be positive")
        if self.retention_ms is not None and self.retention_ms <= 0:
            raise ValueError("retention_ms must be positive")
        if self.segment_records is not None and self.segment_records <= 0:
            raise ValueError("segment_records must be positive")

    def storage_overrides(self) -> Optional[dict]:
        """The topic's non-default storage knobs as a metadata-snapshot dict
        (``None`` — no ``"log"`` entry at all — when everything is default,
        keeping default snapshots byte-identical on the wire)."""
        overrides = {}
        if self.segment_records is not None:
            overrides["segment_records"] = self.segment_records
        if self.retention_bytes is not None:
            overrides["retention_bytes"] = self.retention_bytes
        if self.retention_ms is not None:
            overrides["retention_ms"] = self.retention_ms
        if self.cleanup_policy is not None:
            overrides["cleanup_policy"] = self.cleanup_policy
        return overrides or None


@dataclass
class PartitionState:
    """Dynamic, cluster-wide view of one topic-partition.

    This is the metadata the controller maintains and distributes: the replica
    assignment (first entry = preferred leader), the current leader, the
    leader epoch, and the in-sync replica set.
    """

    topic: str
    partition: int
    replicas: List[str]
    leader: Optional[str] = None
    leader_epoch: int = 0
    isr: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("a partition needs at least one replica")
        if not self.isr:
            self.isr = list(self.replicas)
        if self.leader is None:
            self.leader = self.replicas[0]

    @property
    def key(self) -> str:
        return f"{self.topic}-{self.partition}"

    @property
    def preferred_leader(self) -> str:
        return self.replicas[0]

    def copy(self) -> "PartitionState":
        return PartitionState(
            topic=self.topic,
            partition=self.partition,
            replicas=list(self.replicas),
            leader=self.leader,
            leader_epoch=self.leader_epoch,
            isr=list(self.isr),
        )

    def shrink_isr(self, broker: str) -> None:
        if broker in self.isr and len(self.isr) > 1:
            self.isr.remove(broker)

    def expand_isr(self, broker: str) -> None:
        if broker in self.replicas and broker not in self.isr:
            self.isr.append(broker)

    def __repr__(self) -> str:
        return (
            f"<PartitionState {self.key} leader={self.leader} epoch={self.leader_epoch} "
            f"isr={self.isr}>"
        )
