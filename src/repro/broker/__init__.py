"""Event streaming platform (Apache Kafka substitute).

This package implements, at protocol level, the parts of Apache Kafka that
stream2gym's evaluation exercises:

* topics with replicated, partitioned, append-only logs;
* a cluster controller driven by either a ZooKeeper-style coordination
  service (sessions + watches, reproducing the silent message loss on
  network-partition merge reported in the paper) or a Raft-style metadata
  quorum (``KRaft``, which does not lose messages);
* leader election from the in-sync replica set, follower log truncation on
  rejoin, and preferred-replica (re-)election;
* producers with buffer memory, batching, retries, acknowledgements and
  request timeouts;
* consumers with offset tracking, polling fetches and delivery latency
  accounting.

Public entry points are :class:`BrokerCluster` (server side),
:class:`Producer` and :class:`Consumer` (client side).
"""

from repro.broker.broker import Broker, BrokerConfig
from repro.broker.cluster import BrokerCluster, ClusterConfig, CoordinationMode
from repro.broker.consumer import Consumer, ConsumerConfig, ConsumerRecord
from repro.broker.coordinator import Coordinator, GroupState, assign_range, assign_roundrobin
from repro.broker.errors import (
    BrokerUnavailableError,
    DeliveryFailed,
    NotLeaderError,
    UnknownTopicError,
)
from repro.broker.log import LogRecord, PartitionLog
from repro.broker.message import ProducerRecord, RecordMetadata
from repro.broker.producer import Producer, ProducerConfig
from repro.broker.topic import PartitionState, TopicConfig

__all__ = [
    "Broker",
    "BrokerConfig",
    "BrokerCluster",
    "ClusterConfig",
    "CoordinationMode",
    "Coordinator",
    "GroupState",
    "assign_range",
    "assign_roundrobin",
    "Producer",
    "ProducerConfig",
    "ProducerRecord",
    "RecordMetadata",
    "Consumer",
    "ConsumerConfig",
    "ConsumerRecord",
    "TopicConfig",
    "PartitionState",
    "PartitionLog",
    "LogRecord",
    "NotLeaderError",
    "UnknownTopicError",
    "BrokerUnavailableError",
    "DeliveryFailed",
]
