"""Broker server: replicated partition logs plus the produce/fetch protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.broker.coordinator import COORDINATOR_PORT, CoordinationMode
from repro.broker.errors import (
    NotEnoughReplicasError,
    NotLeaderError,
    UnknownTopicError,
)
from repro.broker.batch import CONTROL_RECORD_SIZE, RecordBatch
from repro.broker.log import LogRecord, PartitionLog
from repro.broker.segment import LogStorageConfig, resolve_log_storage
from repro.network.host import Host
from repro.network.packet import estimate_size
from repro.network.transport import Request, RequestTimeout, Response, Transport

BROKER_PORT = 9092


def find_coordinator_host(transport: Transport, bootstrap: List[str], timeout: float = 1.0):
    """Generator: ask bootstrap brokers where the coordinator lives.

    Shared by every group-management and idempotent-producer client.  Returns
    the coordinator's host name, or ``None`` when no bootstrap broker answered
    (all timed out) or the first responsive one reported no coordinator —
    mirroring Kafka clients, which take the first broker's word rather than
    polling the rest.
    """
    for bootstrap_host in bootstrap:
        try:
            reply = yield from transport.request(
                bootstrap_host,
                BROKER_PORT,
                {"type": "find_coordinator"},
                size=32,
                timeout=timeout,
            )
        except RequestTimeout:
            continue
        if reply.get("error") is None:
            return reply["coordinator_host"]
        return None
    return None


@dataclass
class BrokerConfig:
    """Tunable broker parameters (a subset of Kafka's ``server.properties``).

    The defaults reflect the "tuned for emulation scale" settings described in
    the paper's design section (smaller buffers, tighter intervals) rather
    than stock Kafka defaults.
    """

    heartbeat_interval: float = 1.5
    replica_fetch_interval: float = 0.1
    replica_fetch_max_records: int = 500
    replica_lag_max: float = 10.0
    min_insync_replicas: int = 1
    #: CPU seconds charged per handled request and per record, modelling the
    #: JVM broker's request-handler work on the shared emulation host.
    cpu_per_request: float = 60e-6
    cpu_per_record: float = 12e-6
    #: In KRaft mode a leader only accepts produce requests while its
    #: coordinator session has been refreshed within this horizon.
    leadership_lease: float = 4.0
    #: Broker-wide default log storage shape (segment roll size, retention,
    #: cleanup policy, cold tier).  ``None`` — the default — keeps every
    #: partition on the flat single-array layout; per-topic overrides from
    #: the metadata snapshot are merged on top (``resolve_log_storage``).
    log_storage: Optional[LogStorageConfig] = None


@dataclass
class ReplicaState:
    """Leader-side bookkeeping for one locally-led partition."""

    follower_offsets: Dict[str, int] = field(default_factory=dict)
    follower_caught_up_at: Dict[str, float] = field(default_factory=dict)
    #: When this broker (re)took leadership — new followers get a grace
    #: period of ``replica_lag_max`` from this point before ISR eviction.
    since: float = 0.0


class Broker:
    """One broker process bound to an emulated host."""

    def __init__(
        self,
        host: Host,
        name: Optional[str] = None,
        coordinator_host: Optional[str] = None,
        mode: CoordinationMode = CoordinationMode.ZOOKEEPER,
        config: Optional[BrokerConfig] = None,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.name = name or f"broker-{host.name}"
        self.coordinator_host = coordinator_host
        self.mode = CoordinationMode(mode)
        self.config = config or BrokerConfig()
        self.transport = Transport(host, default_timeout=1.0, max_retries=0)
        self.logs: Dict[str, PartitionLog] = {}
        self.metadata: dict = {"version": -1, "partitions": {}, "brokers": {}}
        self.replica_states: Dict[str, ReplicaState] = {}
        self._local_epochs: Dict[str, int] = {}
        self._truncation_pending: Dict[str, bool] = {}
        self.last_session_refresh: float = host.sim.now
        self._metadata_size_cache: tuple = (None, 0)
        self.running = False
        self.records_appended = 0
        self.records_served = 0
        self.produce_rejections = 0
        #: Idempotence counters (tests observe dedup hits here): batches and
        #: records dropped as duplicate retries, and produces rejected
        #: because a newer producer epoch fenced the sender.
        self.metrics: Dict[str, int] = {
            "duplicate_batches": 0,
            "duplicate_records": 0,
            "fenced_produces": 0,
            #: Transaction counters: COMMIT/ABORT control records appended on
            #: locally-led partitions and the log bytes they occupy.
            "control_batches": 0,
            "control_batch_bytes": 0,
            #: Storage-plane counters, folded up from per-log ``stats`` after
            #: every maintenance pass (all zero on flat-layout logs).
            "segments_sealed": 0,
            "segments_evicted": 0,
            "retention_records_dropped": 0,
            "compaction_records_removed": 0,
        }
        self.lost_records: List[LogRecord] = []
        self.transport.register(BROKER_PORT, self._handle)
        host.register_component(self)

    # -- lifecycle -----------------------------------------------------------------------
    def start(self) -> None:
        """Register with the coordinator and start background loops."""
        if self.running:
            return
        self.running = True
        self.sim.process(self._control_loop(), name=f"{self.name}:control")
        self.sim.process(self._replica_fetch_loop(), name=f"{self.name}:replica-fetcher")

    def stop(self) -> None:
        self.running = False

    # -- control plane -------------------------------------------------------------------
    def _control_loop(self):
        """Register, then heartbeat and refresh metadata forever."""
        if self.coordinator_host is not None:
            while True:
                try:
                    yield from self.transport.request(
                        self.coordinator_host,
                        COORDINATOR_PORT,
                        {"type": "register", "broker": self.name, "host": self.host.name},
                        timeout=1.0,
                    )
                    self.last_session_refresh = self.sim.now
                    break
                except RequestTimeout:
                    yield self.sim.timeout(1.0)
        while self.running:
            yield self.sim.timeout(self.config.heartbeat_interval)
            if self.coordinator_host is None:
                continue
            try:
                reply = yield from self.transport.request(
                    self.coordinator_host,
                    COORDINATOR_PORT,
                    {"type": "heartbeat", "broker": self.name},
                    timeout=1.0,
                )
            except RequestTimeout:
                continue
            self.last_session_refresh = self.sim.now
            if reply.get("version", -1) != self.metadata.get("version", -1):
                yield from self._refresh_metadata()

    def _refresh_metadata(self):
        try:
            snapshot = yield from self.transport.request(
                self.coordinator_host,
                COORDINATOR_PORT,
                {"type": "metadata"},
                timeout=1.0,
            )
        except RequestTimeout:
            return
        self.apply_metadata(snapshot)

    def apply_metadata(self, snapshot: dict) -> None:
        """Apply a metadata snapshot: create logs, pick up/drop leadership."""
        self.metadata = snapshot
        for key, info in snapshot.get("partitions", {}).items():
            if self.name not in info["replicas"]:
                continue
            if key not in self.logs:
                self.logs[key] = PartitionLog(
                    info["topic"],
                    info["partition"],
                    storage=resolve_log_storage(
                        info.get("log"), self.config.log_storage
                    ),
                    file_tag=self.name,
                )
            previous_epoch = self._local_epochs.get(key, -1)
            new_epoch = info["leader_epoch"]
            if new_epoch > previous_epoch:
                self._local_epochs[key] = new_epoch
                if info["leader"] == self.name:
                    # Taking (or keeping) leadership under a new epoch.
                    self.replica_states.setdefault(key, ReplicaState(since=self.sim.now))
                else:
                    # Now following a (possibly new) leader: reconcile our log
                    # with the leader's before fetching again.
                    self._truncation_pending[key] = True

    @property
    def session_fresh(self) -> bool:
        """True while the broker's coordinator session is within the lease window."""
        return (self.sim.now - self.last_session_refresh) <= self.config.leadership_lease

    # -- helpers -----------------------------------------------------------------------------
    def _partition_info(self, key: str) -> Optional[dict]:
        return self.metadata.get("partitions", {}).get(key)

    def _is_leader(self, key: str) -> bool:
        info = self._partition_info(key)
        return bool(info) and info["leader"] == self.name

    def _leader_hint(self, key: str) -> Optional[str]:
        info = self._partition_info(key)
        if not info:
            return None
        leader = info.get("leader")
        brokers = self.metadata.get("brokers", {})
        if leader and leader in brokers:
            return brokers[leader]["host"]
        return None

    def _broker_host(self, broker_name: str) -> Optional[str]:
        entry = self.metadata.get("brokers", {}).get(broker_name)
        return entry["host"] if entry else None

    def log_for(self, topic: str, partition: int = 0) -> Optional[PartitionLog]:
        return self.logs.get(f"{topic}-{partition}")

    # -- request handling -----------------------------------------------------------------------
    def _handle(self, request: Request):
        if not self.running:
            return {"error": "unavailable"}
        payload = request.payload or {}
        request_type = payload.get("type")
        if request_type == "produce":
            return self._handle_produce(payload)
        if request_type == "fetch":
            return self._handle_fetch(payload)
        if request_type == "replica_fetch":
            return self._handle_replica_fetch(payload)
        if request_type == "epoch_end_offset":
            return self._handle_epoch_end_offset(payload)
        if request_type == "write_txn_markers":
            return self._handle_write_txn_markers(payload)
        if request_type == "find_coordinator":
            # Group-management clients ask any bootstrap broker where the
            # coordinator lives (Kafka's FindCoordinator request).  Kept out
            # of the metadata snapshot so the (size-cached) metadata replies
            # of clients that never use groups are byte-identical.
            if self.coordinator_host is None:
                return {"error": "no_coordinator"}
            return {"error": None, "coordinator_host": self.coordinator_host}
        if request_type == "metadata":
            # Explicit reply size: clients poll metadata constantly, and
            # letting the transport re-estimate the (large) snapshot dict per
            # reply dominated the control-plane cost.  The estimate is cached
            # per metadata version.
            return Response(
                payload={"metadata": self.metadata}, size=self._metadata_reply_size()
            )
        return {"error": f"unknown request type {request_type!r}"}

    def _metadata_reply_size(self) -> int:
        version = self.metadata.get("version", -1)
        cached_version, cached_size = self._metadata_size_cache
        if cached_version != version:
            cached_size = estimate_size({"metadata": self.metadata})
            self._metadata_size_cache = (version, cached_size)
        return cached_size

    # -- produce path ------------------------------------------------------------------------------
    def _handle_produce(self, payload: dict):
        key = f"{payload['topic']}-{payload.get('partition', 0)}"
        wire_batch: RecordBatch = payload["batch"]
        acks = payload.get("acks", 1)

        def produce_process():
            # Local copy: the partial-duplicate path rebinds it to the tail.
            batch = wire_batch
            info = self._partition_info(key)
            if info is None:
                self.produce_rejections += 1
                return {"error": "unknown_topic"}
            if not self._is_leader(key):
                self.produce_rejections += 1
                return {"error": "not_leader", "leader_host": self._leader_hint(key)}
            if self.mode is CoordinationMode.KRAFT and not self.session_fresh:
                # Raft-based metadata: a leader that lost quorum contact stops
                # acknowledging writes, so nothing can be silently truncated.
                self.produce_rejections += 1
                return {"error": "not_leader", "leader_host": None}
            if acks == "all" and len(info["isr"]) < self.config.min_insync_replicas:
                self.produce_rejections += 1
                return {"error": "not_enough_replicas"}
            log = self.logs[key]
            cost = self.config.cpu_per_request + self.config.cpu_per_record * len(batch)
            yield from self.host.compute(cost)
            producer_id = batch.producer_id
            if producer_id >= 0:
                # Idempotent produce: fence zombie epochs and drop duplicate
                # retries.  Checked *after* the compute yield so no other
                # produce process can interleave between verdict and append —
                # a concurrent retry parked in compute must observe this
                # batch's append when its own check finally runs.
                verdict = log.check_producer_batch(
                    producer_id,
                    batch.producer_epoch,
                    batch.base_sequence,
                    count=len(batch),
                )
                if verdict == "fenced":
                    self.produce_rejections += 1
                    self.metrics["fenced_produces"] += 1
                    entry = log.producer_entry(producer_id)
                    return {
                        "error": "producer_fenced",
                        "producer_epoch": entry.epoch if entry else -1,
                    }
                if verdict == "duplicate":
                    # The records are already durable here — acknowledge
                    # positively, but distinguishably: a DuplicateSequence
                    # ack, with the original offsets when the retry matches
                    # the last appended batch.
                    self.metrics["duplicate_batches"] += 1
                    self.metrics["duplicate_records"] += len(batch)
                    entry = log.producer_entry(producer_id)
                    base_offset = -1
                    if (
                        entry.last_count == len(batch)
                        and entry.last_sequence == batch.base_sequence + len(batch) - 1
                    ):
                        base_offset = entry.last_base_offset
                    if acks == "all":
                        # The original append may still be replicating; a
                        # duplicate ack must honor the same durability bar.
                        # The entry's last batch always covers this batch's
                        # final record, so its end bounds the wait without
                        # dragging in unrelated later appends.
                        target = (
                            base_offset + len(batch)
                            if base_offset >= 0
                            else entry.last_base_offset + entry.last_count
                        )
                        replicated = yield from self._await_high_watermark(log, target)
                        if not replicated:
                            return {"error": "not_enough_replicas"}
                    return Response(
                        payload={
                            "error": None,
                            "duplicate": True,
                            "base_offset": base_offset,
                            "log_end_offset": log.log_end_offset,
                        },
                        size=64,
                    )
                if verdict == "partial":
                    # This replica holds only a *prefix* of the batch (a
                    # replica fetch sliced mid-batch right before this
                    # broker took leadership).  The prefix is a duplicate,
                    # but the tail was never appended anywhere: trim and
                    # fall through to append exactly the lost records — a
                    # whole-batch duplicate ack here would acknowledge
                    # records that no log holds.
                    entry = log.producer_entry(producer_id)
                    skip = entry.last_sequence - batch.base_sequence + 1
                    self.metrics["duplicate_batches"] += 1
                    self.metrics["duplicate_records"] += skip
                    batch = batch.tail(skip)
                    partial_prefix = True
                else:
                    partial_prefix = False
            else:
                partial_prefix = False
            epoch = self._local_epochs.get(key, info["leader_epoch"])
            # One append per batch: offsets assigned from the header, size
            # accounted once from ``batch.total_size`` inside the log.
            base_offset = log.append_batch(batch, timestamp=self.sim.now, leader_epoch=epoch)
            self.records_appended += len(batch)
            self._log_maintenance(log)
            self._maybe_advance_high_watermark(key)
            if acks == "all":
                replicated = yield from self._await_high_watermark(log, log.log_end_offset)
                if not replicated:
                    return {"error": "not_enough_replicas"}
            if partial_prefix:
                # The ack covers prefix records whose original offsets this
                # leader cannot echo: a duplicate-style ack (positions not
                # re-derived) rather than a fake contiguous base offset.
                return Response(
                    payload={
                        "error": None,
                        "duplicate": True,
                        "base_offset": -1,
                        "log_end_offset": log.log_end_offset,
                    },
                    size=64,
                )
            return Response(
                payload={"error": None, "base_offset": base_offset, "log_end_offset": log.log_end_offset},
                size=64,
            )

        return produce_process()

    def _await_high_watermark(self, log: PartitionLog, target: int):
        """acks=all durability bar: wait until the HW covers ``target``.

        Returns True once replicated, False if the 30 s bar expires first
        (the caller answers ``not_enough_replicas`` and the producer retries).
        """
        deadline = self.sim.now + 30.0
        while log.high_watermark < target and self.sim.now < deadline:
            yield self.sim.timeout(0.01)
        return log.high_watermark >= target

    def _maybe_advance_high_watermark(self, key: str) -> None:
        """Leader-side: HW = min(LEO, slowest in-sync follower's fetched offset)."""
        info = self._partition_info(key)
        if info is None or not self._is_leader(key):
            return
        log = self.logs[key]
        replica_state = self.replica_states.setdefault(key, ReplicaState())
        isr_followers = [b for b in info["isr"] if b != self.name]
        if not isr_followers:
            if len(info["isr"]) <= 1 and len(info["replicas"]) == 1:
                log.advance_high_watermark(log.log_end_offset)
            elif set(info["isr"]) == {self.name}:
                log.advance_high_watermark(log.log_end_offset)
            return
        offsets = [
            replica_state.follower_offsets.get(follower, 0) for follower in isr_followers
        ]
        log.advance_high_watermark(min([log.log_end_offset] + offsets))

    # -- consumer fetch path -----------------------------------------------------------------------------
    def _handle_fetch(self, payload: dict):
        key = f"{payload['topic']}-{payload.get('partition', 0)}"

        def fetch_process():
            info = self._partition_info(key)
            if info is None:
                return {"error": "unknown_topic"}
            if not self._is_leader(key):
                return {"error": "not_leader", "leader_host": self._leader_hint(key)}
            log = self.logs[key]
            offset = payload.get("offset", 0)
            if offset < log.log_start_offset:
                # Retention dropped the requested range: a real Kafka
                # OffsetOutOfRange — the consumer applies its
                # ``auto_offset_reset`` policy against the bounds we return.
                return {
                    "error": "offset_out_of_range",
                    "log_start_offset": log.log_start_offset,
                    "log_end_offset": log.log_end_offset,
                }
            if offset > log.log_end_offset:
                offset = log.log_end_offset
            max_records = payload.get("max_records", 500)
            isolation = payload.get("isolation", "read_uncommitted")
            # read_committed never reads past the Last Stable Offset (the
            # first offset of the earliest still-open transaction); with no
            # transactions the LSO equals the HW and both paths are identical.
            up_to = (
                log.last_stable_offset
                if isolation == "read_committed"
                else log.high_watermark
            )
            # One wire object per fetch: the batch header carries the size, so
            # the reply size is header arithmetic, not a per-record sum.
            batch = log.read_batch(offset, max_records=max_records, up_to=up_to)
            cost = self.config.cpu_per_request + self.config.cpu_per_record * len(batch)
            yield from self.host.compute(cost)
            reply = {
                "error": None,
                "batch": batch,
                "high_watermark": log.high_watermark,
                "log_end_offset": log.log_end_offset,
            }
            visible = len(batch)
            if len(batch) and log.has_transactions:
                # Control records (and, under read_committed, records of
                # aborted transactions) ship inside the contiguous batch but
                # must not reach the application: the consumer filters them by
                # offset.  Keys added to the reply dict do not change its
                # explicitly-sized timing.
                skip_offsets, skipped_bytes = log.invisible_offsets(
                    batch.base_offset, batch.next_offset, isolation
                )
                if skip_offsets:
                    reply["skip_offsets"] = skip_offsets
                    reply["skipped_bytes"] = skipped_bytes
                    visible -= len(skip_offsets)
            self.records_served += visible
            return Response(payload=reply, size=batch.total_size + 64)

        return fetch_process()

    # -- transaction markers -----------------------------------------------------------------------
    def _handle_write_txn_markers(self, payload: dict):
        """Append a COMMIT/ABORT control record (coordinator-issued).

        Marker writes honor the acks=all durability bar — the coordinator
        only completes a transaction once every marker is replicated, so a
        committed transaction stays committed across leader elections.
        Retries after a lost ack are deduplicated against the log's
        ``last_markers`` state instead of appending a second marker.
        """
        key = payload["partition_key"]
        producer_id = payload["producer_id"]
        producer_epoch = payload["producer_epoch"]
        marker = payload["marker"]

        def marker_process():
            info = self._partition_info(key)
            if info is None:
                return {"error": "unknown_topic"}
            if not self._is_leader(key):
                return {"error": "not_leader", "leader_host": self._leader_hint(key)}
            log = self.logs[key]
            last = log.last_markers.get(producer_id)
            if (
                log.open_txn_first_offset(producer_id) is None
                and last is not None
                and last[0] >= producer_epoch
                and last[1] == marker
            ):
                # The marker already closed this transaction here (retry of a
                # write whose ack was lost): re-ack at the same durability bar.
                replicated = yield from self._await_high_watermark(log, last[2] + 1)
                if not replicated:
                    return {"error": "not_enough_replicas"}
                return Response(
                    payload={"error": None, "duplicate": True, "offset": last[2]},
                    size=48,
                )
            cost = self.config.cpu_per_request + self.config.cpu_per_record
            yield from self.host.compute(cost)
            epoch = self._local_epochs.get(key, info["leader_epoch"])
            offset = log.append_control(
                producer_id,
                producer_epoch,
                marker,
                timestamp=self.sim.now,
                leader_epoch=epoch,
            )
            self.metrics["control_batches"] += 1
            self.metrics["control_batch_bytes"] += CONTROL_RECORD_SIZE
            self._log_maintenance(log)
            self._maybe_advance_high_watermark(key)
            replicated = yield from self._await_high_watermark(log, offset + 1)
            if not replicated:
                return {"error": "not_enough_replicas"}
            return Response(payload={"error": None, "offset": offset}, size=48)

        return marker_process()

    # -- replication path -----------------------------------------------------------------------------------
    def _handle_epoch_end_offset(self, payload: dict) -> dict:
        """Leader-side answer to a follower's truncation query."""
        key = payload["partition_key"]
        follower_epoch = payload["epoch"]
        log = self.logs.get(key)
        if log is None or not self._is_leader(key):
            return {"error": "not_leader", "leader_host": self._leader_hint(key)}
        end_offset = log.log_end_offset
        # The end offset of the follower's epoch is the start offset of the
        # first later epoch in the leader's log (or the leader's LEO if the
        # follower's epoch is still the latest).
        for epoch, start in log.epoch_boundaries:
            if epoch > follower_epoch:
                end_offset = start
                break
        return {"error": None, "end_offset": end_offset}

    def _handle_replica_fetch(self, payload: dict):
        key = payload["partition_key"]
        follower = payload["follower"]
        offset = payload["offset"]

        def replica_fetch_process():
            info = self._partition_info(key)
            if info is None or not self._is_leader(key):
                return {"error": "not_leader", "leader_host": self._leader_hint(key)}
            log = self.logs[key]
            replica_state = self.replica_states.setdefault(key, ReplicaState())
            replica_state.follower_offsets[follower] = offset
            if offset >= log.log_end_offset:
                replica_state.follower_caught_up_at[follower] = self.sim.now
            batch = log.read_batch(
                offset,
                max_records=self.config.replica_fetch_max_records,
                with_epochs=True,
            )
            cost = self.config.cpu_per_request + self.config.cpu_per_record * len(batch)
            yield from self.host.compute(cost)
            self._maybe_advance_high_watermark(key)
            yield from self._maybe_update_isr(key)
            return Response(
                payload={
                    "error": None,
                    "batch": batch,
                    "high_watermark": log.high_watermark,
                    "leader_epoch": self._local_epochs.get(key, info["leader_epoch"]),
                },
                size=batch.total_size + 64,
            )

        return replica_fetch_process()

    def _maybe_update_isr(self, key: str):
        """Leader-side ISR maintenance, persisted through the coordinator."""
        info = self._partition_info(key)
        if info is None or not self._is_leader(key) or self.coordinator_host is None:
            return
        log = self.logs[key]
        replica_state = self.replica_states.setdefault(key, ReplicaState())
        now = self.sim.now
        desired_isr = [self.name]
        for follower in info["replicas"]:
            if follower == self.name:
                continue
            fetched = replica_state.follower_offsets.get(follower)
            caught_up_at = replica_state.follower_caught_up_at.get(follower, -1.0)
            if fetched is None:
                # Never fetched yet: keep it in the ISR during the grace period
                # after this broker took leadership, evict afterwards.
                if (now - replica_state.since) <= self.config.replica_lag_max:
                    desired_isr.append(follower)
                continue
            lag_ok = (
                fetched >= log.log_end_offset
                or (now - caught_up_at) <= self.config.replica_lag_max
            )
            if lag_ok:
                desired_isr.append(follower)
        if set(desired_isr) == set(info["isr"]):
            return
        try:
            reply = yield from self.transport.request(
                self.coordinator_host,
                COORDINATOR_PORT,
                {
                    "type": "isr_update",
                    "partition": key,
                    "isr": desired_isr,
                    "leader_epoch": info["leader_epoch"],
                },
                timeout=1.0,
            )
        except RequestTimeout:
            # ZooKeeper unreachable: the ISR change cannot be persisted, so the
            # local view keeps the old ISR (and the HW stays put) — matching
            # the stale-leader behaviour under a partition.
            return
        if reply.get("error") is None:
            info = dict(info)
            info["isr"] = desired_isr
            self.metadata["partitions"][key] = info
            # In-place mutation without a version bump: drop the cached
            # metadata reply size so it is re-estimated from fresh content.
            self._metadata_size_cache = (None, 0)

    # -- follower replication loop -----------------------------------------------------------------------------
    def _replica_fetch_loop(self):
        while self.running:
            yield self.sim.timeout(self.config.replica_fetch_interval)
            for key, info in list(self.metadata.get("partitions", {}).items()):
                if self.name not in info["replicas"] or info["leader"] == self.name:
                    continue
                leader_host = self._broker_host(info["leader"]) if info["leader"] else None
                if leader_host is None:
                    continue
                log = self.logs.get(key)
                if log is None:
                    continue
                if self._truncation_pending.get(key):
                    done = yield from self._reconcile_with_leader(key, leader_host)
                    if not done:
                        continue
                yield from self._fetch_once_from_leader(key, leader_host, log)

    def _reconcile_with_leader(self, key: str, leader_host: str):
        """Truncate our log to match the new leader before resuming fetches."""
        log = self.logs[key]
        last_epoch = log.epoch_boundaries[-1][0] if log.epoch_boundaries else 0
        try:
            reply = yield from self.transport.request(
                leader_host,
                BROKER_PORT,
                {"type": "epoch_end_offset", "partition_key": key, "epoch": last_epoch},
                timeout=1.0,
            )
        except RequestTimeout:
            return False
        if reply.get("error") is not None:
            return False
        end_offset = reply["end_offset"]
        if end_offset < log.log_end_offset:
            discarded = log.truncate_to(end_offset)
            acked_discarded = [r for r in discarded if r is not None]
            self.lost_records.extend(acked_discarded)
        self._truncation_pending[key] = False
        return True

    def _fetch_once_from_leader(self, key: str, leader_host: str, log: PartitionLog):
        try:
            reply = yield from self.transport.request(
                leader_host,
                BROKER_PORT,
                {
                    "type": "replica_fetch",
                    "partition_key": key,
                    "offset": log.log_end_offset,
                    "follower": self.name,
                },
                size=96,
                timeout=1.0,
            )
        except RequestTimeout:
            return
        if reply.get("error") is not None:
            return
        batch: RecordBatch = reply["batch"]
        if len(batch) and (
            batch.base_offset <= log.log_end_offset or log.storage is not None
        ):
            # Whole-batch replica append: the already-present overlap (if the
            # follower refetched from an older LEO) is trimmed inside.  A
            # segmented follower also accepts batches *past* its LEO — the
            # leader's retention/compaction left a gap the follower adopts
            # with a forced segment boundary.
            log.append_wire_batch(batch)
            self._log_maintenance(log)
        log.set_high_watermark(reply["high_watermark"])

    # -- storage maintenance -------------------------------------------------------------
    def _log_maintenance(self, log: PartitionLog) -> None:
        """Run one retention/compaction/eviction pass on ``log`` and fold the
        per-log storage counters up into the broker metrics (no-op, and two
        dict probes cheap, for flat-layout logs)."""
        if log.storage is None:
            return
        log.maybe_maintain(self.sim.now)
        self.refresh_storage_metrics()

    def refresh_storage_metrics(self) -> None:
        """Fold the per-log storage counters up into ``metrics``.

        Runs after every maintenance pass; readers (cluster aggregates,
        scenario metrics) call it directly since fetch-driven fault-in can
        evict segments between produce-side maintenance passes.
        """
        for name in (
            "segments_sealed",
            "segments_evicted",
            "retention_records_dropped",
            "compaction_records_removed",
        ):
            self.metrics[name] = sum(
                partition_log.stats[name] for partition_log in self.logs.values()
            )

    def __repr__(self) -> str:
        return f"<Broker {self.name} on {self.host.name} partitions={len(self.logs)}>"
