"""Cluster coordination service (ZooKeeper / KRaft controller substitute).

The coordinator is the authority on cluster metadata: which brokers are
alive, how partitions are assigned to replicas, who currently leads each
partition and with which epoch, and which replicas are in sync.  Brokers
register with it, heartbeat against it, and pull metadata when the version
changes; it detects broker failures via session timeouts and performs leader
elections, and periodically restores leadership to preferred replicas.

Two coordination modes are supported (``CoordinationMode``):

* ``zookeeper`` — the produce path on brokers never consults the coordinator,
  so a partitioned leader keeps accepting acks<=1 writes that are later
  truncated away when it rejoins (the silent-loss behaviour of [36] that
  Figure 6b shows);
* ``kraft`` — leaders require a fresh coordinator session to acknowledge
  writes, so a partitioned leader quickly stops accepting records and
  producers retry against the new leader instead (no silent loss).

The mode itself is enforced in :mod:`repro.broker.broker`; the coordinator's
protocol is identical in both modes.

Consumer groups
---------------
The coordinator is also the group coordinator (the role a designated broker
plays in Kafka, and ZooKeeper plays for pykafka's balanced consumer): members
join a named group, the coordinator computes a deterministic partition
assignment (``range`` or ``roundrobin`` assignor over sorted members and
sorted partitions), and any membership change — join, graceful leave, session
expiry, broker failure — bumps the group *generation*.  Members discover a
stale generation on their next heartbeat and re-sync their assignment.
Committed offsets live with the group, piggybacked on heartbeats and leaves,
so a partition handed to another member resumes where its previous owner
committed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.network.host import Host
from repro.network.packet import estimate_size
from repro.network.transport import Request, RequestTimeout, Response, Transport
from repro.broker.errors import InvalidTxnStateError
from repro.broker.topic import PartitionState, TopicConfig

COORDINATOR_PORT = 2181

#: Legal transitions of the transaction state machine (KIP-98).  ``Complete``
#: states may re-enter ``Ongoing`` (the next transaction of the same
#: transactional id); everything else raises ``InvalidTxnStateError``.
_TXN_TRANSITIONS = {
    "Empty": ("Ongoing",),
    "Ongoing": ("PrepareCommit", "PrepareAbort"),
    "PrepareCommit": ("CompleteCommit",),
    "PrepareAbort": ("CompleteAbort",),
    "CompleteCommit": ("Ongoing",),
    "CompleteAbort": ("Ongoing",),
}


@dataclass
class TransactionState:
    """Coordinator-side state of one transactional id.

    Mirrors Kafka's transaction metadata: the owning ``(producer_id,
    epoch)`` pair, the explicit state machine, and the set of partitions the
    current transaction has touched (the fan-out set for commit/abort
    markers).
    """

    transactional_id: str
    producer_id: int
    producer_epoch: int
    state: str = "Empty"
    partitions: List[str] = field(default_factory=list)
    #: Simulation time the current transaction became Ongoing (-1 = none);
    #: the timeout sweeper aborts transactions stuck Ongoing for longer than
    #: ``timeout``.
    started_at: float = -1.0
    timeout: float = 60.0

    def transition(self, new_state: str) -> None:
        if new_state not in _TXN_TRANSITIONS.get(self.state, ()):
            raise InvalidTxnStateError(
                f"transaction {self.transactional_id!r}: illegal transition "
                f"{self.state} -> {new_state}"
            )
        self.state = new_state

#: Assignor names accepted by ``join_group``.
GROUP_ASSIGNORS = ("range", "roundrobin")


def assign_range(
    members: Dict[str, List[str]], partitions_by_topic: Dict[str, List[str]]
) -> Dict[str, List[str]]:
    """Kafka's range assignor: contiguous per-topic chunks of sorted partitions.

    ``members`` maps member name -> subscribed topics.  Per topic, the sorted
    subscribing members split the sorted partition list contiguously; the
    first ``n_partitions % n_members`` members receive one extra partition.
    Purely a function of its inputs, so every rebalance is deterministic.
    """
    assignment: Dict[str, List[str]] = {name: [] for name in members}
    for topic in sorted(partitions_by_topic):
        keys = partitions_by_topic[topic]
        subscribers = sorted(name for name, topics in members.items() if topic in topics)
        if not subscribers:
            continue
        base, extra = divmod(len(keys), len(subscribers))
        start = 0
        for index, name in enumerate(subscribers):
            take = base + (1 if index < extra else 0)
            assignment[name].extend(keys[start : start + take])
            start += take
    return assignment


def assign_roundrobin(
    members: Dict[str, List[str]], partitions_by_topic: Dict[str, List[str]]
) -> Dict[str, List[str]]:
    """Round-robin assignor: deal sorted (topic, partition) pairs to sorted members."""
    assignment: Dict[str, List[str]] = {name: [] for name in members}
    cursor = 0
    for topic in sorted(partitions_by_topic):
        subscribers = sorted(name for name, topics in members.items() if topic in topics)
        if not subscribers:
            continue
        for key in partitions_by_topic[topic]:
            assignment[subscribers[cursor % len(subscribers)]].append(key)
            cursor += 1
    return assignment


_ASSIGNOR_FNS = {"range": assign_range, "roundrobin": assign_roundrobin}


@dataclass
class GroupMember:
    """One live member of a consumer group."""

    name: str
    topics: List[str]
    last_heartbeat: float


@dataclass
class GroupState:
    """Coordinator-side state of one consumer group."""

    name: str
    assignor: str = "range"
    generation: int = 0
    members: Dict[str, GroupMember] = field(default_factory=dict)
    #: member name -> assigned partition keys (sorted per member).
    assignment: Dict[str, List[str]] = field(default_factory=dict)
    #: partition key -> committed offset (next offset to consume).
    committed: Dict[str, int] = field(default_factory=dict)

    def subscribed_topics(self) -> List[str]:
        topics: List[str] = []
        for member in self.members.values():
            for topic in member.topics:
                if topic not in topics:
                    topics.append(topic)
        return sorted(topics)


class CoordinationMode(str, enum.Enum):
    """How cluster metadata is coordinated."""

    ZOOKEEPER = "zookeeper"
    KRAFT = "kraft"


@dataclass
class BrokerRegistration:
    """Liveness record for one registered broker."""

    name: str
    host: str
    last_heartbeat: float
    alive: bool = True


@dataclass
class ElectionRecord:
    """History entry for tests and the event log."""

    time: float
    partition: str
    new_leader: Optional[str]
    old_leader: Optional[str]
    epoch: int
    reason: str


class Coordinator:
    """The metadata/coordination service, bound to one host."""

    def __init__(
        self,
        host: Host,
        mode: CoordinationMode = CoordinationMode.ZOOKEEPER,
        session_timeout: float = 9.0,
        failure_check_interval: float = 1.0,
        preferred_election_interval: float = 30.0,
        transaction_timeout: float = 60.0,
    ) -> None:
        if session_timeout <= 0:
            raise ValueError("session_timeout must be positive")
        self.host = host
        self.sim = host.sim
        self.mode = CoordinationMode(mode)
        self.session_timeout = session_timeout
        self.failure_check_interval = failure_check_interval
        self.preferred_election_interval = preferred_election_interval
        self.transport = Transport(host)
        self.brokers: Dict[str, BrokerRegistration] = {}
        self.partitions: Dict[str, PartitionState] = {}
        self.topics: Dict[str, TopicConfig] = {}
        self.groups: Dict[str, GroupState] = {}
        #: Idempotent-producer registry: producer name -> [producer_id,
        #: epoch].  Re-initializing an existing name bumps the epoch, which
        #: fences the previous instance (Kafka's transactional.id semantics
        #: applied to the idempotence subset).
        self.producer_ids: Dict[str, List[int]] = {}
        self._next_producer_id = 0
        #: Default transaction timeout; producers may lower it per init.
        self.transaction_timeout = transaction_timeout
        #: transactional_id -> :class:`TransactionState` (the coordinator's
        #: transaction metadata cache).
        self.transactions: Dict[str, TransactionState] = {}
        #: Append-only transaction log: one snapshot dict per state change.
        #: ``restore_transactions`` replays it after a coordinator restart.
        self.txn_log: List[dict] = []
        self.txn_metrics = {
            "transactions_committed": 0,
            "transactions_aborted": 0,
            "fenced_end_txn": 0,
            "transactions_timed_out": 0,
        }
        #: Sweeper starts lazily with the first transactional id, so
        #: transaction-free runs schedule no extra events (seeded goldens).
        self._txn_sweeper_running = False
        self.metadata_version = 0
        self._snapshot_size_cache: tuple = (None, 0)
        self.elections: List[ElectionRecord] = []
        self.event_log: List[dict] = []
        self._started = False
        self.transport.register(COORDINATOR_PORT, self._handle)
        host.register_component(self)

    # -- lifecycle -------------------------------------------------------------------
    def start(self) -> None:
        """Start the failure detector and preferred-leader election loops."""
        if self._started:
            return
        self._started = True
        self.sim.process(self._failure_detector(), name="coordinator:failure-detector")
        self.sim.process(
            self._preferred_election_loop(), name="coordinator:preferred-election"
        )

    @property
    def name(self) -> str:
        return f"coordinator@{self.host.name}"

    # -- request handling -------------------------------------------------------------
    def _handle(self, request: Request):
        payload = request.payload or {}
        request_type = payload.get("type")
        if request_type == "register":
            return self._handle_register(payload)
        if request_type == "heartbeat":
            return self._handle_heartbeat(payload)
        if request_type == "metadata":
            # Fresh snapshot per reply (callers mutate their copy), but the
            # reply-size estimate is cached per metadata version so the
            # transport does not re-walk the snapshot on every heartbeat.
            snapshot = self.metadata_snapshot()
            return Response(payload=snapshot, size=self._snapshot_size(snapshot))
        if request_type == "create_topic":
            return self._handle_create_topic(payload)
        if request_type == "isr_update":
            return self._handle_isr_update(payload)
        if request_type == "init_producer_id":
            return self._handle_init_producer_id(payload)
        if request_type == "add_partitions_to_txn":
            return self._handle_add_partitions_to_txn(payload)
        if request_type == "end_txn":
            return self._handle_end_txn(payload)
        if request_type == "join_group":
            return self._handle_join_group(payload)
        if request_type == "sync_group":
            return self._handle_sync_group(payload)
        if request_type == "group_heartbeat":
            return self._handle_group_heartbeat(payload)
        if request_type == "leave_group":
            return self._handle_leave_group(payload)
        return {"error": f"unknown request type {request_type!r}"}

    def _handle_register(self, payload: dict) -> dict:
        name = payload["broker"]
        host = payload["host"]
        self.brokers[name] = BrokerRegistration(
            name=name, host=host, last_heartbeat=self.sim.now, alive=True
        )
        self._log("broker-registered", broker=name, host=host)
        self._bump()
        return {"version": self.metadata_version}

    def _handle_heartbeat(self, payload: dict) -> dict:
        name = payload["broker"]
        registration = self.brokers.get(name)
        if registration is None:
            return {"error": "unknown broker", "version": self.metadata_version}
        registration.last_heartbeat = self.sim.now
        if not registration.alive:
            registration.alive = True
            self._log("broker-rejoined", broker=name)
            self._bump()
        return {"version": self.metadata_version, "session_timeout": self.session_timeout}

    def _handle_create_topic(self, payload: dict) -> dict:
        config = TopicConfig(**payload["config"])
        self.create_topic(config)
        return {"version": self.metadata_version}

    def _handle_isr_update(self, payload: dict) -> dict:
        key = payload["partition"]
        state = self.partitions.get(key)
        if state is None:
            return {"error": "unknown partition"}
        if payload.get("leader_epoch") != state.leader_epoch:
            return {"error": "stale_epoch", "leader_epoch": state.leader_epoch}
        new_isr = [b for b in payload["isr"] if b in state.replicas]
        if new_isr and set(new_isr) != set(state.isr):
            state.isr = new_isr
            self._log("isr-changed", partition=key, isr=list(new_isr))
            self._bump()
        return {"version": self.metadata_version}

    # -- idempotent producers ----------------------------------------------------------
    def _handle_init_producer_id(self, payload: dict) -> dict:
        """Allocate (or re-initialize) a ``(producer_id, epoch)`` pair.

        Producer ids are allocated sequentially (deterministic per run); a
        repeat init under the same name keeps the id but bumps the epoch, so
        partition leaders fence the superseded instance's in-flight retries.
        A ``transactional_id`` keys the registry instead of the instance name
        (that is what lets a restarted producer fence its predecessor), and a
        re-init additionally *aborts the predecessor's open transaction* —
        the markers carry the bumped epoch, so partition leaders fence the
        zombie's stragglers the moment the abort marker lands.
        """
        transactional_id = payload.get("transactional_id")
        name = transactional_id or payload.get("name")
        if not name:
            return {"error": "missing producer name"}
        entry = self.producer_ids.get(name)
        if entry is None:
            entry = self.producer_ids[name] = [self._next_producer_id, 0]
            self._next_producer_id += 1
            self._log(
                "producer-id-allocated",
                name=name,
                producer_id=entry[0],
                producer_epoch=0,
            )
        else:
            entry[1] += 1
            self._log(
                "producer-epoch-bumped",
                name=name,
                producer_id=entry[0],
                producer_epoch=entry[1],
            )
        if transactional_id:
            self._ensure_txn_sweeper()
            timeout = min(
                float(payload.get("transaction_timeout", self.transaction_timeout)),
                self.transaction_timeout,
            )
            txn = self.transactions.get(transactional_id)
            if txn is None:
                txn = self.transactions[transactional_id] = TransactionState(
                    transactional_id=transactional_id,
                    producer_id=entry[0],
                    producer_epoch=entry[1],
                    timeout=timeout,
                )
                self._log_txn(txn)
            else:
                txn.producer_epoch = entry[1]
                txn.timeout = timeout
                if txn.state == "Ongoing":
                    # The predecessor died (or hung) mid-transaction; its
                    # writes must never become visible to read_committed
                    # consumers.
                    self._begin_abort(txn, reason="fenced")
                else:
                    self._log_txn(txn)
        return {"error": None, "producer_id": entry[0], "producer_epoch": entry[1]}

    # -- transactions ------------------------------------------------------------------
    def _log_txn(self, txn: TransactionState) -> None:
        """Append one snapshot of the transaction's state to the txn log."""
        self.txn_log.append(
            {
                "time": self.sim.now,
                "transactional_id": txn.transactional_id,
                "producer_id": txn.producer_id,
                "producer_epoch": txn.producer_epoch,
                "state": txn.state,
                "partitions": list(txn.partitions),
                "started_at": txn.started_at,
                "timeout": txn.timeout,
            }
        )

    def _check_txn_caller(
        self, txn: Optional[TransactionState], payload: dict
    ) -> Optional[dict]:
        """Fencing check shared by the transactional handlers."""
        if txn is None:
            return {"error": "invalid_txn_state", "message": "unknown transactional id"}
        if (
            payload.get("producer_id") != txn.producer_id
            or payload.get("producer_epoch", -1) < txn.producer_epoch
        ):
            return {"error": "producer_fenced", "producer_epoch": txn.producer_epoch}
        return None

    def _handle_add_partitions_to_txn(self, payload: dict) -> dict:
        """Register partitions with the caller's current transaction.

        The first registration of a transaction moves Empty/Complete* ->
        Ongoing and stamps ``started_at`` (the timeout clock).  Registering
        while the transaction is completing (Prepare*) is rejected — the
        producer retries until the marker fan-out settles.
        """
        txn = self.transactions.get(payload.get("transactional_id"))
        fenced = self._check_txn_caller(txn, payload)
        if fenced is not None:
            return fenced
        if txn.state in ("PrepareCommit", "PrepareAbort"):
            return {"error": "invalid_txn_state", "message": f"transaction is {txn.state}"}
        if txn.state != "Ongoing":
            txn.transition("Ongoing")
            txn.partitions = []
            txn.started_at = self.sim.now
        added = False
        for key in payload.get("partitions", []):
            if key not in txn.partitions:
                txn.partitions.append(key)
                added = True
        if added:
            txn.partitions.sort()
            self._log_txn(txn)
        return {"error": None, "state": txn.state}

    def _handle_end_txn(self, payload: dict):
        """Commit or abort the caller's transaction (generator process).

        Moves Ongoing -> Prepare*, fans COMMIT/ABORT markers out to every
        registered partition leader in the background, and replies only once
        the transaction reaches Complete* — so a producer returning from
        ``commit_transaction()`` knows every marker is replicated and its
        records are visible to ``read_committed`` consumers.
        """
        txn = self.transactions.get(payload.get("transactional_id"))
        outcome = payload.get("outcome")
        fenced = self._check_txn_caller(txn, payload)
        if fenced is not None:
            if fenced["error"] == "producer_fenced":
                self.txn_metrics["fenced_end_txn"] += 1
            return fenced
        if outcome not in ("commit", "abort"):
            return {"error": f"unknown end_txn outcome {outcome!r}"}
        prepare = "PrepareCommit" if outcome == "commit" else "PrepareAbort"
        complete = "CompleteCommit" if outcome == "commit" else "CompleteAbort"
        if txn.state == "Ongoing":
            txn.transition(prepare)
            self._log_txn(txn)
            self._log(
                "txn-end-requested",
                transactional_id=txn.transactional_id,
                outcome=outcome,
                partitions=list(txn.partitions),
            )
            self.sim.process(
                self._write_markers(txn, outcome),
                name=f"coordinator:txn-markers:{txn.transactional_id}",
            )
        elif txn.state == complete:
            return {"error": None, "state": txn.state}
        elif txn.state != prepare:
            # Committing an aborted (timed-out/fenced) transaction, aborting
            # a committing one, or ending one that never began.
            return {"error": "invalid_txn_state", "message": f"transaction is {txn.state}"}

        def end_txn_process():
            deadline = self.sim.now + 30.0
            while txn.state == prepare and self.sim.now < deadline:
                yield self.sim.timeout(0.05)
            if txn.state != complete:
                return {"error": "invalid_txn_state", "message": f"transaction is {txn.state}"}
            return {"error": None, "state": txn.state}

        return end_txn_process()

    def _begin_abort(self, txn: TransactionState, reason: str) -> None:
        """Move an Ongoing transaction to PrepareAbort and fan markers out."""
        txn.transition("PrepareAbort")
        self._log_txn(txn)
        self._log(
            "txn-abort-initiated",
            transactional_id=txn.transactional_id,
            reason=reason,
            partitions=list(txn.partitions),
        )
        self.sim.process(
            self._write_markers(txn, "abort"),
            name=f"coordinator:txn-markers:{txn.transactional_id}",
        )

    def _write_markers(self, txn: TransactionState, outcome: str):
        """Append the COMMIT/ABORT marker on every registered partition.

        Retries each partition until its *current* leader acknowledges (the
        leader may change mid-fan-out; metadata is re-read per attempt), then
        completes the transaction.  Marker writes are idempotent broker-side
        (``last_markers`` dedup), so retries after a lost ack are safe.
        """
        from repro.broker.broker import BROKER_PORT  # circular at module scope

        producer_epoch = txn.producer_epoch
        for key in sorted(txn.partitions):
            while True:
                state = self.partitions.get(key)
                leader = state.leader if state is not None else None
                registration = self.brokers.get(leader) if leader else None
                if registration is not None and registration.alive:
                    try:
                        reply = yield from self.transport.request(
                            registration.host,
                            BROKER_PORT,
                            {
                                "type": "write_txn_markers",
                                "partition_key": key,
                                "producer_id": txn.producer_id,
                                "producer_epoch": producer_epoch,
                                "marker": outcome,
                            },
                            size=64,
                            timeout=2.0,
                            retries=0,
                        )
                    except RequestTimeout:
                        reply = None
                    if reply is not None and reply.get("error") is None:
                        break
                yield self.sim.timeout(0.2)
        complete = "CompleteCommit" if outcome == "commit" else "CompleteAbort"
        txn.transition(complete)
        self._log_txn(txn)
        if outcome == "commit":
            self.txn_metrics["transactions_committed"] += 1
        else:
            self.txn_metrics["transactions_aborted"] += 1
        self._log(
            "txn-completed",
            transactional_id=txn.transactional_id,
            outcome=outcome,
            partitions=list(txn.partitions),
        )

    def _ensure_txn_sweeper(self) -> None:
        if self._txn_sweeper_running:
            return
        self._txn_sweeper_running = True
        self.sim.process(self._txn_timeout_sweeper(), name="coordinator:txn-sweeper")

    def _txn_timeout_sweeper(self):
        """Abort transactions stuck Ongoing past their timeout (dead producers).

        Deterministic: runs on the failure-detector cadence and visits
        transactional ids in sorted order.
        """
        while True:
            yield self.sim.timeout(self.failure_check_interval)
            now = self.sim.now
            for transactional_id in sorted(self.transactions):
                txn = self.transactions[transactional_id]
                if (
                    txn.state == "Ongoing"
                    and txn.started_at >= 0
                    and now - txn.started_at > txn.timeout
                ):
                    self.txn_metrics["transactions_timed_out"] += 1
                    self._begin_abort(txn, reason="timeout")

    def restore_transactions(self, entries: List[dict]) -> None:
        """Rebuild transaction state from a txn log (coordinator restart).

        The last entry per transactional id wins; Prepare* transactions
        resume their marker fan-out (markers are idempotent broker-side, so
        re-sending already-acknowledged ones is harmless), and Ongoing ones
        fall to the timeout sweeper if their producer is gone.
        """
        latest: Dict[str, dict] = {}
        for entry in entries:
            latest[entry["transactional_id"]] = entry
        if latest:
            self._ensure_txn_sweeper()
        for transactional_id in sorted(latest):
            entry = latest[transactional_id]
            txn = TransactionState(
                transactional_id=transactional_id,
                producer_id=entry["producer_id"],
                producer_epoch=entry["producer_epoch"],
                state=entry["state"],
                partitions=list(entry["partitions"]),
                started_at=entry["started_at"],
                timeout=entry["timeout"],
            )
            self.transactions[transactional_id] = txn
            self.producer_ids[transactional_id] = [txn.producer_id, txn.producer_epoch]
            self._next_producer_id = max(self._next_producer_id, txn.producer_id + 1)
            self.txn_log.append(dict(entry))
            if txn.state in ("PrepareCommit", "PrepareAbort"):
                outcome = "commit" if txn.state == "PrepareCommit" else "abort"
                self.sim.process(
                    self._write_markers(txn, outcome),
                    name=f"coordinator:txn-markers:{transactional_id}",
                )
        self._log("txn-state-restored", transactions=sorted(latest))

    def transaction_state(self, transactional_id: str) -> Optional[TransactionState]:
        return self.transactions.get(transactional_id)

    # -- consumer groups ---------------------------------------------------------------
    def _handle_join_group(self, payload: dict) -> dict:
        group_name = payload["group"]
        member_name = payload["member"]
        topics = list(payload.get("topics", []))
        assignor = payload.get("assignor", "range")
        if assignor not in GROUP_ASSIGNORS:
            return {"error": f"unknown assignor {assignor!r}"}
        group = self.groups.get(group_name)
        if group is None:
            group = self.groups[group_name] = GroupState(name=group_name, assignor=assignor)
        elif not group.members:
            # An emptied group adopts the next joiner's assignor.
            group.assignor = assignor
        elif assignor != group.assignor:
            return {
                "error": f"assignor mismatch: group {group_name!r} uses {group.assignor!r}"
            }
        group.members[member_name] = GroupMember(
            name=member_name, topics=topics, last_heartbeat=self.sim.now
        )
        self._log("group-member-joined", group=group_name, member=member_name)
        self._rebalance_group(group, reason="member-joined")
        return self._group_sync_reply(group, member_name)

    def _handle_sync_group(self, payload: dict) -> dict:
        group = self.groups.get(payload["group"])
        if group is None or payload["member"] not in group.members:
            return {"error": "unknown_member"}
        group.members[payload["member"]].last_heartbeat = self.sim.now
        return self._group_sync_reply(group, payload["member"])

    def _handle_group_heartbeat(self, payload: dict) -> dict:
        group = self.groups.get(payload["group"])
        if group is None or payload["member"] not in group.members:
            return {"error": "unknown_member"}
        group.members[payload["member"]].last_heartbeat = self.sim.now
        # Offset commits piggyback on heartbeats and are accepted even under a
        # stale generation (they describe work already done); commits only
        # ever move forward, so a late heartbeat cannot rewind a partition a
        # new owner has progressed past.
        self._commit_offsets(group, payload.get("offsets"))
        if payload.get("generation") != group.generation:
            return {"error": "rebalance", "generation": group.generation}
        return {"error": None, "generation": group.generation}

    def _handle_leave_group(self, payload: dict) -> dict:
        group = self.groups.get(payload["group"])
        if group is None or payload["member"] not in group.members:
            return {"error": "unknown_member"}
        self._commit_offsets(group, payload.get("offsets"))
        del group.members[payload["member"]]
        self._log("group-member-left", group=group.name, member=payload["member"])
        self._rebalance_group(group, reason="member-left")
        return {"error": None, "generation": group.generation}

    def _commit_offsets(self, group: GroupState, offsets: Optional[dict]) -> None:
        if not offsets:
            return
        committed = group.committed
        for key, offset in offsets.items():
            if offset > committed.get(key, 0):
                committed[key] = offset

    def _group_sync_reply(self, group: GroupState, member: str) -> dict:
        assigned = group.assignment.get(member, [])
        return {
            "error": None,
            "generation": group.generation,
            "assignment": list(assigned),
            "offsets": {key: group.committed.get(key, 0) for key in assigned},
            "session_timeout": self.session_timeout,
        }

    def _rebalance_group(self, group: GroupState, reason: str) -> None:
        """Recompute the group's assignment and bump its generation.

        Deterministic by construction: the assignors see sorted members and
        sorted partition keys, so identical membership and metadata always
        produce the identical assignment, whatever order events arrived in.
        """
        partitions_by_topic: Dict[str, List[str]] = {}
        for topic in group.subscribed_topics():
            keys = sorted(
                (state.key for state in self.partitions.values() if state.topic == topic),
                key=lambda key: self.partitions[key].partition,
            )
            partitions_by_topic[topic] = keys
        member_topics = {name: member.topics for name, member in group.members.items()}
        group.assignment = _ASSIGNOR_FNS[group.assignor](member_topics, partitions_by_topic)
        group.generation += 1
        self._log(
            "group-rebalance",
            group=group.name,
            generation=group.generation,
            reason=reason,
            members=sorted(group.members),
        )

    def _rebalance_groups_for_topic(self, topic: str, reason: str) -> None:
        for group in self.groups.values():
            if group.members and topic in group.subscribed_topics():
                self._rebalance_group(group, reason=reason)

    def _expire_group_members(self, now: float) -> None:
        for group in self.groups.values():
            expired = [
                name
                for name, member in group.members.items()
                if now - member.last_heartbeat > self.session_timeout
            ]
            for name in expired:
                del group.members[name]
                self._log("group-member-expired", group=group.name, member=name)
            if expired:
                self._rebalance_group(group, reason="member-expired")

    def group_state(self, name: str) -> Optional[GroupState]:
        return self.groups.get(name)

    # -- topic management --------------------------------------------------------------
    def create_topic(self, config: TopicConfig) -> List[PartitionState]:
        """Create a topic: assign replicas over live brokers and pick leaders."""
        if config.name in self.topics:
            raise ValueError(f"topic {config.name!r} already exists")
        live = [name for name, reg in self.brokers.items() if reg.alive]
        if len(live) < config.replication_factor:
            raise ValueError(
                f"not enough live brokers ({len(live)}) for replication factor "
                f"{config.replication_factor}"
            )
        self.topics[config.name] = config
        states = []
        ordered = sorted(live)
        if config.preferred_leader:
            if config.preferred_leader not in ordered:
                raise ValueError(
                    f"preferred leader {config.preferred_leader!r} is not a live broker"
                )
            ordered.remove(config.preferred_leader)
            ordered.insert(0, config.preferred_leader)
        for partition in range(config.partitions):
            # Rotate the assignment per partition so load spreads, keeping the
            # user-pinned preferred leader for partition 0.
            rotation = ordered[partition % len(ordered):] + ordered[:partition % len(ordered)]
            replicas = rotation[: config.replication_factor]
            state = PartitionState(
                topic=config.name,
                partition=partition,
                replicas=replicas,
            )
            self.partitions[state.key] = state
            states.append(state)
            self._log(
                "partition-created",
                partition=state.key,
                replicas=list(replicas),
                leader=state.leader,
            )
        self._bump()
        # Groups already subscribed to this topic pick the new partitions up
        # on their next heartbeat (generation bump -> sync).
        self._rebalance_groups_for_topic(config.name, reason="topic-created")
        return states

    # -- metadata ---------------------------------------------------------------------
    def metadata_snapshot(self) -> dict:
        """Serializable copy of the full cluster metadata."""
        # Per-topic storage overrides ride the snapshot only when non-default
        # (no ``"log"`` key at all otherwise), so clusters without storage
        # config ship byte-identical metadata.
        storage_overrides = {}
        for name, config in self.topics.items():
            overrides = config.storage_overrides()
            if overrides is not None:
                storage_overrides[name] = overrides
        partitions = {}
        for key, state in self.partitions.items():
            entry = {
                "topic": state.topic,
                "partition": state.partition,
                "replicas": list(state.replicas),
                "leader": state.leader,
                "leader_epoch": state.leader_epoch,
                "isr": list(state.isr),
            }
            overrides = storage_overrides.get(state.topic)
            if overrides is not None:
                entry["log"] = dict(overrides)
            partitions[key] = entry
        return {
            "version": self.metadata_version,
            "brokers": {
                name: {"host": reg.host, "alive": reg.alive}
                for name, reg in self.brokers.items()
            },
            "partitions": partitions,
        }

    def _snapshot_size(self, snapshot: dict) -> int:
        cached_version, cached_size = self._snapshot_size_cache
        if cached_version != self.metadata_version:
            cached_size = estimate_size(snapshot)
            self._snapshot_size_cache = (self.metadata_version, cached_size)
        return cached_size

    def _bump(self) -> None:
        self.metadata_version += 1

    def _log(self, event: str, **details) -> None:
        self.event_log.append({"time": self.sim.now, "event": event, **details})

    # -- failure detection and elections ------------------------------------------------
    def _failure_detector(self):
        while True:
            yield self.sim.timeout(self.failure_check_interval)
            now = self.sim.now
            for registration in self.brokers.values():
                if registration.alive and now - registration.last_heartbeat > self.session_timeout:
                    registration.alive = False
                    self._log("broker-session-expired", broker=registration.name)
                    self._handle_broker_failure(registration.name)
            self._expire_group_members(now)

    def _handle_broker_failure(self, broker: str) -> None:
        changed = False
        topics_with_new_leader = set()
        for state in self.partitions.values():
            if state.leader == broker:
                self._elect_leader(state, exclude=broker, reason="leader-failure")
                changed = True
                topics_with_new_leader.add(state.topic)
            if broker in state.isr and len(state.isr) > 1:
                state.shrink_isr(broker)
                changed = True
        if changed:
            self._bump()
        # Leadership moved: bump the generation of exactly the groups
        # subscribed to an affected topic, so their members re-sync promptly
        # and refresh metadata towards the newly elected leaders (the
        # assignment itself is unchanged — partitions do not move between
        # brokers on failures).  Unaffected groups see no churn.
        for topic in sorted(topics_with_new_leader):
            self._rebalance_groups_for_topic(topic, reason="broker-failure")

    def _elect_leader(
        self, state: PartitionState, exclude: Optional[str], reason: str
    ) -> None:
        old_leader = state.leader
        candidates = [
            replica
            for replica in state.replicas
            if replica != exclude
            and replica in state.isr
            and self.brokers.get(replica)
            and self.brokers[replica].alive
        ]
        new_leader = candidates[0] if candidates else None
        state.leader = new_leader
        state.leader_epoch += 1
        if exclude is not None:
            state.shrink_isr(exclude)
        self.elections.append(
            ElectionRecord(
                time=self.sim.now,
                partition=state.key,
                new_leader=new_leader,
                old_leader=old_leader,
                epoch=state.leader_epoch,
                reason=reason,
            )
        )
        self._log(
            "leader-elected",
            partition=state.key,
            leader=new_leader,
            old_leader=old_leader,
            epoch=state.leader_epoch,
            reason=reason,
        )

    def _preferred_election_loop(self):
        while True:
            yield self.sim.timeout(self.preferred_election_interval)
            self.run_preferred_replica_election()

    def run_preferred_replica_election(self) -> int:
        """Re-elect preferred leaders where possible; returns how many changed."""
        changed = 0
        for state in self.partitions.values():
            preferred = state.preferred_leader
            if state.leader == preferred:
                continue
            registration = self.brokers.get(preferred)
            if registration is None or not registration.alive:
                continue
            if preferred not in state.isr:
                continue
            self._elect_leader(state, exclude=None, reason="preferred-replica-election")
            # _elect_leader picks the first eligible replica in assignment
            # order, which is the preferred replica by construction.
            changed += 1
        if changed:
            self._bump()
        return changed

    # -- introspection helpers (tests / experiments) -------------------------------------
    def leader_of(self, topic: str, partition: int = 0) -> Optional[str]:
        state = self.partitions.get(f"{topic}-{partition}")
        return state.leader if state else None

    def partition_state(self, topic: str, partition: int = 0) -> Optional[PartitionState]:
        return self.partitions.get(f"{topic}-{partition}")

    def alive_brokers(self) -> List[str]:
        return [name for name, reg in self.brokers.items() if reg.alive]
