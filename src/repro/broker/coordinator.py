"""Cluster coordination service (ZooKeeper / KRaft controller substitute).

The coordinator is the authority on cluster metadata: which brokers are
alive, how partitions are assigned to replicas, who currently leads each
partition and with which epoch, and which replicas are in sync.  Brokers
register with it, heartbeat against it, and pull metadata when the version
changes; it detects broker failures via session timeouts and performs leader
elections, and periodically restores leadership to preferred replicas.

Two coordination modes are supported (``CoordinationMode``):

* ``zookeeper`` — the produce path on brokers never consults the coordinator,
  so a partitioned leader keeps accepting acks<=1 writes that are later
  truncated away when it rejoins (the silent-loss behaviour of [36] that
  Figure 6b shows);
* ``kraft`` — leaders require a fresh coordinator session to acknowledge
  writes, so a partitioned leader quickly stops accepting records and
  producers retry against the new leader instead (no silent loss).

The mode itself is enforced in :mod:`repro.broker.broker`; the coordinator's
protocol is identical in both modes.

Consumer groups
---------------
The coordinator is also the group coordinator (the role a designated broker
plays in Kafka, and ZooKeeper plays for pykafka's balanced consumer): members
join a named group, the coordinator computes a deterministic partition
assignment (``range`` or ``roundrobin`` assignor over sorted members and
sorted partitions), and any membership change — join, graceful leave, session
expiry, broker failure — bumps the group *generation*.  Members discover a
stale generation on their next heartbeat and re-sync their assignment.
Committed offsets live with the group, piggybacked on heartbeats and leaves,
so a partition handed to another member resumes where its previous owner
committed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.network.host import Host
from repro.network.packet import estimate_size
from repro.network.transport import Request, Response, Transport
from repro.broker.topic import PartitionState, TopicConfig

COORDINATOR_PORT = 2181

#: Assignor names accepted by ``join_group``.
GROUP_ASSIGNORS = ("range", "roundrobin")


def assign_range(
    members: Dict[str, List[str]], partitions_by_topic: Dict[str, List[str]]
) -> Dict[str, List[str]]:
    """Kafka's range assignor: contiguous per-topic chunks of sorted partitions.

    ``members`` maps member name -> subscribed topics.  Per topic, the sorted
    subscribing members split the sorted partition list contiguously; the
    first ``n_partitions % n_members`` members receive one extra partition.
    Purely a function of its inputs, so every rebalance is deterministic.
    """
    assignment: Dict[str, List[str]] = {name: [] for name in members}
    for topic in sorted(partitions_by_topic):
        keys = partitions_by_topic[topic]
        subscribers = sorted(name for name, topics in members.items() if topic in topics)
        if not subscribers:
            continue
        base, extra = divmod(len(keys), len(subscribers))
        start = 0
        for index, name in enumerate(subscribers):
            take = base + (1 if index < extra else 0)
            assignment[name].extend(keys[start : start + take])
            start += take
    return assignment


def assign_roundrobin(
    members: Dict[str, List[str]], partitions_by_topic: Dict[str, List[str]]
) -> Dict[str, List[str]]:
    """Round-robin assignor: deal sorted (topic, partition) pairs to sorted members."""
    assignment: Dict[str, List[str]] = {name: [] for name in members}
    cursor = 0
    for topic in sorted(partitions_by_topic):
        subscribers = sorted(name for name, topics in members.items() if topic in topics)
        if not subscribers:
            continue
        for key in partitions_by_topic[topic]:
            assignment[subscribers[cursor % len(subscribers)]].append(key)
            cursor += 1
    return assignment


_ASSIGNOR_FNS = {"range": assign_range, "roundrobin": assign_roundrobin}


@dataclass
class GroupMember:
    """One live member of a consumer group."""

    name: str
    topics: List[str]
    last_heartbeat: float


@dataclass
class GroupState:
    """Coordinator-side state of one consumer group."""

    name: str
    assignor: str = "range"
    generation: int = 0
    members: Dict[str, GroupMember] = field(default_factory=dict)
    #: member name -> assigned partition keys (sorted per member).
    assignment: Dict[str, List[str]] = field(default_factory=dict)
    #: partition key -> committed offset (next offset to consume).
    committed: Dict[str, int] = field(default_factory=dict)

    def subscribed_topics(self) -> List[str]:
        topics: List[str] = []
        for member in self.members.values():
            for topic in member.topics:
                if topic not in topics:
                    topics.append(topic)
        return sorted(topics)


class CoordinationMode(str, enum.Enum):
    """How cluster metadata is coordinated."""

    ZOOKEEPER = "zookeeper"
    KRAFT = "kraft"


@dataclass
class BrokerRegistration:
    """Liveness record for one registered broker."""

    name: str
    host: str
    last_heartbeat: float
    alive: bool = True


@dataclass
class ElectionRecord:
    """History entry for tests and the event log."""

    time: float
    partition: str
    new_leader: Optional[str]
    old_leader: Optional[str]
    epoch: int
    reason: str


class Coordinator:
    """The metadata/coordination service, bound to one host."""

    def __init__(
        self,
        host: Host,
        mode: CoordinationMode = CoordinationMode.ZOOKEEPER,
        session_timeout: float = 9.0,
        failure_check_interval: float = 1.0,
        preferred_election_interval: float = 30.0,
    ) -> None:
        if session_timeout <= 0:
            raise ValueError("session_timeout must be positive")
        self.host = host
        self.sim = host.sim
        self.mode = CoordinationMode(mode)
        self.session_timeout = session_timeout
        self.failure_check_interval = failure_check_interval
        self.preferred_election_interval = preferred_election_interval
        self.transport = Transport(host)
        self.brokers: Dict[str, BrokerRegistration] = {}
        self.partitions: Dict[str, PartitionState] = {}
        self.topics: Dict[str, TopicConfig] = {}
        self.groups: Dict[str, GroupState] = {}
        #: Idempotent-producer registry: producer name -> [producer_id,
        #: epoch].  Re-initializing an existing name bumps the epoch, which
        #: fences the previous instance (Kafka's transactional.id semantics
        #: applied to the idempotence subset).
        self.producer_ids: Dict[str, List[int]] = {}
        self._next_producer_id = 0
        self.metadata_version = 0
        self._snapshot_size_cache: tuple = (None, 0)
        self.elections: List[ElectionRecord] = []
        self.event_log: List[dict] = []
        self._started = False
        self.transport.register(COORDINATOR_PORT, self._handle)
        host.register_component(self)

    # -- lifecycle -------------------------------------------------------------------
    def start(self) -> None:
        """Start the failure detector and preferred-leader election loops."""
        if self._started:
            return
        self._started = True
        self.sim.process(self._failure_detector(), name="coordinator:failure-detector")
        self.sim.process(
            self._preferred_election_loop(), name="coordinator:preferred-election"
        )

    @property
    def name(self) -> str:
        return f"coordinator@{self.host.name}"

    # -- request handling -------------------------------------------------------------
    def _handle(self, request: Request):
        payload = request.payload or {}
        request_type = payload.get("type")
        if request_type == "register":
            return self._handle_register(payload)
        if request_type == "heartbeat":
            return self._handle_heartbeat(payload)
        if request_type == "metadata":
            # Fresh snapshot per reply (callers mutate their copy), but the
            # reply-size estimate is cached per metadata version so the
            # transport does not re-walk the snapshot on every heartbeat.
            snapshot = self.metadata_snapshot()
            return Response(payload=snapshot, size=self._snapshot_size(snapshot))
        if request_type == "create_topic":
            return self._handle_create_topic(payload)
        if request_type == "isr_update":
            return self._handle_isr_update(payload)
        if request_type == "init_producer_id":
            return self._handle_init_producer_id(payload)
        if request_type == "join_group":
            return self._handle_join_group(payload)
        if request_type == "sync_group":
            return self._handle_sync_group(payload)
        if request_type == "group_heartbeat":
            return self._handle_group_heartbeat(payload)
        if request_type == "leave_group":
            return self._handle_leave_group(payload)
        return {"error": f"unknown request type {request_type!r}"}

    def _handle_register(self, payload: dict) -> dict:
        name = payload["broker"]
        host = payload["host"]
        self.brokers[name] = BrokerRegistration(
            name=name, host=host, last_heartbeat=self.sim.now, alive=True
        )
        self._log("broker-registered", broker=name, host=host)
        self._bump()
        return {"version": self.metadata_version}

    def _handle_heartbeat(self, payload: dict) -> dict:
        name = payload["broker"]
        registration = self.brokers.get(name)
        if registration is None:
            return {"error": "unknown broker", "version": self.metadata_version}
        registration.last_heartbeat = self.sim.now
        if not registration.alive:
            registration.alive = True
            self._log("broker-rejoined", broker=name)
            self._bump()
        return {"version": self.metadata_version, "session_timeout": self.session_timeout}

    def _handle_create_topic(self, payload: dict) -> dict:
        config = TopicConfig(**payload["config"])
        self.create_topic(config)
        return {"version": self.metadata_version}

    def _handle_isr_update(self, payload: dict) -> dict:
        key = payload["partition"]
        state = self.partitions.get(key)
        if state is None:
            return {"error": "unknown partition"}
        if payload.get("leader_epoch") != state.leader_epoch:
            return {"error": "stale_epoch", "leader_epoch": state.leader_epoch}
        new_isr = [b for b in payload["isr"] if b in state.replicas]
        if new_isr and set(new_isr) != set(state.isr):
            state.isr = new_isr
            self._log("isr-changed", partition=key, isr=list(new_isr))
            self._bump()
        return {"version": self.metadata_version}

    # -- idempotent producers ----------------------------------------------------------
    def _handle_init_producer_id(self, payload: dict) -> dict:
        """Allocate (or re-initialize) a ``(producer_id, epoch)`` pair.

        Producer ids are allocated sequentially (deterministic per run); a
        repeat init under the same name keeps the id but bumps the epoch, so
        partition leaders fence the superseded instance's in-flight retries.
        """
        name = payload.get("name")
        if not name:
            return {"error": "missing producer name"}
        entry = self.producer_ids.get(name)
        if entry is None:
            entry = self.producer_ids[name] = [self._next_producer_id, 0]
            self._next_producer_id += 1
            self._log(
                "producer-id-allocated",
                name=name,
                producer_id=entry[0],
                producer_epoch=0,
            )
        else:
            entry[1] += 1
            self._log(
                "producer-epoch-bumped",
                name=name,
                producer_id=entry[0],
                producer_epoch=entry[1],
            )
        return {"error": None, "producer_id": entry[0], "producer_epoch": entry[1]}

    # -- consumer groups ---------------------------------------------------------------
    def _handle_join_group(self, payload: dict) -> dict:
        group_name = payload["group"]
        member_name = payload["member"]
        topics = list(payload.get("topics", []))
        assignor = payload.get("assignor", "range")
        if assignor not in GROUP_ASSIGNORS:
            return {"error": f"unknown assignor {assignor!r}"}
        group = self.groups.get(group_name)
        if group is None:
            group = self.groups[group_name] = GroupState(name=group_name, assignor=assignor)
        elif not group.members:
            # An emptied group adopts the next joiner's assignor.
            group.assignor = assignor
        elif assignor != group.assignor:
            return {
                "error": f"assignor mismatch: group {group_name!r} uses {group.assignor!r}"
            }
        group.members[member_name] = GroupMember(
            name=member_name, topics=topics, last_heartbeat=self.sim.now
        )
        self._log("group-member-joined", group=group_name, member=member_name)
        self._rebalance_group(group, reason="member-joined")
        return self._group_sync_reply(group, member_name)

    def _handle_sync_group(self, payload: dict) -> dict:
        group = self.groups.get(payload["group"])
        if group is None or payload["member"] not in group.members:
            return {"error": "unknown_member"}
        group.members[payload["member"]].last_heartbeat = self.sim.now
        return self._group_sync_reply(group, payload["member"])

    def _handle_group_heartbeat(self, payload: dict) -> dict:
        group = self.groups.get(payload["group"])
        if group is None or payload["member"] not in group.members:
            return {"error": "unknown_member"}
        group.members[payload["member"]].last_heartbeat = self.sim.now
        # Offset commits piggyback on heartbeats and are accepted even under a
        # stale generation (they describe work already done); commits only
        # ever move forward, so a late heartbeat cannot rewind a partition a
        # new owner has progressed past.
        self._commit_offsets(group, payload.get("offsets"))
        if payload.get("generation") != group.generation:
            return {"error": "rebalance", "generation": group.generation}
        return {"error": None, "generation": group.generation}

    def _handle_leave_group(self, payload: dict) -> dict:
        group = self.groups.get(payload["group"])
        if group is None or payload["member"] not in group.members:
            return {"error": "unknown_member"}
        self._commit_offsets(group, payload.get("offsets"))
        del group.members[payload["member"]]
        self._log("group-member-left", group=group.name, member=payload["member"])
        self._rebalance_group(group, reason="member-left")
        return {"error": None, "generation": group.generation}

    def _commit_offsets(self, group: GroupState, offsets: Optional[dict]) -> None:
        if not offsets:
            return
        committed = group.committed
        for key, offset in offsets.items():
            if offset > committed.get(key, 0):
                committed[key] = offset

    def _group_sync_reply(self, group: GroupState, member: str) -> dict:
        assigned = group.assignment.get(member, [])
        return {
            "error": None,
            "generation": group.generation,
            "assignment": list(assigned),
            "offsets": {key: group.committed.get(key, 0) for key in assigned},
            "session_timeout": self.session_timeout,
        }

    def _rebalance_group(self, group: GroupState, reason: str) -> None:
        """Recompute the group's assignment and bump its generation.

        Deterministic by construction: the assignors see sorted members and
        sorted partition keys, so identical membership and metadata always
        produce the identical assignment, whatever order events arrived in.
        """
        partitions_by_topic: Dict[str, List[str]] = {}
        for topic in group.subscribed_topics():
            keys = sorted(
                (state.key for state in self.partitions.values() if state.topic == topic),
                key=lambda key: self.partitions[key].partition,
            )
            partitions_by_topic[topic] = keys
        member_topics = {name: member.topics for name, member in group.members.items()}
        group.assignment = _ASSIGNOR_FNS[group.assignor](member_topics, partitions_by_topic)
        group.generation += 1
        self._log(
            "group-rebalance",
            group=group.name,
            generation=group.generation,
            reason=reason,
            members=sorted(group.members),
        )

    def _rebalance_groups_for_topic(self, topic: str, reason: str) -> None:
        for group in self.groups.values():
            if group.members and topic in group.subscribed_topics():
                self._rebalance_group(group, reason=reason)

    def _expire_group_members(self, now: float) -> None:
        for group in self.groups.values():
            expired = [
                name
                for name, member in group.members.items()
                if now - member.last_heartbeat > self.session_timeout
            ]
            for name in expired:
                del group.members[name]
                self._log("group-member-expired", group=group.name, member=name)
            if expired:
                self._rebalance_group(group, reason="member-expired")

    def group_state(self, name: str) -> Optional[GroupState]:
        return self.groups.get(name)

    # -- topic management --------------------------------------------------------------
    def create_topic(self, config: TopicConfig) -> List[PartitionState]:
        """Create a topic: assign replicas over live brokers and pick leaders."""
        if config.name in self.topics:
            raise ValueError(f"topic {config.name!r} already exists")
        live = [name for name, reg in self.brokers.items() if reg.alive]
        if len(live) < config.replication_factor:
            raise ValueError(
                f"not enough live brokers ({len(live)}) for replication factor "
                f"{config.replication_factor}"
            )
        self.topics[config.name] = config
        states = []
        ordered = sorted(live)
        if config.preferred_leader:
            if config.preferred_leader not in ordered:
                raise ValueError(
                    f"preferred leader {config.preferred_leader!r} is not a live broker"
                )
            ordered.remove(config.preferred_leader)
            ordered.insert(0, config.preferred_leader)
        for partition in range(config.partitions):
            # Rotate the assignment per partition so load spreads, keeping the
            # user-pinned preferred leader for partition 0.
            rotation = ordered[partition % len(ordered):] + ordered[:partition % len(ordered)]
            replicas = rotation[: config.replication_factor]
            state = PartitionState(
                topic=config.name,
                partition=partition,
                replicas=replicas,
            )
            self.partitions[state.key] = state
            states.append(state)
            self._log(
                "partition-created",
                partition=state.key,
                replicas=list(replicas),
                leader=state.leader,
            )
        self._bump()
        # Groups already subscribed to this topic pick the new partitions up
        # on their next heartbeat (generation bump -> sync).
        self._rebalance_groups_for_topic(config.name, reason="topic-created")
        return states

    # -- metadata ---------------------------------------------------------------------
    def metadata_snapshot(self) -> dict:
        """Serializable copy of the full cluster metadata."""
        return {
            "version": self.metadata_version,
            "brokers": {
                name: {"host": reg.host, "alive": reg.alive}
                for name, reg in self.brokers.items()
            },
            "partitions": {
                key: {
                    "topic": state.topic,
                    "partition": state.partition,
                    "replicas": list(state.replicas),
                    "leader": state.leader,
                    "leader_epoch": state.leader_epoch,
                    "isr": list(state.isr),
                }
                for key, state in self.partitions.items()
            },
        }

    def _snapshot_size(self, snapshot: dict) -> int:
        cached_version, cached_size = self._snapshot_size_cache
        if cached_version != self.metadata_version:
            cached_size = estimate_size(snapshot)
            self._snapshot_size_cache = (self.metadata_version, cached_size)
        return cached_size

    def _bump(self) -> None:
        self.metadata_version += 1

    def _log(self, event: str, **details) -> None:
        self.event_log.append({"time": self.sim.now, "event": event, **details})

    # -- failure detection and elections ------------------------------------------------
    def _failure_detector(self):
        while True:
            yield self.sim.timeout(self.failure_check_interval)
            now = self.sim.now
            for registration in self.brokers.values():
                if registration.alive and now - registration.last_heartbeat > self.session_timeout:
                    registration.alive = False
                    self._log("broker-session-expired", broker=registration.name)
                    self._handle_broker_failure(registration.name)
            self._expire_group_members(now)

    def _handle_broker_failure(self, broker: str) -> None:
        changed = False
        topics_with_new_leader = set()
        for state in self.partitions.values():
            if state.leader == broker:
                self._elect_leader(state, exclude=broker, reason="leader-failure")
                changed = True
                topics_with_new_leader.add(state.topic)
            if broker in state.isr and len(state.isr) > 1:
                state.shrink_isr(broker)
                changed = True
        if changed:
            self._bump()
        # Leadership moved: bump the generation of exactly the groups
        # subscribed to an affected topic, so their members re-sync promptly
        # and refresh metadata towards the newly elected leaders (the
        # assignment itself is unchanged — partitions do not move between
        # brokers on failures).  Unaffected groups see no churn.
        for topic in sorted(topics_with_new_leader):
            self._rebalance_groups_for_topic(topic, reason="broker-failure")

    def _elect_leader(
        self, state: PartitionState, exclude: Optional[str], reason: str
    ) -> None:
        old_leader = state.leader
        candidates = [
            replica
            for replica in state.replicas
            if replica != exclude
            and replica in state.isr
            and self.brokers.get(replica)
            and self.brokers[replica].alive
        ]
        new_leader = candidates[0] if candidates else None
        state.leader = new_leader
        state.leader_epoch += 1
        if exclude is not None:
            state.shrink_isr(exclude)
        self.elections.append(
            ElectionRecord(
                time=self.sim.now,
                partition=state.key,
                new_leader=new_leader,
                old_leader=old_leader,
                epoch=state.leader_epoch,
                reason=reason,
            )
        )
        self._log(
            "leader-elected",
            partition=state.key,
            leader=new_leader,
            old_leader=old_leader,
            epoch=state.leader_epoch,
            reason=reason,
        )

    def _preferred_election_loop(self):
        while True:
            yield self.sim.timeout(self.preferred_election_interval)
            self.run_preferred_replica_election()

    def run_preferred_replica_election(self) -> int:
        """Re-elect preferred leaders where possible; returns how many changed."""
        changed = 0
        for state in self.partitions.values():
            preferred = state.preferred_leader
            if state.leader == preferred:
                continue
            registration = self.brokers.get(preferred)
            if registration is None or not registration.alive:
                continue
            if preferred not in state.isr:
                continue
            self._elect_leader(state, exclude=None, reason="preferred-replica-election")
            # _elect_leader picks the first eligible replica in assignment
            # order, which is the preferred replica by construction.
            changed += 1
        if changed:
            self._bump()
        return changed

    # -- introspection helpers (tests / experiments) -------------------------------------
    def leader_of(self, topic: str, partition: int = 0) -> Optional[str]:
        state = self.partitions.get(f"{topic}-{partition}")
        return state.leader if state else None

    def partition_state(self, topic: str, partition: int = 0) -> Optional[PartitionState]:
        return self.partitions.get(f"{topic}-{partition}")

    def alive_brokers(self) -> List[str]:
        return [name for name, reg in self.brokers.items() if reg.alive]
