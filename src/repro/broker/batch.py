"""Batch-native wire records: the ``RecordBatch`` abstraction.

Every layer of the data plane speaks this one type instead of lists of
per-record dicts, mirroring Kafka's on-disk/wire ``RecordBatch`` format
(KIP-98 v2 message sets): a *batch header* carrying the shared metadata once
(topic, partition, base offset, record count, total payload bytes, leader
epoch) and a *columnar payload* of parallel arrays (keys, values, sizes,
produce timestamps, optional append timestamps / per-record epochs /
headers).

Why columnar
------------
The emulator is message-level, so the "wire format" is a Python object
travelling inside a :class:`~repro.network.packet.Packet`.  What matters for
speed is allocation count: shipping ``n`` records as one ``RecordBatch``
costs O(1) Python objects per hop (plus C-level list extends), where the old
format allocated one dict per record per hop — producer encode, broker
append, fetch encode, consumer decode.  Sizing is O(1) too: ``total_size``
is maintained incrementally in the header, so neither the transport nor the
broker ever re-sums (let alone re-estimates) per-record sizes.

Producer identity (idempotence)
-------------------------------
Mirroring KIP-98, a produce batch may carry a producer identity in its
header: ``producer_id`` (coordinator-allocated), ``producer_epoch`` (bumped
on re-initialization, fencing zombie instances) and ``base_sequence`` (the
per-partition sequence number of the batch's first record; record ``i``
implicitly holds ``base_sequence + i``).  All three default to -1 — "no
producer identity" — and partition leaders use them to drop duplicate
retries (see ``docs/exactly_once.md``).  Batches read back *out of a log*
instead carry per-record ``producer_ids``/``sequences`` columns (a log range
may interleave many producers), which is how replica fetches hand the dedup
state down to followers.  Kafka's v2 batch header already reserves these
fields inside its 61 bytes, so :data:`BATCH_HEADER_OVERHEAD` is unchanged
and non-idempotent wire traffic is byte-identical to the pre-idempotence
format.

Transactions (KIP-98)
---------------------
A produce batch from a transactional producer additionally sets the header's
``transactional`` bit; partition leaders use it to track the first offset of
each producer's open transaction (the Last Stable Offset bookkeeping behind
``read_committed`` consumers).  Transactions end with *control records* —
COMMIT/ABORT markers written by the transaction coordinator, one log entry
carrying ``(marker, producer_id, producer_epoch)``.  Like the producer
columns, ``transactionals``/``controls`` per-record columns appear only on
log-read batches (replica fetches), so markers and the transactional bit
survive leader elections through the ordinary replication path.  Kafka's v2
header carries the transactional/control bits inside its attributes field,
so :data:`BATCH_HEADER_OVERHEAD` is again unchanged and non-transactional
wire traffic stays byte-identical.

Column ownership on fetch replies
---------------------------------
``PartitionLog.read_batch`` builds every reply batch from *fresh* list
slices of the log's columns, and nothing on the broker or transport side
retains a reference after the reply is sent.  A consumer therefore owns the
columns of every fetched batch it receives, and batch-level observers
(``Consumer.on_batch``) may adopt ``keys``/``values``/``sizes``/
``produced_ats`` wholesale instead of copying — this is what makes the
SPE's fused columnar ingest zero-copy from fetch slice to operator plane
(see :meth:`repro.engine.columns.ColumnBatch.extend_from_wire`).  The one
shared object is :data:`EMPTY_BATCH`, whose columns are empty and must stay
that way — adopters must not take its lists (``extend_from_wire`` never
does: empty batches are not delivered to observers).

Size accounting rules
---------------------
* ``total_size`` is the sum of the per-record payload sizes (the same
  values the per-record path carried), updated on every ``append``/slice.
* ``wire_size`` adds :data:`BATCH_HEADER_OVERHEAD` once per batch — the
  shared header cost that the old format paid per record via dict keys.
* Consumers account ``bytes_consumed`` straight from the header; the
  invariant ``batch.total_size == sum(batch.sizes)`` is locked by tests.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Bytes of shared batch-header overhead charged once per batch on the wire
#: (Kafka's v2 record-batch header is 61 bytes).
BATCH_HEADER_OVERHEAD = 61

#: Payload bytes of one transaction control record (COMMIT/ABORT marker) —
#: Kafka's control records carry a small fixed key/value pair.
CONTROL_RECORD_SIZE = 16


class RecordBatch:
    """One batch of records with a shared header and columnar payload.

    The same object serves as the producer's accumulator drain, the produce
    request payload, the partition-log append/fetch unit and the fetch
    response payload; only the header fields that make sense for a given
    direction are populated (e.g. ``base_offset`` is -1 until the leader
    assigns offsets, ``timestamps``/``leader_epochs`` only exist on batches
    read back out of a log).
    """

    __slots__ = (
        "topic",
        "partition",
        "base_offset",
        "leader_epoch",
        "producer_id",
        "producer_epoch",
        "base_sequence",
        "transactional",
        "keys",
        "values",
        "sizes",
        "produced_ats",
        "timestamps",
        "leader_epochs",
        "producer_ids",
        "producer_epochs",
        "sequences",
        "transactionals",
        "controls",
        "headers",
        "offsets",
        "total_size",
    )

    def __init__(
        self,
        topic: str,
        partition: int = 0,
        base_offset: int = -1,
        leader_epoch: int = -1,
        producer_id: int = -1,
        producer_epoch: int = -1,
        base_sequence: int = -1,
    ) -> None:
        self.topic = topic
        self.partition = partition
        #: Offset of the first record (-1 until assigned by the leader).
        self.base_offset = base_offset
        #: Epoch the whole batch was appended under (-1 = unassigned/mixed).
        self.leader_epoch = leader_epoch
        #: Producer identity of the whole batch (-1 = non-idempotent send).
        self.producer_id = producer_id
        self.producer_epoch = producer_epoch
        #: Per-partition sequence of the first record; record ``i`` holds
        #: ``base_sequence + i``.  Fixed at drain time and reused verbatim
        #: across retries — which is exactly what makes retries dedupable.
        self.base_sequence = base_sequence
        #: True when the batch's records belong to an open transaction
        #: (leaders then track the open transaction's first offset for LSO
        #: accounting).  Rides inside the v2 header's attributes bits, so the
        #: wire size is unchanged.
        self.transactional = False
        self.keys: List[Any] = []
        self.values: List[Any] = []
        self.sizes: List[int] = []
        self.produced_ats: List[float] = []
        #: Broker append timestamps (populated on fetched batches only).
        self.timestamps: Optional[List[float]] = None
        #: Per-record leader epochs (replica-fetch batches only; a batch read
        #: from a log may span an epoch boundary).
        self.leader_epochs: Optional[List[int]] = None
        #: Per-record producer ids / sequences (log-read batches only; a log
        #: range may interleave batches from many producers).  ``None`` when
        #: no record in the range carried a producer identity.
        self.producer_ids: Optional[List[int]] = None
        self.producer_epochs: Optional[List[int]] = None
        self.sequences: Optional[List[int]] = None
        #: Per-record transactional bits / control markers (log-read batches
        #: only; ``None`` when the range holds no transactional traffic).  A
        #: control entry is a ``(marker, producer_id, producer_epoch)`` tuple
        #: — ``"commit"``/``"abort"`` — or ``None`` for data records.
        self.transactionals: Optional[List[bool]] = None
        self.controls: Optional[List[Optional[Tuple[str, int, int]]]] = None
        #: Per-record header dicts, or None when every record's headers are
        #: empty (the overwhelmingly common case — no allocation then).
        self.headers: Optional[List[Optional[Dict[str, Any]]]] = None
        #: Explicit per-record offsets, or None for the contiguous common
        #: case (record ``i`` at ``base_offset + i``).  Only ranges read out
        #: of *compacted* log segments carry this column — compaction keeps
        #: surviving records at their original, now-gapped offsets.
        self.offsets: Optional[List[int]] = None
        #: Sum of per-record payload sizes (maintained incrementally).
        self.total_size = 0

    # -- construction ----------------------------------------------------------------
    def append(
        self,
        key: Any,
        value: Any,
        size: int,
        produced_at: float,
        headers: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Add one record (producer-side accumulation)."""
        self.keys.append(key)
        self.values.append(value)
        self.sizes.append(size)
        self.produced_ats.append(produced_at)
        self.total_size += size
        if headers:
            if self.headers is None:
                self.headers = [None] * (len(self.keys) - 1)
            self.headers.append(dict(headers))
        elif self.headers is not None:
            self.headers.append(None)

    @classmethod
    def from_columns(
        cls,
        topic: str,
        partition: int,
        base_offset: int,
        keys: List[Any],
        values: List[Any],
        sizes: List[int],
        produced_ats: List[float],
        timestamps: Optional[List[float]] = None,
        leader_epochs: Optional[List[int]] = None,
        headers: Optional[List[Optional[Dict[str, Any]]]] = None,
        total_size: Optional[int] = None,
        leader_epoch: int = -1,
        producer_ids: Optional[List[int]] = None,
        producer_epochs: Optional[List[int]] = None,
        sequences: Optional[List[int]] = None,
        transactionals: Optional[List[bool]] = None,
        controls: Optional[List[Optional[Tuple[str, int, int]]]] = None,
    ) -> "RecordBatch":
        """Build a batch directly from columns (log reads, workload synthesis)."""
        batch = cls(topic, partition, base_offset=base_offset, leader_epoch=leader_epoch)
        batch.keys = keys
        batch.values = values
        batch.sizes = sizes
        batch.produced_ats = produced_ats
        batch.timestamps = timestamps
        batch.leader_epochs = leader_epochs
        batch.producer_ids = producer_ids
        batch.producer_epochs = producer_epochs
        batch.sequences = sequences
        batch.transactionals = transactionals
        batch.controls = controls
        batch.headers = headers
        batch.total_size = sum(sizes) if total_size is None else total_size
        return batch

    # -- header accessors -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __bool__(self) -> bool:
        return bool(self.values)

    @property
    def last_offset(self) -> int:
        """Offset of the final record (header arithmetic, no payload walk)."""
        if self.offsets is not None:
            return self.offsets[-1] if self.offsets else self.base_offset - 1
        return self.base_offset + len(self.values) - 1

    @property
    def next_offset(self) -> int:
        if self.offsets is not None:
            return self.offsets[-1] + 1 if self.offsets else self.base_offset
        return self.base_offset + len(self.values)

    @property
    def wire_size(self) -> int:
        """Bytes the batch occupies on the wire: payload + one shared header."""
        return self.total_size + BATCH_HEADER_OVERHEAD

    def headers_at(self, index: int) -> Dict[str, Any]:
        if self.headers is None:
            return {}
        return self.headers[index] or {}

    def timestamp_at(self, index: int, default: float = 0.0) -> float:
        if self.timestamps is None:
            return default
        return self.timestamps[index]

    def epoch_at(self, index: int) -> int:
        if self.leader_epochs is None:
            return self.leader_epoch
        return self.leader_epochs[index]

    # -- iteration ---------------------------------------------------------------------
    def iter_records(self) -> Iterator[Tuple[int, Any, Any, int, float]]:
        """Yield ``(offset, key, value, size, produced_at)`` lazily per record."""
        if self.offsets is not None:
            for index, value in enumerate(self.values):
                yield (
                    self.offsets[index],
                    self.keys[index],
                    value,
                    self.sizes[index],
                    self.produced_ats[index],
                )
            return
        base = self.base_offset
        for index, value in enumerate(self.values):
            yield (
                base + index,
                self.keys[index],
                value,
                self.sizes[index],
                self.produced_ats[index],
            )

    def offset_at(self, index: int) -> int:
        if self.offsets is not None:
            return self.offsets[index]
        return self.base_offset + index

    # -- slicing -----------------------------------------------------------------------
    def tail(self, skip: int) -> "RecordBatch":
        """A new batch without the first ``skip`` records (replica overlap trim)."""
        if skip <= 0:
            return self
        trimmed = RecordBatch.from_columns(
            self.topic,
            self.partition,
            base_offset=self.base_offset + skip,
            keys=self.keys[skip:],
            values=self.values[skip:],
            sizes=self.sizes[skip:],
            produced_ats=self.produced_ats[skip:],
            timestamps=self.timestamps[skip:] if self.timestamps is not None else None,
            leader_epochs=(
                self.leader_epochs[skip:] if self.leader_epochs is not None else None
            ),
            producer_ids=(
                self.producer_ids[skip:] if self.producer_ids is not None else None
            ),
            producer_epochs=(
                self.producer_epochs[skip:] if self.producer_epochs is not None else None
            ),
            sequences=self.sequences[skip:] if self.sequences is not None else None,
            transactionals=(
                self.transactionals[skip:] if self.transactionals is not None else None
            ),
            controls=self.controls[skip:] if self.controls is not None else None,
            headers=self.headers[skip:] if self.headers is not None else None,
            leader_epoch=self.leader_epoch,
        )
        trimmed.producer_id = self.producer_id
        trimmed.producer_epoch = self.producer_epoch
        trimmed.transactional = self.transactional
        if self.base_sequence >= 0:
            trimmed.base_sequence = self.base_sequence + skip
        return trimmed

    def run(self, start: int, stop: int) -> "RecordBatch":
        """The contiguous sub-batch covering rows ``[start, stop)`` of a
        *gapped* batch (``offsets`` must be set and contiguous over the run).
        The result is an ordinary contiguous batch based at the run's first
        offset — what lets replication split a compacted-range reply into
        plain appends."""
        offsets = self.offsets
        piece = RecordBatch.from_columns(
            self.topic,
            self.partition,
            base_offset=offsets[start],
            keys=self.keys[start:stop],
            values=self.values[start:stop],
            sizes=self.sizes[start:stop],
            produced_ats=self.produced_ats[start:stop],
            timestamps=(
                self.timestamps[start:stop] if self.timestamps is not None else None
            ),
            leader_epochs=(
                self.leader_epochs[start:stop]
                if self.leader_epochs is not None
                else None
            ),
            producer_ids=(
                self.producer_ids[start:stop]
                if self.producer_ids is not None
                else None
            ),
            producer_epochs=(
                self.producer_epochs[start:stop]
                if self.producer_epochs is not None
                else None
            ),
            sequences=(
                self.sequences[start:stop] if self.sequences is not None else None
            ),
            transactionals=(
                self.transactionals[start:stop]
                if self.transactionals is not None
                else None
            ),
            controls=(
                self.controls[start:stop] if self.controls is not None else None
            ),
            headers=self.headers[start:stop] if self.headers is not None else None,
            leader_epoch=self.leader_epoch,
        )
        return piece

    def __repr__(self) -> str:
        return (
            f"<RecordBatch {self.topic}-{self.partition} base={self.base_offset} "
            f"n={len(self.values)} bytes={self.total_size}>"
        )


#: Shared immutable-by-convention empty batch.  Idle consumers and replica
#: fetchers poll constantly; answering them must not allocate a batch plus
#: column slices per request.  Receivers always check ``len(batch)`` before
#: touching header fields, so one sentinel serves every empty reply.
EMPTY_BATCH = RecordBatch("", 0)
