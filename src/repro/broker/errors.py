"""Error types surfaced by the event streaming platform."""

from __future__ import annotations


class BrokerError(Exception):
    """Base class for broker-side errors returned to clients."""


class UnknownTopicError(BrokerError):
    """The topic (or partition) does not exist on this cluster."""


class NotLeaderError(BrokerError):
    """The contacted broker is not the leader for the partition.

    Clients react by refreshing their metadata and retrying against the new
    leader, exactly like Kafka's ``NOT_LEADER_OR_FOLLOWER`` error code.
    """


class NotEnoughReplicasError(BrokerError):
    """acks=all produce rejected because the in-sync replica set is too small."""


class StaleEpochError(BrokerError):
    """A request carried an out-of-date leader epoch."""


class BrokerUnavailableError(BrokerError):
    """The broker process is stopped (crashed host or shut down)."""


class ProducerFencedError(BrokerError):
    """An idempotent produce carried a producer epoch older than the current
    one: a newer instance re-initialized the producer id, fencing this zombie
    (Kafka's ``PRODUCER_FENCED``).

    Note there is deliberately no exception for *duplicate* sequences: a
    duplicate retry is not a failure — the broker acknowledges it positively
    with ``duplicate: True`` in the reply, and clients surface it via
    ``DeliveryReport.duplicate`` / ``Producer.duplicate_acks``."""


class InvalidTxnStateError(BrokerError):
    """A transactional request arrived in a state that cannot accept it —
    an illegal transition of the coordinator's transaction state machine
    (e.g. ``commit_transaction`` without an ongoing transaction, or two
    concurrent ``end_txn`` calls asking for different outcomes).  Mirrors
    Kafka's ``INVALID_TXN_STATE``."""


class TransactionAbortedError(BrokerError):
    """The transaction was aborted (by the coordinator's timeout sweeper or a
    fencing re-initialization) before the producer's commit could complete."""


class BufferExhaustedError(Exception):
    """Producer-side: the configured ``buffer.memory`` is full and
    ``max.block.ms`` elapsed before space became available."""


class DeliveryFailed(Exception):
    """Producer-side: a record could not be delivered within ``delivery.timeout.ms``."""


#: Error-code strings used on the wire (payload dictionaries).
ERROR_CODES = {
    "unknown_topic": UnknownTopicError,
    "not_leader": NotLeaderError,
    "not_enough_replicas": NotEnoughReplicasError,
    "stale_epoch": StaleEpochError,
    "unavailable": BrokerUnavailableError,
    "producer_fenced": ProducerFencedError,
    "invalid_txn_state": InvalidTxnStateError,
    "transaction_aborted": TransactionAbortedError,
}


def error_from_code(code: str, message: str = "") -> BrokerError:
    """Instantiate the exception class matching a wire error code."""
    exception_class = ERROR_CODES.get(code, BrokerError)
    return exception_class(message or code)


def code_for_error(error: BaseException) -> str:
    """Map an exception instance back to its wire error code."""
    for code, exception_class in ERROR_CODES.items():
        if isinstance(error, exception_class):
            return code
    return "broker_error"
