"""Record types exchanged between clients and brokers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.network.packet import estimate_size


@dataclass
class ProducerRecord:
    """A record handed to :class:`~repro.broker.producer.Producer.send`.

    Mirrors Kafka's ``ProducerRecord``: a topic, an optional key (used for
    partitioning), a value, and optional headers.
    """

    topic: str
    value: Any
    key: Optional[Any] = None
    partition: Optional[int] = None
    headers: Dict[str, Any] = field(default_factory=dict)
    size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size is None:
            self.size = estimate_size(self.value) + estimate_size(self.key, floor=0)
        if self.size < 0:
            raise ValueError("record size must be non-negative")

    def partition_for(self, n_partitions: int, fallback: int = 0) -> int:
        """Choose the partition: explicit, key-hash, or round-robin fallback."""
        if self.partition is not None:
            if not 0 <= self.partition < n_partitions:
                raise ValueError(
                    f"partition {self.partition} out of range [0, {n_partitions})"
                )
            return self.partition
        if self.key is not None:
            return _stable_hash(self.key) % n_partitions
        return fallback % n_partitions


@dataclass(frozen=True)
class RecordMetadata:
    """Returned to producers when a record is acknowledged."""

    topic: str
    partition: int
    offset: int
    timestamp: float
    produced_at: float

    @property
    def commit_latency(self) -> float:
        """Time between the application's send() call and the acknowledgement."""
        return self.timestamp - self.produced_at


def _stable_hash(value: Any) -> int:
    """Deterministic (process-independent) hash used for key partitioning."""
    data = repr(value).encode("utf-8")
    accumulator = 2166136261
    for byte in data:
        accumulator ^= byte
        accumulator = (accumulator * 16777619) & 0xFFFFFFFF
    return accumulator
