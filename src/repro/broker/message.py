"""Record types exchanged between clients and brokers."""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.network.packet import estimate_size


class ProducerRecord:
    """A record handed to :class:`~repro.broker.producer.Producer.send`.

    Mirrors Kafka's ``ProducerRecord``: a topic, an optional key (used for
    partitioning), a value, and optional headers.  A ``__slots__`` class —
    one instance exists per produced record, so construction is hot.
    """

    __slots__ = ("topic", "value", "key", "partition", "headers", "size")

    def __init__(
        self,
        topic: str,
        value: Any,
        key: Optional[Any] = None,
        partition: Optional[int] = None,
        headers: Optional[Dict[str, Any]] = None,
        size: Optional[int] = None,
    ) -> None:
        self.topic = topic
        self.value = value
        self.key = key
        self.partition = partition
        self.headers = {} if headers is None else headers
        if size is None:
            size = estimate_size(value) + estimate_size(key, floor=0)
        elif size < 0:
            raise ValueError("record size must be non-negative")
        self.size = size

    def __repr__(self) -> str:
        return (
            f"ProducerRecord(topic={self.topic!r}, key={self.key!r}, "
            f"partition={self.partition}, size={self.size})"
        )

    def partition_for(self, n_partitions: int, fallback: int = 0) -> int:
        """Choose the partition: explicit, key-hash, or round-robin fallback.

        ``n_partitions == 0`` means the client has no metadata for the topic
        yet: an explicit partition is trusted (the broker validates it on
        produce), everything else lands on partition 0 — exactly where the
        old "assume 1" fallback put it.
        """
        if self.partition is not None:
            if n_partitions > 0 and not 0 <= self.partition < n_partitions:
                raise ValueError(
                    f"partition {self.partition} out of range [0, {n_partitions})"
                )
            return self.partition
        if n_partitions <= 1:
            # Single-partition (or unknown) topic: every strategy lands on 0.
            return 0
        if self.key is not None:
            return _stable_hash(self.key) % n_partitions
        return fallback % n_partitions


class RecordMetadata:
    """Returned to producers when a record is acknowledged.

    A plain ``__slots__`` class: one instance is created per acknowledged
    record on the producer hot path, so construction cost matters.
    """

    __slots__ = ("topic", "partition", "offset", "timestamp", "produced_at")

    def __init__(
        self,
        topic: str,
        partition: int,
        offset: int,
        timestamp: float,
        produced_at: float,
    ) -> None:
        self.topic = topic
        self.partition = partition
        self.offset = offset
        self.timestamp = timestamp
        self.produced_at = produced_at

    @property
    def commit_latency(self) -> float:
        """Time between the application's send() call and the acknowledgement."""
        return self.timestamp - self.produced_at

    def __repr__(self) -> str:
        return (
            f"RecordMetadata(topic={self.topic!r}, partition={self.partition}, "
            f"offset={self.offset}, timestamp={self.timestamp}, "
            f"produced_at={self.produced_at})"
        )


def _stable_hash(value: Any) -> int:
    """Deterministic (process-independent) hash used for key partitioning."""
    data = repr(value).encode("utf-8")
    accumulator = 2166136261
    for byte in data:
        accumulator ^= byte
        accumulator = (accumulator * 16777619) & 0xFFFFFFFF
    return accumulator
