"""Discrete-event simulation engine.

This package provides the foundational substrate on which every other
subsystem (network emulation, event streaming platform, stream processing
engine, data stores) is built.  The model follows the classic
process-interaction style: simulation *processes* are Python generators that
yield :class:`~repro.simulation.events.Event` instances and are resumed by the
:class:`~repro.simulation.engine.Simulator` when those events fire.

Public API
----------

``Simulator``
    The event loop: schedules events, advances simulated time and runs
    processes.
``Process``
    A running generator registered with the simulator.
``Event`` / ``Timeout`` / ``AnyOf`` / ``AllOf``
    Awaitable primitives.
``Store`` / ``PriorityStore``
    Unbounded / bounded FIFO queues for inter-process communication.
``Resource``
    A counted resource with FIFO request queues.
``Container``
    A continuous-quantity resource (e.g. buffer memory in bytes).
``Interrupt``
    Exception injected into a process when it is interrupted.
"""

from repro.simulation.engine import Simulator
from repro.simulation.events import AllOf, AnyOf, Event, Timeout
from repro.simulation.process import Interrupt, Process
from repro.simulation.resources import Container, PriorityStore, Resource, Store

__all__ = [
    "Simulator",
    "Process",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Store",
    "PriorityStore",
    "Resource",
    "Container",
]
