"""Event primitives for the discrete-event engine.

An :class:`Event` is a one-shot object that starts *pending* and is later
*triggered* with a value (success) or an exception (failure).  Processes wait
on events by yielding them; the simulator resumes the process once the event
fires.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        The owning simulator.  Events can only be scheduled on the simulator
        that created them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator") -> None:  # noqa: F821 - forward ref
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have been processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is PENDING:
            raise RuntimeError("event is still pending; value not available")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the simulation."""
        self._defused = True

    @property
    def defused(self) -> bool:
        return self._defused

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event (used by conditions)."""
        self._ok = event._ok
        self._value = event._value
        self.sim._schedule(self)

    def __repr__(self) -> str:
        state = "pending" if self._value is PENDING else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires after a fixed simulated-time delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay=delay)


class ConditionValue:
    """Mapping-like view over the events that triggered within a condition."""

    __slots__ = ("events", "_members")

    def __init__(self, events: List[Event]) -> None:
        self.events = events
        # Identity set for O(1) membership; events hash by identity, and the
        # ``request`` hot path probes ``waiter in outcome`` on every RPC.
        self._members = set(events)

    def __getitem__(self, event: Event) -> Any:
        if event not in self._members:
            raise KeyError(event)
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self._members

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict:
        return {e: e._value for e in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits for a boolean combination of other events."""

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate

        for event in self._events:
            if event.sim is not sim:
                raise ValueError("cannot mix events from different simulators")

        if not self._events:
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            if self.triggered:
                # Fast path: already-processed events decided the condition
                # (e.g. AnyOf over a fired event); skip registering callbacks
                # on the rest — _check would ignore them anyway.
                break
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _triggered_events(self) -> List[Event]:
        # An event counts as having fired for condition purposes once it has
        # been *processed* (Timeouts are value-triggered at creation time, so
        # ``triggered`` alone would over-report).
        return [e for e in self._events if e.callbacks is None]

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event.defuse()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(ConditionValue(self._triggered_events()))


class AllOf(Condition):
    """Fires once *all* given events have fired."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:  # noqa: F821
        super().__init__(sim, lambda events, count: count == len(events), events)


class AnyOf(Condition):
    """Fires once *any* of the given events has fired."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:  # noqa: F821
        super().__init__(sim, lambda events, count: count >= 1, events)
