"""Shared resources for inter-process coordination.

Three families of primitives are provided:

* :class:`Store` / :class:`PriorityStore` — message queues.  Most of the
  emulator's communication (NIC transmit queues, broker request queues,
  consumer fetch responses) is built on stores.
* :class:`Resource` — a counted resource with FIFO waiters, used to model
  CPU cores and concurrent-connection limits.
* :class:`Container` — a continuous quantity (e.g. producer buffer memory in
  bytes) that processes can put into and get out of.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generic, List, Optional, TypeVar

from repro.simulation.events import Event

T = TypeVar("T")


class StorePut(Event):
    """Event returned by :meth:`Store.put`; fires when the item is accepted."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.sim)
        self.item = item


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; fires with the retrieved item."""

    __slots__ = ()


class Store(Generic[T]):
    """An (optionally bounded) FIFO queue of items.

    ``put`` events succeed immediately while the store has capacity and block
    otherwise; ``get`` events succeed immediately while items are available.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:  # noqa: F821
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: List[T] = []
        self._put_queue: List[StorePut] = []
        self._get_queue: List[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    @property
    def pending_gets(self) -> int:
        return len(self._get_queue)

    @property
    def pending_puts(self) -> int:
        return len(self._put_queue)

    def put(self, item: T) -> StorePut:
        event = StorePut(self, item)
        self._put_queue.append(event)
        self._trigger_puts()
        self._trigger_gets()
        return event

    def get(self) -> StoreGet:
        event = StoreGet(self.sim)
        self._get_queue.append(event)
        self._trigger_gets()
        return event

    def try_get(self) -> Optional[T]:
        """Non-blocking get: pop an item if one is immediately available."""
        if self.items:
            item = self.items.pop(0)
            self._trigger_puts()
            return item
        return None

    def peek(self) -> Optional[T]:
        return self.items[0] if self.items else None

    # -- internal --------------------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.pop(0))
            return True
        return False

    def _trigger_puts(self) -> None:
        while self._put_queue:
            event = self._put_queue[0]
            if event.triggered:
                self._put_queue.pop(0)
                continue
            if self._do_put(event):
                self._put_queue.pop(0)
            else:
                break

    def _trigger_gets(self) -> None:
        while self._get_queue:
            event = self._get_queue[0]
            if event.triggered:
                self._get_queue.pop(0)
                continue
            if self._do_get(event):
                self._get_queue.pop(0)
                self._trigger_puts()
            else:
                break


class PriorityStore(Store[T]):
    """A store that yields the smallest item first (items must be orderable)."""

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:  # noqa: F821
        super().__init__(sim, capacity)
        self._counter = count()

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            heapq.heappush(self.items, event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(heapq.heappop(self.items))
            return True
        return False


class ResourceRequest(Event):
    """A pending or granted claim on a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource

    def release(self) -> None:
        self.resource.release(self)

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class Resource:
    """A counted resource (e.g. CPU cores, connection slots)."""

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:  # noqa: F821
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.users: List[ResourceRequest] = []
        self.queue: List[ResourceRequest] = []

    @property
    def in_use(self) -> int:
        return len(self.users)

    @property
    def available(self) -> int:
        return self.capacity - len(self.users)

    def request(self) -> ResourceRequest:
        event = ResourceRequest(self)
        if len(self.users) < self.capacity:
            self.users.append(event)
            event.succeed()
        else:
            self.queue.append(event)
        return event

    def release(self, request: ResourceRequest) -> None:
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            self.queue.remove(request)
            return
        while self.queue and len(self.users) < self.capacity:
            waiter = self.queue.pop(0)
            self.users.append(waiter)
            waiter.succeed()


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        super().__init__(container.sim)
        self.amount = amount


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        super().__init__(container.sim)
        self.amount = amount


class Container:
    """A continuous quantity with a maximum level.

    Used to model producer buffer memory: a producer ``get``s buffer space
    before enqueuing a record batch and the sender thread ``put``s it back
    once the batch is acknowledged.
    """

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821
        capacity: float = float("inf"),
        initial: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= initial <= capacity:
            raise ValueError("initial level must lie within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self._level = initial
        self._put_queue: List[ContainerPut] = []
        self._get_queue: List[ContainerGet] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        if amount <= 0:
            raise ValueError("amount must be positive")
        event = ContainerPut(self, amount)
        self._put_queue.append(event)
        self._dispatch()
        return event

    def get(self, amount: float) -> ContainerGet:
        if amount <= 0:
            raise ValueError("amount must be positive")
        if amount > self.capacity:
            raise ValueError(
                f"requested {amount} exceeds container capacity {self.capacity}"
            )
        event = ContainerGet(self, amount)
        self._get_queue.append(event)
        self._dispatch()
        return event

    def try_get(self, amount: float) -> bool:
        """Non-blocking get: take ``amount`` if immediately available."""
        if self._get_queue or amount > self._level:
            return False
        self._level -= amount
        return True

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue:
                event = self._put_queue[0]
                if self._level + event.amount <= self.capacity:
                    self._level += event.amount
                    event.succeed()
                    self._put_queue.pop(0)
                    progressed = True
            if self._get_queue:
                event = self._get_queue[0]
                if event.amount <= self._level:
                    self._level -= event.amount
                    event.succeed()
                    self._get_queue.pop(0)
                    progressed = True
