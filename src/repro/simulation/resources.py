"""Shared resources for inter-process coordination.

Three families of primitives are provided:

* :class:`Store` / :class:`PriorityStore` — message queues.  Most of the
  emulator's communication (NIC transmit queues, broker request queues,
  consumer fetch responses) is built on stores.
* :class:`Resource` — a counted resource with FIFO waiters, used to model
  CPU cores and concurrent-connection limits.
* :class:`Container` — a continuous quantity (e.g. producer buffer memory in
  bytes) that processes can put into and get out of.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Any, Deque, Generic, List, Optional, TypeVar

from repro.simulation.events import Event

T = TypeVar("T")


class StorePut(Event):
    """Event returned by :meth:`Store.put`; fires when the item is accepted."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.sim)
        self.item = item


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; fires with the retrieved item."""

    __slots__ = ()


class Store(Generic[T]):
    """An (optionally bounded) FIFO queue of items.

    ``put`` events succeed immediately while the store has capacity and block
    otherwise; ``get`` events succeed immediately while items are available.

    Both directions have a *waiter-free fast path* (mirroring the link pump):
    when nothing is queued ahead, a ``put`` with spare capacity or a ``get``
    with items available succeeds inline without touching the waiter queues.
    The waiter queues themselves are deques — the old ``pop(0)`` lists went
    quadratic under bursts.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:  # noqa: F821
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[T] = deque()
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def pending_gets(self) -> int:
        return len(self._get_queue)

    @property
    def pending_puts(self) -> int:
        return len(self._put_queue)

    def put(self, item: T) -> StorePut:
        event = StorePut(self, item)
        if not self._put_queue and len(self.items) < self.capacity:
            # Fast path: capacity available and FIFO order preserved (nobody
            # is queued ahead) — accept inline.
            self._push(item)
            event.succeed()
            if self._get_queue:
                self._trigger_gets()
        else:
            self._put_queue.append(event)
            self._trigger_puts()
            self._trigger_gets()
        return event

    def get(self) -> StoreGet:
        event = StoreGet(self.sim)
        if not self._get_queue and self.items:
            # Fast path: item ready and no waiter queued ahead.
            event.succeed(self._pop_next())
            if self._put_queue:
                self._trigger_puts()
        else:
            self._get_queue.append(event)
            self._trigger_gets()
        return event

    def try_get(self) -> Optional[T]:
        """Non-blocking get: pop an item if one is immediately available."""
        if self.items:
            item = self._pop_next()
            self._trigger_puts()
            return item
        return None

    def peek(self) -> Optional[T]:
        return self.items[0] if self.items else None

    # -- storage policy (overridden by PriorityStore) ---------------------------
    def _push(self, item: T) -> None:
        self.items.append(item)

    def _pop_next(self) -> T:
        return self.items.popleft()

    # -- internal --------------------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self._push(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self._pop_next())
            return True
        return False

    def _trigger_puts(self) -> None:
        queue = self._put_queue
        while queue:
            event = queue[0]
            if event.triggered:
                queue.popleft()
                continue
            if self._do_put(event):
                queue.popleft()
            else:
                break

    def _trigger_gets(self) -> None:
        queue = self._get_queue
        while queue:
            event = queue[0]
            if event.triggered:
                queue.popleft()
                continue
            if self._do_get(event):
                queue.popleft()
                self._trigger_puts()
            else:
                break


class PriorityStore(Store[T]):
    """A store that yields the smallest item first (items must be orderable)."""

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:  # noqa: F821
        super().__init__(sim, capacity)
        self.items: List[T] = []  # heap invariant — a list, not a deque
        self._counter = count()

    def _push(self, item: T) -> None:
        heapq.heappush(self.items, item)

    def _pop_next(self) -> T:
        return heapq.heappop(self.items)


class ResourceRequest(Event):
    """A pending or granted claim on a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource

    def release(self) -> None:
        self.resource.release(self)

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class Resource:
    """A counted resource (e.g. CPU cores, connection slots).

    FIFO waiters live in a deque; the grant-on-request and the
    release-with-no-waiters cases never touch it.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:  # noqa: F821
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.users: List[ResourceRequest] = []
        self.queue: Deque[ResourceRequest] = deque()

    @property
    def in_use(self) -> int:
        return len(self.users)

    @property
    def available(self) -> int:
        return self.capacity - len(self.users)

    def request(self) -> ResourceRequest:
        event = ResourceRequest(self)
        if len(self.users) < self.capacity:
            self.users.append(event)
            event.succeed()
        else:
            self.queue.append(event)
        return event

    def release(self, request: ResourceRequest) -> None:
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            self.queue.remove(request)
            return
        queue = self.queue
        if not queue:
            # Fast path: uncontended release (the common case for per-packet
            # CPU charges) — no waiter bookkeeping at all.
            return
        users = self.users
        while queue and len(users) < self.capacity:
            waiter = queue.popleft()
            users.append(waiter)
            waiter.succeed()


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        super().__init__(container.sim)
        self.amount = amount


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        super().__init__(container.sim)
        self.amount = amount


class Container:
    """A continuous quantity with a maximum level.

    Used to model producer buffer memory: a producer ``get``s buffer space
    before enqueuing a record batch and the sender thread ``put``s it back
    once the batch is acknowledged.
    """

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821
        capacity: float = float("inf"),
        initial: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= initial <= capacity:
            raise ValueError("initial level must lie within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self._level = initial
        self._put_queue: Deque[ContainerPut] = deque()
        self._get_queue: Deque[ContainerGet] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        if amount <= 0:
            raise ValueError("amount must be positive")
        event = ContainerPut(self, amount)
        self._put_queue.append(event)
        self._dispatch()
        return event

    def get(self, amount: float) -> ContainerGet:
        if amount <= 0:
            raise ValueError("amount must be positive")
        if amount > self.capacity:
            raise ValueError(
                f"requested {amount} exceeds container capacity {self.capacity}"
            )
        event = ContainerGet(self, amount)
        self._get_queue.append(event)
        self._dispatch()
        return event

    def try_get(self, amount: float) -> bool:
        """Non-blocking get: take ``amount`` if immediately available."""
        if self._get_queue or amount > self._level:
            return False
        self._level -= amount
        return True

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue:
                event = self._put_queue[0]
                if self._level + event.amount <= self.capacity:
                    self._level += event.amount
                    event.succeed()
                    self._put_queue.popleft()
                    progressed = True
            if self._get_queue:
                event = self._get_queue[0]
                if event.amount <= self._level:
                    self._level -= event.amount
                    event.succeed()
                    self._get_queue.popleft()
                    progressed = True
