"""Seeded random number streams used across the emulation.

Every stochastic decision in the emulator (message loss, Poisson inter-arrival
times, jitter) draws from a :class:`SeededRandom` owned by the simulator so
that experiments are exactly reproducible and the property-based tests can
assert determinism.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


class SeededRandom:
    """A thin wrapper over :class:`random.Random` with simulation helpers."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def child(self, name: str) -> "SeededRandom":
        """Derive an independent, deterministic sub-stream."""
        return SeededRandom(deterministic_hash(self._seed, name) & 0x7FFFFFFF)

    # -- basic draws ---------------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return self._random.uniform(low, high)

    def random(self) -> float:
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._random.sample(list(seq), k)

    def shuffle(self, seq: list) -> None:
        self._random.shuffle(seq)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def bernoulli(self, probability: float) -> bool:
        """Return True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    # -- distributions used by workloads --------------------------------------
    def exponential(self, rate: float) -> float:
        """Exponential inter-arrival time for a Poisson process of ``rate`` events/s."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return self._random.expovariate(rate)

    def poisson(self, lam: float) -> int:
        """Poisson-distributed count with mean ``lam`` (Knuth's algorithm)."""
        if lam < 0:
            raise ValueError(f"lambda must be non-negative, got {lam}")
        if lam == 0:
            return 0
        if lam > 500:
            # Normal approximation to avoid underflow for large lambda.
            return max(0, int(round(self._random.gauss(lam, math.sqrt(lam)))))
        threshold = math.exp(-lam)
        k = 0
        p = 1.0
        while True:
            p *= self._random.random()
            if p <= threshold:
                return k
            k += 1

    def pareto(self, alpha: float, minimum: float = 1.0) -> float:
        """Pareto-distributed value (heavy-tailed sizes, e.g. flow sizes)."""
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        return minimum * self._random.paretovariate(alpha)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._random.lognormvariate(mu, sigma)

    def jitter(self, value: float, fraction: float = 0.05) -> float:
        """Return ``value`` perturbed by a uniform +/- ``fraction`` jitter."""
        if fraction <= 0:
            return value
        return value * (1.0 + self._random.uniform(-fraction, fraction))

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """Draw an index in [0, n) following a Zipf distribution (topic popularity)."""
        if n <= 0:
            raise ValueError("n must be positive")
        if skew <= 0:
            return self._random.randrange(n)
        weights = [1.0 / ((i + 1) ** skew) for i in range(n)]
        total = sum(weights)
        target = self._random.random() * total
        acc = 0.0
        for index, weight in enumerate(weights):
            acc += weight
            if target <= acc:
                return index
        return n - 1

    def bytes_payload(self, size: int) -> bytes:
        """Deterministic pseudo-random payload of ``size`` bytes."""
        return bytes(self._random.getrandbits(8) for _ in range(size))

    def state(self) -> object:
        return self._random.getstate()

    def restore(self, state: object) -> None:
        self._random.setstate(state)


def deterministic_hash(*parts: object) -> int:
    """A process-stable hash for deriving seeds from strings/tuples."""
    accumulator = 1469598103934665603
    for part in parts:
        for byte in str(part).encode("utf-8"):
            accumulator ^= byte
            accumulator = (accumulator * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return accumulator


__all__ = ["SeededRandom", "deterministic_hash"]
