"""The simulator: event queue, clock, and run loop.

Two scheduling tiers share one heap:

* the full :class:`~repro.simulation.events.Event` / ``Process`` machinery,
  used wherever a caller needs to *wait* on an occurrence; and
* a zero-allocation fast path — :meth:`Simulator.call_later` — that pushes a
  bare ``(fn, args)`` entry and invokes it directly from the dispatch loop.
  One heap entry per callback, no ``Event``, no generator frame.  The network
  data plane (link propagation, switch forwarding, loopback delivery) runs
  entirely on this path; see :class:`_Callback`.

Both tiers are ordered by ``(time, priority, sequence)`` from a single
monotonic counter, so mixing them cannot reorder same-time events and
determinism is preserved.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional, Union

from repro.simulation.events import AllOf, AnyOf, Event, Timeout
from repro.simulation.process import Process
from repro.simulation.rng import SeededRandom, deterministic_hash

# Priorities: interrupts pre-empt normal events scheduled at the same time.
URGENT = 0
NORMAL = 1


class EmptySchedule(Exception):
    """Raised internally when there are no more events to process."""


class _Callback:
    """A bare scheduled callback: the fast-path heap entry.

    Unlike an :class:`Event` it cannot be waited on, has no value and no
    failure state — the dispatch loop just calls ``fn(*args)``.  This is what
    makes per-packet scheduling cheap: one small object and one heap push
    instead of a ``Process`` + init ``Event`` + ``Timeout``.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable[..., Any], args: tuple) -> None:
        self.fn = fn
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_Callback {getattr(self.fn, '__qualname__', self.fn)!r}>"


class Simulator:
    """Discrete-event simulator.

    The simulator owns the clock and the event queue.  It is deterministic:
    given the same seed and the same sequence of scheduled processes it will
    produce identical traces, which the test-suite relies upon.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (seconds).
    seed:
        Seed for the simulator-owned random number generator.  Components
        should draw randomness from :attr:`random` (or children created via
        :meth:`rng`) so that experiments are reproducible.
    """

    def __init__(self, initial_time: float = 0.0, seed: int = 0) -> None:
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        self.random = SeededRandom(seed)
        self._seed = seed
        self._processed_events = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None outside process code)."""
        return self._active_process

    @property
    def processed_events(self) -> int:
        """Number of events processed so far (diagnostics / benchmarks)."""
        return self._processed_events

    def rng(self, name: str) -> SeededRandom:
        """Derive a named, independent random stream from the simulator seed."""
        return SeededRandom(deterministic_hash(self._seed, name) & 0x7FFFFFFF)

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Register ``generator`` as a new simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires once any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def call_later(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` once, ``delay`` seconds from now (fast path).

        This is the zero-allocation scheduling primitive: it costs one heap
        push and a tiny :class:`_Callback` record, and the dispatch loop calls
        ``fn`` directly.  Use it for fire-and-forget work (packet delivery,
        deferred starts) where nothing needs to wait on the result; use
        :meth:`process` / :meth:`timeout` when the caller must synchronize.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(
            self._queue, (self._now + delay, NORMAL, next(self._eid), _Callback(fn, args))
        )

    def schedule_callback(
        self, delay: float, callback: Callable[[], None], name: str = "callback"
    ) -> None:
        """Run ``callback()`` once, ``delay`` seconds from now.

        Thin compatibility wrapper over :meth:`call_later` (it used to spawn a
        throwaway process per callback; it no longer does).
        """
        self.call_later(delay, callback)

    # -- run loop -------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        try:
            when, _priority, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        self._processed_events += 1
        if type(event) is _Callback:
            event.fn(*event.args)
            return
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            # Unhandled failure: crash the simulation like an uncaught exception.
            raise event._value

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event fires and return its value.
        """
        until_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                until_event = until
                if until_event.processed:
                    # Already fired and delivered in an earlier run() — there
                    # is nothing left to wait for.
                    if until_event._ok:
                        return until_event._value
                    raise until_event._value
            else:
                deadline = float(until)
                if deadline < self._now:
                    raise ValueError(
                        f"until={deadline} lies in the past (now={self._now})"
                    )
                until_event = Event(self)
                until_event._ok = True
                until_event._value = None
                self._schedule(until_event, delay=deadline - self._now, priority=URGENT)

        # Hot loop: an inlined copy of step() with the heap, pop and counters
        # held in locals.  step() stays the single-step API; keep both in sync.
        #
        # The until-event is detected by identity *after* its callbacks have
        # all run — stopping from inside the callback list (the old
        # ``_stop_callback`` approach) silently destroyed every sibling
        # callback behind it, losing e.g. a process parked on the same event
        # before run() was entered.
        queue = self._queue
        pop = heapq.heappop
        processed = 0
        try:
            while True:
                try:
                    when, _priority, _eid, event = pop(queue)
                except IndexError:
                    raise EmptySchedule() from None
                self._now = when
                processed += 1
                if type(event) is _Callback:
                    event.fn(*event.args)
                    continue
                callbacks, event.callbacks = event.callbacks, None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                if event is until_event:
                    if event._ok:
                        return event._value
                    raise event._value
        except EmptySchedule:
            return None
        finally:
            self._processed_events += processed

    def run_until_idle(self, max_time: Optional[float] = None) -> float:
        """Drain the event queue (optionally bounded by ``max_time``) and return the clock."""
        # Same inlined dispatch as run(); bounded by peeking before each pop.
        queue = self._queue
        pop = heapq.heappop
        processed = 0
        try:
            while queue:
                if max_time is not None and queue[0][0] > max_time:
                    self._now = max_time
                    break
                when, _priority, _eid, event = pop(queue)
                self._now = when
                processed += 1
                if type(event) is _Callback:
                    event.fn(*event.args)
                    continue
                callbacks, event.callbacks = event.callbacks, None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
        finally:
            self._processed_events += processed
        return self._now

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:.6f} queued={len(self._queue)}>"
