"""The simulator: event queue, clock, and run loop."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional, Union

from repro.simulation.events import AllOf, AnyOf, Event, Timeout
from repro.simulation.process import Process
from repro.simulation.rng import SeededRandom, deterministic_hash

# Priorities: interrupts pre-empt normal events scheduled at the same time.
URGENT = 0
NORMAL = 1


class EmptySchedule(Exception):
    """Raised internally when there are no more events to process."""


class StopSimulation(Exception):
    """Raised to terminate :meth:`Simulator.run` when its until-event fires."""


class Simulator:
    """Discrete-event simulator.

    The simulator owns the clock and the event queue.  It is deterministic:
    given the same seed and the same sequence of scheduled processes it will
    produce identical traces, which the test-suite relies upon.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (seconds).
    seed:
        Seed for the simulator-owned random number generator.  Components
        should draw randomness from :attr:`random` (or children created via
        :meth:`rng`) so that experiments are reproducible.
    """

    def __init__(self, initial_time: float = 0.0, seed: int = 0) -> None:
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        self.random = SeededRandom(seed)
        self._seed = seed
        self._processed_events = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None outside process code)."""
        return self._active_process

    @property
    def processed_events(self) -> int:
        """Number of events processed so far (diagnostics / benchmarks)."""
        return self._processed_events

    def rng(self, name: str) -> SeededRandom:
        """Derive a named, independent random stream from the simulator seed."""
        return SeededRandom(deterministic_hash(self._seed, name) & 0x7FFFFFFF)

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Register ``generator`` as a new simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires once any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def schedule_callback(
        self, delay: float, callback: Callable[[], None], name: str = "callback"
    ) -> Process:
        """Run ``callback()`` once, ``delay`` seconds from now, as a tiny process."""

        def _runner() -> Generator[Event, Any, Any]:
            yield self.timeout(delay)
            callback()

        return self.process(_runner(), name=name)

    # -- run loop -------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        try:
            when, _priority, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
        self._processed_events += 1
        if not event._ok and not event.defused:
            # Unhandled failure: crash the simulation like an uncaught exception.
            raise event._value

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event fires and return its value.
        """
        until_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                until_event = until
            else:
                deadline = float(until)
                if deadline < self._now:
                    raise ValueError(
                        f"until={deadline} lies in the past (now={self._now})"
                    )
                until_event = Event(self)
                until_event._ok = True
                until_event._value = None
                self._schedule(until_event, delay=deadline - self._now, priority=URGENT)
            until_event.callbacks.append(self._stop_callback)

        try:
            while True:
                self.step()
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None
        except EmptySchedule:
            if until_event is not None and not until_event.triggered:
                return None
            return None

    def run_until_idle(self, max_time: Optional[float] = None) -> float:
        """Drain the event queue (optionally bounded by ``max_time``) and return the clock."""
        while self._queue:
            if max_time is not None and self.peek() > max_time:
                self._now = max_time
                break
            self.step()
        return self._now

    def _stop_callback(self, event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        raise event._value

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:.6f} queued={len(self._queue)}>"
