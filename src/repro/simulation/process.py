"""Process abstraction: generator-based simulation coroutines."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.simulation.events import Event


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class _Bootstrap:
    """Shared successful pseudo-event used to kick-start every process.

    ``Process._resume`` only reads ``_ok`` / ``_value`` from the event it is
    resumed with, so all processes can share this one immutable instance
    instead of allocating a fresh init :class:`Event` each.
    """

    __slots__ = ()
    _ok = True
    _value = None


_BOOTSTRAP = _Bootstrap()


class Process(Event):
    """A running simulation process.

    A process wraps a generator.  Each value the generator yields must be an
    :class:`Event`; the process is suspended until that event fires and is
    then resumed with the event's value (or the event's exception is thrown
    into the generator).  The process itself is an event that fires with the
    generator's return value, so processes can wait for each other.
    """

    __slots__ = ("generator", "name", "_target", "_interrupts")

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        self._interrupts: list = []
        # Kick-start the process at the current simulation time (fast path:
        # no init Event; the dispatch loop calls _resume directly).
        sim.call_later(0.0, self._resume, _BOOTSTRAP)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for (if any)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if self.triggered:
            raise RuntimeError(f"{self} has terminated and cannot be interrupted")
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.sim._schedule(interrupt_event, priority=0)

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self.triggered:
            # Already finished (e.g. interrupted after normal completion raced).
            return
        self.sim._active_process = self
        # Detach from the event we were waiting on if this is an interrupt.
        if self._target is not None and event is not self._target:
            if self._target.callbacks is not None and self._resume in self._target.callbacks:
                self._target.callbacks.remove(self._resume)
        self._target = None
        try:
            if event._ok:
                next_event = self.generator.send(event._value)
            else:
                event.defuse()
                next_event = self.generator.throw(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self._ok = True
            self._value = stop.value
            self.sim._schedule(self)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into the event graph
            self.sim._active_process = None
            self._ok = False
            self._value = exc
            self.sim._schedule(self)
            return
        self.sim._active_process = None

        if not isinstance(next_event, Event):
            error = RuntimeError(
                f"process {self.name!r} yielded a non-event: {next_event!r}"
            )
            self._ok = False
            self._value = error
            self.sim._schedule(self)
            return
        if next_event.sim is not self.sim:
            error = RuntimeError("process yielded an event from a different simulator")
            self._ok = False
            self._value = error
            self.sim._schedule(self)
            return

        if next_event.callbacks is not None:
            # Event still pending: register for resumption.
            next_event.callbacks.append(self._resume)
            self._target = next_event
        else:
            # Event already processed: resume on the next step via the
            # fast-path scheduler, passing the processed event straight back
            # into _resume (no throwaway Event needed; _resume defuses
            # failures before re-raising them into the generator).
            self.sim.call_later(0.0, self._resume, next_event)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {hex(id(self))}>"
