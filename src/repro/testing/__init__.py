"""Reusable test infrastructure: seeded chaos schedules and invariant checks.

Lives in the package (not under ``tests/``) so benchmarks, examples and
future scenarios can drive the same fault machinery the test suite uses.
"""

from repro.testing.chaos import (  # noqa: F401
    CHAOS_PROFILES,
    ChaosResult,
    FaultAction,
    FaultSchedule,
    check_acked_implies_durable,
    check_all_acked_consumed,
    check_no_duplicates,
    check_per_key_order,
    run_chaos_produce,
)
