"""Seeded chaos harness: randomized fault schedules, replayed deterministically.

The exactly-once produce guarantee (``docs/exactly_once.md``) is only worth
anything if it holds under arbitrary broker kills, link loss and leader
failovers — so this module makes *randomized failure timelines* a first-class
reusable object:

* :class:`FaultSchedule` derives a timeline of fault actions from a base seed
  (via the same :func:`~repro.scenarios.spec.derive_seed` convention the
  scenario API uses).  Identical ``(seed, profile, duration, targets)``
  inputs always yield the identical timeline, so a failing combination from
  CI replays locally bit-for-bit.
* :func:`run_chaos_produce` stands up a replicated cluster, drives a keyed
  produce workload through a :class:`FaultSchedule`, lets the cluster heal,
  and returns a :class:`ChaosResult` for the invariant checkers.
* The checkers (``check_no_duplicates``, ``check_acked_implies_durable``,
  ``check_per_key_order``, ``check_all_acked_consumed``) each return a list
  of human-readable violations — empty means the invariant held.

The workload encodes a per-key sequence into every record value (key
``k<j>`` carries values ``0, 1, 2, ...``), so "no duplicate ``(key,
sequence)`` in any partition log" and "per-key order preserved" are direct
column scans over the logs.

A second driver, :func:`run_chaos_txn_produce`, exercises the transactional
layer: a transactional producer groups records into fixed-size transactions,
deliberately aborts one, and suffers a profile-specific mid-transaction
fault (producer kill + successor takeover, transaction-coordinator outage,
or partition-leader failover).  Its checkers are *consumer-side* — under
``read_committed`` every committed transaction must be observed atomically
and no aborted record may surface, while the same seeds replayed under
``read_uncommitted`` expose the torn/aborted writes (the control arm).  The
log-scan checkers above are intentionally *not* reused for transactional
runs: an aborted-then-retried transaction legitimately stores two copies of
the same logical record in the log (one fenced/aborted, one committed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.broker.cluster import BrokerCluster, ClusterConfig
from repro.broker.consumer import Consumer, ConsumerConfig
from repro.broker.coordinator import CoordinationMode
from repro.broker.errors import DeliveryFailed, ProducerFencedError
from repro.broker.message import ProducerRecord
from repro.broker.producer import Producer, ProducerConfig
from repro.broker.topic import TopicConfig
from repro.network.faults import FaultInjector, LinkFault, NodeDisconnection
from repro.network.link import LinkConfig
from repro.network.topology import one_big_switch
from repro.scenarios.spec import derive_seed
from repro.simulation import Simulator
from repro.simulation.rng import SeededRandom

#: Schedule shapes :meth:`FaultSchedule.generate` understands.
CHAOS_PROFILES = ("broker-kill", "link-loss", "mixed")


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault.

    ``kind`` is ``"broker_kill"`` (disconnect every link of a broker host),
    ``"link_loss"`` (one access link down — the classic lost-ack window) or
    ``"leader_failover"`` (at fire time, look up the *current* leader of the
    target partition and disconnect it).  ``target`` is a host name, an
    ``"a|b"`` link, or a ``"topic-partition"`` key respectively.  ``start``
    is a delay from schedule-application time; ``duration`` how long the
    fault holds before healing.
    """

    kind: str
    target: str
    start: float
    duration: float


@dataclass
class FaultSchedule:
    """A deterministic, seed-derived timeline of fault actions."""

    seed: int
    profile: str
    duration: float
    actions: List[FaultAction] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        seed: int,
        profile: str,
        duration: float,
        kill_hosts: List[str],
        loss_links: List[Tuple[str, str]],
        failover_partitions: List[str],
        n_faults: int = 4,
        active_window: Tuple[float, float] = (0.22, 0.62),
        fault_duration: Tuple[float, float] = (0.04, 0.10),
    ) -> "FaultSchedule":
        """Derive a randomized timeline from ``seed`` (deterministically).

        Fault start times fall inside ``active_window`` (fractions of
        ``duration``) and every fault heals before ``active_window[1] +
        fault_duration[1]`` of the run — leaving the tail of the run for
        replicas to reconcile and consumers to drain, which is what makes
        the end-of-run invariants meaningful.
        """
        if profile not in CHAOS_PROFILES:
            raise ValueError(f"unknown chaos profile {profile!r}; use {CHAOS_PROFILES}")
        rng = SeededRandom(derive_seed(seed, "fault-schedule", profile)).child("timeline")
        if profile == "broker-kill":
            kinds = ["broker_kill"]
        elif profile == "link-loss":
            kinds = ["link_loss"]
        else:
            kinds = ["broker_kill", "link_loss", "leader_failover"]
        actions: List[FaultAction] = []
        lo, hi = active_window
        for _ in range(n_faults):
            kind = kinds[rng.randint(0, len(kinds) - 1)]
            start = duration * (lo + (hi - lo) * rng.random())
            hold = duration * (
                fault_duration[0]
                + (fault_duration[1] - fault_duration[0]) * rng.random()
            )
            if kind == "broker_kill":
                target = kill_hosts[rng.randint(0, len(kill_hosts) - 1)]
            elif kind == "link_loss":
                a, b = loss_links[rng.randint(0, len(loss_links) - 1)]
                target = f"{a}|{b}"
            else:
                target = failover_partitions[
                    rng.randint(0, len(failover_partitions) - 1)
                ]
            actions.append(FaultAction(kind, target, round(start, 3), round(hold, 3)))
        actions.sort(key=lambda action: (action.start, action.target))
        return cls(seed=seed, profile=profile, duration=duration, actions=actions)

    def apply(self, network, cluster: BrokerCluster) -> FaultInjector:
        """Schedule every action against the network (relative to *now*)."""
        injector = FaultInjector(network)
        sim = network.sim
        for action in self.actions:
            if action.kind == "broker_kill":
                injector.schedule_node_disconnection(
                    NodeDisconnection(
                        node=action.target, start=action.start, duration=action.duration
                    )
                )
            elif action.kind == "link_loss":
                a, b = action.target.split("|")
                injector.schedule_link_fault(
                    LinkFault(endpoints=(a, b), start=action.start, duration=action.duration)
                )
            elif action.kind == "leader_failover":
                # The victim is resolved at fire time: whoever leads the
                # partition *then* gets disconnected, so back-to-back
                # failovers chase the leadership around the cluster.
                def fire(action=action):
                    topic, _, partition = action.target.rpartition("-")
                    leader = cluster.leader_broker(topic, int(partition))
                    if leader is None:
                        return
                    injector.schedule_node_disconnection(
                        NodeDisconnection(
                            node=leader.host.name, start=0.0, duration=action.duration
                        )
                    )

                sim.schedule_callback(action.start, fire, name="chaos:leader-failover")
            else:  # pragma: no cover - generate() never emits other kinds
                raise ValueError(f"unknown fault kind {action.kind!r}")
        return injector


# ---------------------------------------------------------------------------
# Invariant checkers (each returns a list of violations; empty = held)
# ---------------------------------------------------------------------------
def _topic_logs(cluster: BrokerCluster, topic: str):
    prefix = f"{topic}-"
    for broker in cluster.brokers.values():
        for key, log in broker.logs.items():
            if key.startswith(prefix):
                yield broker, key, log


def check_no_duplicates(cluster: BrokerCluster, topic: str) -> List[str]:
    """No ``(key, sequence)`` pair appears twice in any partition log.

    Contract: assumes the chaos workload encoding (``run_chaos_produce``),
    where each record's *value* is its per-key sequence number — so value
    equality within a key means the same logical record.  Don't point this
    at workloads where two records may legitimately share ``(key, value)``.
    """
    problems = []
    for broker, key, log in _topic_logs(cluster, topic):
        seen: Set[tuple] = set()
        for record in log.all_records():
            ident = (record.key, record.value)
            if ident in seen:
                problems.append(
                    f"duplicate {ident!r} at offset {record.offset} in "
                    f"{broker.name}:{key}"
                )
            seen.add(ident)
    return problems


def check_per_key_order(cluster: BrokerCluster, topic: str) -> List[str]:
    """Within every partition log, each key's sequence values are increasing.

    Same contract as :func:`check_no_duplicates`: record values must encode
    a strictly-increasing per-key sequence (the chaos workload encoding).
    """
    problems = []
    for broker, key, log in _topic_logs(cluster, topic):
        last_by_key: Dict[object, int] = {}
        for record in log.all_records():
            previous = last_by_key.get(record.key)
            if previous is not None and record.value <= previous:
                problems.append(
                    f"key {record.key!r} went {previous} -> {record.value} at "
                    f"offset {record.offset} in {broker.name}:{key}"
                )
            last_by_key[record.key] = record.value
    return problems


def check_acked_implies_durable(
    acked: List[tuple], cluster: BrokerCluster, topic: str
) -> List[str]:
    """Every acknowledged ``(key, sequence)`` is present in a current leader log."""
    durable: Set[tuple] = set()
    for broker, key, log in _topic_logs(cluster, topic):
        if not broker._is_leader(key):
            continue
        for record in log.all_records():
            durable.add((record.key, record.value))
    return [
        f"acked {ident!r} missing from every leader log"
        for ident in acked
        if ident not in durable
    ]


def check_all_acked_consumed(
    acked: List[tuple], consumers: List[Consumer]
) -> List[str]:
    """Eventual delivery: the consumer group saw every acknowledged record."""
    consumed: Set[tuple] = set()
    for consumer in consumers:
        for record in consumer.received:
            consumed.add((record.key, record.value))
    return [
        f"acked {ident!r} never consumed by the group"
        for ident in acked
        if ident not in consumed
    ]


# ---------------------------------------------------------------------------
# Scenario driver
# ---------------------------------------------------------------------------
@dataclass
class ChaosResult:
    """Everything the invariant checkers (and debugging) need from one run."""

    schedule: FaultSchedule
    cluster: BrokerCluster
    producer: Producer
    consumers: List[Consumer]
    topic: str
    #: ``(key, per-key sequence)`` of every record the producer saw acked.
    acked: List[tuple]
    #: Records sent / acked / failed, and broker-side dedup drops.
    records_sent: int = 0
    records_acked: int = 0
    records_failed: int = 0
    duplicates_dropped: int = 0
    duplicate_acks: int = 0

    def invariant_violations(self) -> List[str]:
        """The three chaos invariants, as one flat list of violations."""
        problems = check_no_duplicates(self.cluster, self.topic)
        problems += check_per_key_order(self.cluster, self.topic)
        problems += check_acked_implies_durable(self.acked, self.cluster, self.topic)
        return problems

    def log_duplicates(self) -> List[str]:
        return check_no_duplicates(self.cluster, self.topic)


def run_chaos_produce(
    seed: int,
    profile: str,
    partitions: int = 1,
    group_size: int = 1,
    idempotence: bool = True,
    n_records: int = 200,
    n_keys: int = 8,
    duration: float = 50.0,
    acks: object = "all",
    mode: CoordinationMode = CoordinationMode.KRAFT,
    n_brokers: int = 3,
    schedule: Optional[FaultSchedule] = None,
) -> ChaosResult:
    """One seeded chaos run: produce through faults, heal, return the evidence.

    Topology: ``n_brokers`` broker hosts plus one producer host plus
    ``group_size`` sink hosts behind one switch (higher access latency than
    the bench topology, so requests spend real time in flight — which is
    what fault windows cut).  The producer sends ``n_records`` keyed records
    (key ``k<i % n_keys>``, value = per-key sequence) across the first ~60%
    of the run; every fault heals by ~72%; the tail drains and reconciles.
    The defaults (``acks="all"``, KRaft) give acked ⇒ durable its best
    footing — the point of the harness is that *idempotence* then closes
    the remaining duplication window.
    """
    sim = Simulator(seed=derive_seed(seed, "chaos-sim", profile))
    broker_hosts = [f"broker{i + 1}" for i in range(n_brokers)]
    sink_hosts = [f"sink{i + 1}" for i in range(group_size)]
    network = one_big_switch(
        sim,
        broker_hosts + ["producer"] + sink_hosts,
        default_config=LinkConfig(latency_ms=8.0, bandwidth_mbps=200.0),
    )
    cluster = BrokerCluster(
        network,
        coordinator_host=broker_hosts[0],
        config=ClusterConfig(mode=mode, session_timeout=5.0),
    )
    for host in broker_hosts:
        cluster.add_broker(host)
    topic = "chaos"
    cluster.add_topic(
        TopicConfig(
            name=topic,
            partitions=partitions,
            replication_factor=min(3, n_brokers),
            # Lead away from the coordinator host so killing a leader never
            # takes the control plane down with it.
            preferred_leader=f"broker-{broker_hosts[1 % n_brokers]}",
        )
    )
    cluster.start(settle_time=2.0)

    producer = cluster.create_producer(
        "producer",
        config=ProducerConfig(
            acks=acks,
            idempotence=idempotence,
            request_timeout=0.6,
            retry_backoff=0.1,
            delivery_timeout=duration,
            linger=0.01,
        ),
        name="chaos-producer",
    )
    consumers = []
    for index, host in enumerate(sink_hosts):
        consumer = cluster.create_consumer(
            host,
            config=ConsumerConfig(
                poll_interval=0.05,
                group="chaos-group" if group_size > 1 else None,
                keep_payloads=True,
            ),
            name=f"chaos-consumer-{index}",
        )
        consumer.subscribe([topic])
        consumers.append(consumer)

    if schedule is None:
        schedule = FaultSchedule.generate(
            seed,
            profile,
            duration,
            kill_hosts=broker_hosts[1:],  # never the coordinator host
            loss_links=[("producer", "s1"), (broker_hosts[1], "s1")],
            failover_partitions=[f"{topic}-{p}" for p in range(partitions)],
        )
    schedule.apply(network, cluster)

    production_window = duration * 0.45
    interval = production_window / n_records

    def drive():
        yield sim.timeout(8.0)  # brokers registered, topic created, settled
        producer.start()
        for consumer in consumers:
            consumer.start()
        yield sim.timeout(2.0)  # id handshake + group sync before traffic
        for i in range(n_records):
            producer.send(
                ProducerRecord(
                    topic=topic, key=f"k{i % n_keys}", value=i // n_keys, size=120
                )
            )
            yield sim.timeout(interval)

    sim.process(drive())
    sim.run(until=duration)

    acked = []
    for report in producer.reports:
        if report.acknowledged:
            index = report.sequence
            acked.append((f"k{index % n_keys}", index // n_keys))
    return ChaosResult(
        schedule=schedule,
        cluster=cluster,
        producer=producer,
        consumers=consumers,
        topic=topic,
        acked=acked,
        records_sent=producer.records_sent,
        records_acked=producer.records_acked,
        records_failed=producer.records_failed,
        duplicates_dropped=cluster.total_duplicates_dropped(),
        duplicate_acks=producer.duplicate_acks,
    )


# ---------------------------------------------------------------------------
# Transactional chaos: atomic commits under producer/coordinator/leader faults
# ---------------------------------------------------------------------------
#: Fault shapes :func:`run_chaos_txn_produce` understands.  Each injects its
#: fault *mid-transaction* — after half of one transaction's records have
#: been sent and (some) partitions registered, before end_txn.
TXN_CHAOS_PROFILES = ("producer-kill", "coordinator-kill", "leader-failover")


@dataclass
class TxnChaosResult:
    """Evidence from one transactional chaos run.

    ``committed_txns`` are transaction indices whose ``commit_transaction``
    returned cleanly; ``aborted_txns`` were deliberately (or provably)
    aborted.  ``uncertain_txns`` are commits that raised — the coordinator
    may or may not have completed them, so the checkers require nothing of
    their records in either direction (the matrix runs keep this set empty;
    it exists so the harness never lies under an unlucky schedule).
    """

    profile: str
    seed: int
    cluster: BrokerCluster
    producers: List[Producer]
    consumers: List[Consumer]
    topic: str
    isolation: str
    n_txns: int
    txn_size: int
    n_keys: int
    committed_txns: List[int] = field(default_factory=list)
    aborted_txns: List[int] = field(default_factory=list)
    uncertain_txns: List[int] = field(default_factory=list)

    def txn_idents(self, txn: int) -> List[tuple]:
        """The ``(key, per-key sequence)`` identities transaction ``txn`` wrote."""
        base = txn * self.txn_size
        return [
            (f"k{i % self.n_keys}", i // self.n_keys)
            for i in range(base, base + self.txn_size)
        ]

    def invariant_violations(self) -> List[str]:
        """All read_committed invariants, as one flat list of violations.

        Member-level exactly-once/order checks only apply to standalone
        consumers: a group member that loses its partitions in a rebalance
        legitimately re-reads from the committed offset (at-least-once), so
        per-member duplicates there are not a transactional violation.
        """
        problems = check_txn_atomicity(self)
        problems += check_committed_per_key_order(self.cluster, self.topic)
        standalone = [c for c in self.consumers if c.config.group is None]
        problems += check_consumed_exactly_once(standalone)
        problems += check_consumed_per_key_order(standalone)
        return problems


def check_txn_atomicity(result: TxnChaosResult) -> List[str]:
    """All-or-nothing per transaction, and nothing outside committed ones.

    Every committed transaction's records must appear in the group's
    consumed union, and nothing consumed may belong to an aborted (or never
    committed) transaction.  Uses the chaos workload encoding: global record
    index ``i`` maps bijectively to ``(k<i % n_keys>, i // n_keys)``, so
    identities are unique across transactions.
    """
    problems = []
    consumed: Set[tuple] = set()
    for consumer in result.consumers:
        for record in consumer.received:
            consumed.add((record.key, record.value))
    committed_idents: Set[tuple] = set()
    for txn in result.committed_txns:
        idents = result.txn_idents(txn)
        committed_idents.update(idents)
        missing = [ident for ident in idents if ident not in consumed]
        if missing:
            problems.append(
                f"torn transaction {txn}: committed records {missing!r} "
                f"never consumed"
            )
    allowed = committed_idents | {
        ident
        for txn in result.uncertain_txns
        for ident in result.txn_idents(txn)
    }
    flagged: Set[tuple] = set()
    for consumer in result.consumers:
        for record in consumer.received:
            ident = (record.key, record.value)
            if ident not in allowed and ident not in flagged:
                flagged.add(ident)
                problems.append(
                    f"consumed {ident!r}, which no committed transaction wrote"
                )
    return problems


def check_committed_per_key_order(cluster: BrokerCluster, topic: str) -> List[str]:
    """Committed records keep per-key order in every current leader log.

    The transactional variant of :func:`check_per_key_order`: control
    records, aborted-transaction data and still-open transactions are
    excluded (an aborted attempt legitimately repeats values a later
    committed retry re-writes), and only what a read_committed consumer
    would see must be increasing per key.
    """
    problems = []
    for broker, key, log in _topic_logs(cluster, topic):
        if not broker._is_leader(key):
            continue
        stable = log.last_stable_offset
        if log.has_transactions:
            skip, _ = log.invisible_offsets(0, stable, "read_committed")
            skip_set = frozenset(skip)
        else:
            skip_set = frozenset()
        last_by_key: Dict[object, int] = {}
        for record in log.all_records():
            if record.offset >= stable or record.offset in skip_set:
                continue
            previous = last_by_key.get(record.key)
            if previous is not None and record.value <= previous:
                problems.append(
                    f"committed key {record.key!r} went {previous} -> "
                    f"{record.value} at offset {record.offset} in "
                    f"{broker.name}:{key}"
                )
            last_by_key[record.key] = record.value
    return problems


def check_consumed_exactly_once(consumers: List[Consumer]) -> List[str]:
    """No consumer delivered the same logical record twice (standalone only)."""
    problems = []
    for consumer in consumers:
        seen: Dict[tuple, int] = {}
        for record in consumer.received:
            ident = (record.key, record.value)
            if ident in seen:
                problems.append(
                    f"{consumer.name} consumed {ident!r} twice "
                    f"(offsets {seen[ident]} and {record.offset})"
                )
            else:
                seen[ident] = record.offset
    return problems


def check_consumed_per_key_order(consumers: List[Consumer]) -> List[str]:
    """Each consumer saw every key's sequence in increasing order."""
    problems = []
    for consumer in consumers:
        last_by_key: Dict[object, int] = {}
        for record in consumer.received:
            previous = last_by_key.get(record.key)
            if previous is not None and record.value <= previous:
                problems.append(
                    f"{consumer.name}: key {record.key!r} went "
                    f"{previous} -> {record.value}"
                )
            last_by_key[record.key] = record.value
    return problems


def run_chaos_txn_produce(
    seed: int,
    profile: str,
    partitions: int = 1,
    group_size: int = 1,
    isolation: str = "read_committed",
    n_txns: int = 20,
    txn_size: int = 10,
    n_keys: int = 8,
    duration: float = 70.0,
    mode: CoordinationMode = CoordinationMode.KRAFT,
    n_brokers: int = 3,
) -> TxnChaosResult:
    """One seeded transactional chaos run.

    A transactional producer drives ``n_txns`` transactions of ``txn_size``
    records each.  One seed-chosen transaction is deliberately aborted; a
    second seed-chosen one suffers the profile's fault *mid-transaction*
    (after half its records, before end_txn):

    * ``producer-kill`` — the producer is stopped cold and a successor with
      the same ``transactional_id`` takes over from a second host.  Its
      init must fence the zombie, abort the half-written transaction, and
      re-run it to a clean commit.
    * ``coordinator-kill`` — the coordinator host drops off the network for
      4.5 s while a transaction is open; the commit must ride out the
      outage through retries.
    * ``leader-failover`` — the current leader of a seed-chosen partition
      is disconnected for 5 s mid-transaction; data re-sends and the commit
      marker must survive the election.

    ``isolation`` selects the consumers' view: the matrix asserts zero
    violations under ``read_committed``, and the control arm replays the
    same seeds under ``read_uncommitted`` to show the torn/aborted writes
    the guarantee removes.
    """
    if profile not in TXN_CHAOS_PROFILES:
        raise ValueError(
            f"unknown txn chaos profile {profile!r}; use {TXN_CHAOS_PROFILES}"
        )
    sim = Simulator(seed=derive_seed(seed, "txn-chaos-sim", profile))
    broker_hosts = [f"broker{i + 1}" for i in range(n_brokers)]
    sink_hosts = [f"sink{i + 1}" for i in range(group_size)]
    network = one_big_switch(
        sim,
        broker_hosts + ["producer", "producer2"] + sink_hosts,
        default_config=LinkConfig(latency_ms=8.0, bandwidth_mbps=200.0),
    )
    cluster = BrokerCluster(
        network,
        coordinator_host=broker_hosts[0],
        config=ClusterConfig(
            mode=mode,
            session_timeout=5.0,
            # Short enough that a transaction orphaned by a fault is swept
            # mid-run (unpinning the LSO for the consumers' drain tail).
            transaction_timeout=15.0,
        ),
    )
    for host in broker_hosts:
        cluster.add_broker(host)
    topic = "chaos-txn"
    cluster.add_topic(
        TopicConfig(
            name=topic,
            partitions=partitions,
            replication_factor=min(3, n_brokers),
            preferred_leader=f"broker-{broker_hosts[1 % n_brokers]}",
        )
    )
    cluster.start(settle_time=2.0)

    transactional_id = "chaos-tx"

    def make_producer(host: str, name: str) -> Producer:
        return cluster.create_producer(
            host,
            config=ProducerConfig(
                acks="all",
                transactional_id=transactional_id,
                request_timeout=0.6,
                retry_backoff=0.1,
                delivery_timeout=30.0,
                linger=0.01,
            ),
            name=name,
        )

    producer = make_producer("producer", "chaos-txn-producer")
    producers = [producer]
    consumers = []
    for index, host in enumerate(sink_hosts):
        consumer = cluster.create_consumer(
            host,
            config=ConsumerConfig(
                poll_interval=0.05,
                group="chaos-txn-group" if group_size > 1 else None,
                keep_payloads=True,
                isolation_level=isolation,
            ),
            name=f"chaos-txn-consumer-{index}",
        )
        consumer.subscribe([topic])
        consumers.append(consumer)

    rng = SeededRandom(derive_seed(seed, "txn-chaos", profile)).child("driver")
    abort_txn = 2 + rng.randint(0, 2)
    fault_txn = 8 + rng.randint(0, 4)
    fault_partition = rng.randint(0, partitions - 1)
    injector = FaultInjector(network)

    result = TxnChaosResult(
        profile=profile,
        seed=seed,
        cluster=cluster,
        producers=producers,
        consumers=consumers,
        topic=topic,
        isolation=isolation,
        n_txns=n_txns,
        txn_size=txn_size,
        n_keys=n_keys,
    )

    def send_range(active: Producer, start: int, end: int):
        for i in range(start, end):
            active.send(
                ProducerRecord(
                    topic=topic, key=f"k{i % n_keys}", value=i // n_keys, size=120
                )
            )
            yield sim.timeout(0.04)

    def finish(active: Producer, txn: int, outcome: str):
        try:
            if outcome == "commit":
                yield from active.commit_transaction(timeout=25.0)
                result.committed_txns.append(txn)
            else:
                yield from active.abort_transaction(timeout=25.0)
                result.aborted_txns.append(txn)
        except DeliveryFailed:
            if outcome == "commit":
                result.uncertain_txns.append(txn)
            else:
                result.aborted_txns.append(txn)
        except ProducerFencedError:
            result.aborted_txns.append(txn)

    def drive():
        yield sim.timeout(8.0)  # brokers registered, topic created, settled
        producer.start()
        for consumer in consumers:
            consumer.start()
        yield sim.timeout(2.0)  # init_producer_id handshake + group sync
        active = producer
        for txn in range(n_txns):
            base = txn * txn_size
            active.begin_transaction()
            if txn != fault_txn:
                yield from send_range(active, base, base + txn_size)
                yield from finish(
                    active, txn, "abort" if txn == abort_txn else "commit"
                )
            elif profile == "producer-kill":
                yield from send_range(active, base, base + txn_size // 2)
                active.stop()  # zombie: half a transaction in the log
                successor = make_producer("producer2", "chaos-txn-producer-2")
                producers.append(successor)
                successor.start()
                waited = 0.0
                while successor.producer_id < 0 and waited < 10.0:
                    yield sim.timeout(0.1)
                    waited += 0.1
                active = successor
                # The successor's init bumped the epoch, fencing the zombie
                # and aborting its half-written transaction — so the whole
                # transaction re-runs from the top on the new instance.
                active.begin_transaction()
                yield from send_range(active, base, base + txn_size)
                yield from finish(active, txn, "commit")
            elif profile == "coordinator-kill":
                yield from send_range(active, base, base + txn_size // 2)
                injector.schedule_node_disconnection(
                    NodeDisconnection(
                        node=cluster.coordinator.host.name, start=0.0, duration=4.5
                    )
                )
                yield from send_range(active, base + txn_size // 2, base + txn_size)
                yield from finish(active, txn, "commit")
            else:  # leader-failover
                yield from send_range(active, base, base + txn_size // 2)
                leader = cluster.leader_broker(topic, fault_partition)
                if leader is not None:
                    injector.schedule_node_disconnection(
                        NodeDisconnection(
                            node=leader.host.name, start=0.0, duration=5.0
                        )
                    )
                yield from send_range(active, base + txn_size // 2, base + txn_size)
                yield from finish(active, txn, "commit")
            yield sim.timeout(0.1)

    sim.process(drive())
    sim.run(until=duration)
    return result
