"""``python -m repro`` — the scenario front door (see repro.scenarios.cli)."""

import sys

from repro.scenarios.cli import main

if __name__ == "__main__":
    sys.exit(main())
