"""Figure 7a: reproduction of Ichinose et al. (Kafka-based video analytics).

The original experiment measures the frame transfer throughput of a Kafka
cluster when a single host runs one broker, one producer and a varying number
of consumers.  A large batch of MNIST images is produced *before* the first
consumer subscribes (so consumers never stall on the producer), and the
metric is the aggregate rate at which consumers pull frames.

Paper shape: throughput increases with the number of consumers up to the
core count of the underlying host (8) and flattens beyond that.  Absolute
numbers differ between stream2gym and the original hardware by roughly an
order of magnitude (software stack vs the authors' testbed), which the paper
explicitly discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.broker.cluster import BrokerCluster, ClusterConfig
from repro.broker.consumer import ConsumerConfig
from repro.broker.producer import Producer, ProducerConfig
from repro.broker.message import ProducerRecord
from repro.broker.topic import TopicConfig
from repro.network.link import LinkConfig
from repro.network.topology import one_big_switch
from repro.scenarios import PointSpec, Scenario, ScenarioRunner, register
from repro.simulation import Simulator
from repro.workloads.images import generate_frames


@dataclass
class Fig7aConfig:
    """Sweep parameters (quick defaults; the paper pre-produces many more frames)."""

    consumer_counts: List[int] = field(default_factory=lambda: [1, 2, 4, 8, 16])
    n_frames: int = 8000
    host_cores: int = 8
    measure_duration: float = 10.0
    #: CPU cost per frame on the consumer side (frame decode / deserialize).
    consumer_cpu_per_frame: float = 100e-6
    #: CPU cost per frame on the broker side (fetch serving).
    broker_cpu_per_record: float = 12e-6
    #: Partitions of the frames topic (frames are keyed by frame id).
    partitions: int = 1
    #: Exactly-once produce path for the frame producer.
    idempotence: bool = False
    #: Transactional produce path (atomic batches; implies idempotence).
    transactional_id: str = ""
    #: ``read_committed`` delivers only committed transactions downstream.
    isolation_level: str = "read_uncommitted"
    #: Catalog-wide engine-path knob.  Figure 7a uses raw consumers (no SPE),
    #: so this is accepted for ``--set vectorized=false`` uniformity and ignored.
    vectorized: bool = True
    seed: int = 5


@dataclass
class Fig7aResult:
    """throughput[n_consumers] = aggregate frames per second."""

    throughput: Dict[int, float]
    per_consumer: Dict[int, List[float]]

    def series(self) -> List[float]:
        return [self.throughput[n] for n in sorted(self.throughput)]

    def saturation_ratio(self, cores: int = 8) -> float:
        """Throughput beyond the core count relative to throughput at the core count."""
        counts = sorted(self.throughput)
        at_cores = next((self.throughput[n] for n in counts if n >= cores), None)
        beyond = [self.throughput[n] for n in counts if n > cores]
        if at_cores is None or not beyond:
            return 1.0
        return max(beyond) / at_cores


def run_single(n_consumers: int, config: Fig7aConfig) -> Dict[str, object]:
    """Run one point: a single host with broker + producer + ``n_consumers``."""
    sim = Simulator(seed=config.seed)
    network = one_big_switch(
        sim, ["node"], default_config=LinkConfig(latency_ms=0.2, bandwidth_mbps=1000.0)
    )
    host = network.host("node")
    host.set_cores(config.host_cores)

    cluster = BrokerCluster(network, coordinator_host="node", config=ClusterConfig())
    broker = cluster.add_broker("node")
    broker.config.cpu_per_record = config.broker_cpu_per_record
    cluster.add_topic(
        TopicConfig(name="frames", partitions=config.partitions, replication_factor=1)
    )
    cluster.start(settle_time=1.0)

    frames = generate_frames(config.n_frames, seed=config.seed)
    producer = Producer(
        host,
        bootstrap=["node"],
        config=ProducerConfig(
            buffer_memory=64 * 1024 * 1024,
            linger=0.005,
            idempotence=config.idempotence,
            transactional_id=config.transactional_id or None,
        ),
        name="frame-producer",
    )

    consumers = []
    for index in range(n_consumers):
        consumer = cluster.create_consumer(
            "node",
            config=ConsumerConfig(
                poll_interval=0.01,
                max_records_per_fetch=500,
                keep_payloads=False,
                cpu_per_record=config.consumer_cpu_per_frame,
                isolation_level=config.isolation_level,
            ),
            name=f"frame-consumer-{index}",
        )
        consumer.subscribe(["frames"])
        consumers.append(consumer)

    consume_start = {"time": None}

    def produce_all():
        producer.start()
        # Transactional preload commits in chunks so no single transaction
        # outlives the coordinator's transaction timeout.
        txn_chunk = 2000
        if config.transactional_id:
            producer.begin_transaction()
        for index, frame in enumerate(frames):
            # Fire-and-forget: the experiment only watches records_acked.
            producer.send_noreport(
                ProducerRecord(
                    topic="frames", key=frame["frame_id"], value=frame, size=frame["size"]
                )
            )
            if config.transactional_id and (index + 1) % txn_chunk == 0:
                yield from producer.commit_transaction()
                producer.begin_transaction()
        # Wait until the broker has everything before consumers subscribe —
        # exactly the methodology of the original experiment (no data stalls).
        while producer.records_acked < len(frames):
            yield sim.timeout(0.2)
        if config.transactional_id:
            yield from producer.commit_transaction()
        consume_start["time"] = sim.now
        for consumer in consumers:
            consumer.start()

    sim.process(produce_all())

    # Run until every consumer has drained the pre-produced frames (or a
    # generous deadline passes), then compute the aggregate transfer rate.
    deadline = 600.0
    while sim.now < deadline:
        sim.run(until=sim.now + 0.2)
        if consume_start["time"] is not None and all(
            consumer.records_consumed >= config.n_frames for consumer in consumers
        ):
            break
    end_time = sim.now
    start_time = consume_start["time"] if consume_start["time"] is not None else 0.0
    elapsed = max(1e-9, end_time - start_time)
    per_consumer_rate = [consumer.records_consumed / elapsed for consumer in consumers]
    return {
        "aggregate": sum(per_consumer_rate),
        "per_consumer": per_consumer_rate,
    }


def scenario_points(config: Fig7aConfig) -> List[PointSpec]:
    """One independent point per consumer count."""
    return [
        PointSpec(
            fn=run_single,
            kwargs={"n_consumers": n, "config": config},
            label=f"consumers={n}",
            index=index,
        )
        for index, n in enumerate(config.consumer_counts)
    ]


def scenario_combine(config: Fig7aConfig, outcomes: List[Dict[str, object]]) -> Fig7aResult:
    throughput: Dict[int, float] = {}
    per_consumer: Dict[int, List[float]] = {}
    for n_consumers, outcome in zip(config.consumer_counts, outcomes):
        throughput[n_consumers] = outcome["aggregate"]
        per_consumer[n_consumers] = outcome["per_consumer"]
    return Fig7aResult(throughput=throughput, per_consumer=per_consumer)


def run_fig7a(config: Optional[Fig7aConfig] = None, workers: int = 1) -> Fig7aResult:
    """Run the full consumer-count sweep (across ``workers`` processes if > 1)."""
    return ScenarioRunner(SCENARIO).run_config(config or Fig7aConfig(), workers=workers).result


PAPER_SHAPE = {
    "throughput_increases_until_cores": True,
    "cores": 8,
    "flat_beyond_cores_tolerance": 0.35,
}


def check_shape(result: Fig7aResult, cores: int = 8) -> List[str]:
    """Check the qualitative Figure 7a shape."""
    problems = []
    counts = sorted(result.throughput)
    below = [n for n in counts if n <= cores]
    for earlier, later in zip(below, below[1:]):
        if result.throughput[later] <= result.throughput[earlier]:
            problems.append(
                f"throughput should grow from {earlier} to {later} consumers "
                f"({result.throughput[earlier]:.0f} -> {result.throughput[later]:.0f})"
            )
    ratio = result.saturation_ratio(cores)
    if ratio > 1.0 + PAPER_SHAPE["flat_beyond_cores_tolerance"]:
        problems.append(
            f"throughput should flatten beyond {cores} consumers (ratio {ratio:.2f})"
        )
    return problems


def scenario_metrics(result: Fig7aResult) -> Dict[str, float]:
    metrics = {
        f"throughput_{n}c": round(result.throughput[n], 1)
        for n in sorted(result.throughput)
    }
    metrics["saturation_ratio"] = round(result.saturation_ratio(), 3)
    return metrics


def _scenario_check(config: Fig7aConfig, result: Fig7aResult) -> List[str]:
    return check_shape(result, cores=config.host_cores)


SCENARIO = register(
    Scenario(
        name="fig7a",
        title="Figure 7a — Kafka frame-transfer throughput vs consumer count",
        config_factory=Fig7aConfig,
        points=scenario_points,
        combine=scenario_combine,
        metrics=scenario_metrics,
        tiers={
            "quick": {"consumer_counts": [1, 4], "n_frames": 2000},
            "paper": {"n_frames": 20000},
        },
        sweep_axis="consumer_counts",
        check=_scenario_check,
        description=__doc__.strip().splitlines()[0],
    )
)
