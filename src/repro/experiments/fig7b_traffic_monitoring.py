"""Figure 7b: reproduction of Ocampo et al. (Spark-based traffic monitoring).

The original system mirrors packets from enterprise switches into an event
streaming platform and computes per-service metrics (active connections,
bandwidth usage) in one-second slots on a one-node Spark cluster.  The
evaluation scales the number of concurrent users (traffic generators), each
following a Poisson process, and reports the Spark mean execution time
normalized to the 20-user case.

Paper shape: the normalized runtime grows from 1.0 at 20 users to roughly
1.8 at 100 users, with stream2gym showing slightly more variation at the
high end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.broker.cluster import BrokerCluster, ClusterConfig
from repro.broker.consumer import ConsumerConfig
from repro.broker.message import ProducerRecord
from repro.broker.producer import Producer, ProducerConfig
from repro.broker.topic import TopicConfig
from repro.engine import ExecutorConfig, StreamingConfig, StreamingContext
from repro.network.link import LinkConfig
from repro.network.topology import one_big_switch
from repro.scenarios import PointSpec, Scenario, ScenarioRunner, register
from repro.simulation import Simulator
from repro.workloads import pregenerated
from repro.workloads.nettraffic import generate_traffic_batches, service_name


@dataclass
class Fig7bConfig:
    """Sweep parameters (quick defaults; the paper sweeps 20-100 users)."""

    user_counts: List[int] = field(default_factory=lambda: [20, 40, 60, 80, 100])
    slots: int = 20
    packets_per_user_per_s: float = 25.0
    batch_interval: float = 1.0
    #: Executor cost model calibrated so the 20->100 user ratio lands near the
    #: paper's ~1.8x (fixed job overhead plus per-mirrored-report cost).
    job_overhead: float = 0.5
    per_record_cost: float = 6e-3
    parallelism: int = 4
    #: Partitions of the mirrored-packets topic.  >1 shards the topic by flow
    #: key and runs one SPE source instance per partition (the partition-aware
    #: ingest plane); 1 keeps the paper's single-partition deployment.
    partitions: int = 1
    #: Exactly-once produce path for the mirror producer.
    idempotence: bool = False
    #: Transactional produce path (atomic batches; implies idempotence).
    transactional_id: str = ""
    #: ``read_committed`` delivers only committed transactions downstream.
    isolation_level: str = "read_uncommitted"
    #: Columnar SPE operator plane (bitwise-identical results; False forces
    #: the per-record reference path — see docs/vectorized_engine.md).
    vectorized: bool = True
    seed: int = 11


@dataclass
class Fig7bResult:
    """Mean Spark execution time per user count, plus the normalized series."""

    mean_runtime_s: Dict[int, float]
    normalized: Dict[int, float]
    input_records: Dict[int, int]

    def normalized_series(self) -> List[float]:
        return [self.normalized[n] for n in sorted(self.normalized)]


def run_single(n_users: int, config: Fig7bConfig) -> Dict[str, float]:
    """One point: broker + one-node Spark cluster + per-switch mirror producer."""
    sim = Simulator(seed=config.seed)
    network = one_big_switch(
        sim,
        ["mirror", "broker", "spark"],
        default_config=LinkConfig(latency_ms=1.0, bandwidth_mbps=1000.0),
    )
    cluster = BrokerCluster(network, coordinator_host="broker", config=ClusterConfig())
    cluster.add_broker("broker")
    cluster.add_topic(
        TopicConfig(
            name="mirrored-packets",
            partitions=config.partitions,
            replication_factor=1,
        )
    )
    cluster.start(settle_time=1.0)

    ctx = StreamingContext(
        network.host("spark"),
        config=StreamingConfig(
            batch_interval=config.batch_interval,
            executor=ExecutorConfig(
                parallelism=config.parallelism,
                job_overhead=config.job_overhead,
                per_record_cost=config.per_record_cost,
            ),
            # True defers to the session engine path (columnar unless the
            # test matrix forces records); False pins the record path.
            vectorized=None if config.vectorized else False,
        ),
        cluster=cluster,
        name="spark-traffic-monitor",
    )

    def summarize(slot_report: dict) -> dict:
        # One report covers one user's packets for one slot; the packet
        # columns arrive as parallel arrays straight from the workload batch.
        service_ids = slot_report["service_ids"]
        sizes = slot_report["sizes"]
        by_service: Dict[int, list] = {}
        for index, service_id in enumerate(service_ids):
            entry = by_service.get(service_id)
            if entry is None:
                by_service[service_id] = [1, sizes[index]]
            else:
                entry[0] += 1
                entry[1] += sizes[index]
        return {
            service_name(service_id): {
                "packets": entry[0],
                "bytes": entry[1],
                "active_users": 1,
            }
            for service_id, entry in by_service.items()
        }

    # Only a non-default isolation level overrides the sources' own consumer
    # defaults, so the default path stays untouched.
    consumer_config = (
        ConsumerConfig(isolation_level=config.isolation_level)
        if config.isolation_level != "read_uncommitted"
        else None
    )
    if config.partitions > 1:
        # Partition-aware ingest: one source instance per partition, merged
        # deterministically in partition order at each micro-batch boundary.
        stream = ctx.sharded_kafka_stream(
            "mirrored-packets",
            partitions=list(range(config.partitions)),
            consumer_config=consumer_config,
        )
    else:
        stream = ctx.kafka_stream(["mirrored-packets"], consumer_config=consumer_config)
    sink = stream.map(summarize).to_memory(keep_records=False)

    producer = Producer(
        network.host("mirror"),
        bootstrap=["broker"],
        config=ProducerConfig(
            buffer_memory=64 * 1024 * 1024,
            idempotence=config.idempotence,
            transactional_id=config.transactional_id or None,
        ),
        name="mirror-producer",
    )
    traffic = pregenerated(
        generate_traffic_batches,
        n_users=n_users,
        duration_s=config.slots,
        packets_per_user_per_s=config.packets_per_user_per_s,
        seed=config.seed,
    )

    def drive():
        yield sim.timeout(5.0)
        producer.start()
        ctx.start()
        for slot in traffic:
            # One mirrored report per user per second (the per-switch sFlow-style
            # export used by the original system), sized by its packet volume.
            # The batch already groups packets by user with byte totals, so no
            # per-packet work happens inside the simulation loop.  With a
            # transactional id, each one-second export slot is one atomic
            # transaction.
            if config.transactional_id:
                producer.begin_transaction()
            for key, value, size in slot.iter_keyed_reports():
                # Fire-and-forget: the mirror never reads delivery outcomes,
                # so skip the per-record future/report allocation entirely.
                # Reports are keyed by the user's stable flow id, so sharded
                # topics keep each flow's history ordered on one partition.
                producer.send_noreport(
                    ProducerRecord(
                        topic="mirrored-packets",
                        key=key,
                        value=value,
                        size=size,
                    )
                )
            if config.transactional_id:
                yield from producer.commit_transaction()
            yield sim.timeout(1.0)

    sim.process(drive())
    sim.run(until=10.0 + config.slots + 10.0)
    busy = [metric for metric in ctx.batch_metrics if metric.input_records > 0]
    mean_runtime = (
        sum(metric.processing_time for metric in busy) / len(busy) if busy else 0.0
    )
    total_records = sum(metric.input_records for metric in busy)
    del sink
    return {"mean_runtime": mean_runtime, "input_records": total_records}


def scenario_points(config: Fig7bConfig) -> List[PointSpec]:
    """One independent point per swept user count."""
    return [
        PointSpec(
            fn=run_single,
            kwargs={"n_users": n, "config": config},
            label=f"users={n}",
            index=index,
        )
        for index, n in enumerate(config.user_counts)
    ]


def scenario_combine(config: Fig7bConfig, outcomes: List[Dict[str, float]]) -> Fig7bResult:
    mean_runtime: Dict[int, float] = {}
    input_records: Dict[int, int] = {}
    for n_users, outcome in zip(config.user_counts, outcomes):
        mean_runtime[n_users] = outcome["mean_runtime"]
        input_records[n_users] = int(outcome["input_records"])
    baseline_users = min(mean_runtime)
    baseline = mean_runtime[baseline_users] or 1.0
    normalized = {n: runtime / baseline for n, runtime in mean_runtime.items()}
    return Fig7bResult(
        mean_runtime_s=mean_runtime, normalized=normalized, input_records=input_records
    )


def run_fig7b(config: Optional[Fig7bConfig] = None, workers: int = 1) -> Fig7bResult:
    """Run the full user-count sweep (across ``workers`` processes if > 1)."""
    return ScenarioRunner(SCENARIO).run_config(config or Fig7bConfig(), workers=workers).result


PAPER_SHAPE = {
    "normalized_at_baseline": 1.0,
    "normalized_at_100_users_min": 1.4,
    "normalized_at_100_users_max": 2.2,
    "monotonic_growth": True,
}


def check_shape(result: Fig7bResult) -> List[str]:
    """Check the qualitative Figure 7b shape."""
    problems = []
    counts = sorted(result.normalized)
    series = [result.normalized[n] for n in counts]
    if abs(series[0] - 1.0) > 1e-9:
        problems.append("the smallest user count should normalize to 1.0")
    for earlier, later in zip(series, series[1:]):
        if later < earlier * 0.95:
            problems.append("normalized runtime should not decrease as users grow")
            break
    top = series[-1]
    if not (PAPER_SHAPE["normalized_at_100_users_min"] <= top <= PAPER_SHAPE["normalized_at_100_users_max"]):
        problems.append(
            f"normalized runtime at the largest user count should land near the paper's "
            f"~1.8x (got {top:.2f})"
        )
    return problems


def scenario_metrics(result: Fig7bResult) -> Dict[str, float]:
    metrics: Dict[str, float] = {}
    for n in sorted(result.normalized):
        metrics[f"normalized_{n}u"] = round(result.normalized[n], 4)
        metrics[f"mean_runtime_{n}u_s"] = round(result.mean_runtime_s[n], 5)
    return metrics


def _scenario_check(config: Fig7bConfig, result: Fig7bResult) -> List[str]:
    return check_shape(result)


SCENARIO = register(
    Scenario(
        name="fig7b",
        title="Figure 7b — normalized Spark runtime vs concurrent traffic users",
        config_factory=Fig7bConfig,
        points=scenario_points,
        combine=scenario_combine,
        metrics=scenario_metrics,
        tiers={
            "quick": {"user_counts": [20, 60], "slots": 10},
            "paper": {},  # the module defaults are the paper's 20-100 sweep
        },
        sweep_axis="user_counts",
        check=_scenario_check,
        description=__doc__.strip().splitlines()[0],
    )
)
