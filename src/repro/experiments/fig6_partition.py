"""Figure 6: behaviour of a replicated event streaming deployment under a partition.

Scenario (Figure 6a): ``n_sites`` coordinating sites are connected in a star.
Every site hosts a message broker, a data producer that randomly injects data
into two topics at 30 Kbps, and a consumer subscribed to both topics.  The
node hosting the leader broker of topic A is disconnected for a while
(roughly 20% of the experiment).

Reproduced artefacts:

* Figure 6b — the delivery matrix of the producer co-located with the
  disconnected broker: in ZooKeeper mode, messages produced to topic A during
  the disconnection are acknowledged locally but silently lost; topic B
  messages are delayed, not lost.  KRaft mode shows no silent loss.
* Figure 6c — per-message latency at a consumer, ordered by arrival: two
  latency spikes, one per topic.
* Figure 6d — sending throughput of the relevant hosts over time, showing
  the leader disconnection, the new-leader election/backlog commit, backlog
  serving to consumers, and the preferred-leader re-election.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.broker.cluster import BrokerCluster, ClusterConfig
from repro.broker.consumer import ConsumerConfig
from repro.broker.coordinator import CoordinationMode
from repro.broker.producer import ProducerConfig
from repro.broker.topic import TopicConfig
from repro.core.configs import ProducerStubConfig
from repro.core.visualization import (
    DeliveryMatrix,
    LatencyPoint,
    delivery_matrix,
    latency_by_arrival,
    latency_spikes,
    throughput_timeseries,
)
from repro.network.faults import FaultInjector, NodeDisconnection
from repro.network.link import LinkConfig
from repro.network.topology import star_topology
from repro.scenarios import PointSpec, Scenario, ScenarioRunner, register
from repro.simulation import Simulator
from repro.stubs.producers import RandomRateProducerStub

TOPIC_A = "topicA"
TOPIC_B = "topicB"


@dataclass
class Fig6Config:
    """Scenario parameters (quick defaults; the paper runs 10 sites / 600 s)."""

    n_sites: int = 6
    replication_factor: int = 3
    rate_kbps: float = 30.0
    message_size: int = 512
    duration: float = 300.0
    disconnect_start: float = 90.0
    disconnect_duration: float = 60.0
    mode: CoordinationMode = CoordinationMode.ZOOKEEPER
    acks: object = 1
    session_timeout: float = 9.0
    preferred_election_interval: float = 20.0
    seed: int = 3
    #: Site index (1-based) whose broker leads topic A and gets disconnected.
    leader_site_index: int = 3
    #: Partitions per topic.  The paper runs 1; with more, replica sets rotate
    #: across the sites, the pinned preferred leader keeps partition 0 of
    #: topic A on the disconnected site, and the fault triggers one election
    #: per partition that site led.
    partitions: int = 1
    #: Exactly-once produce path: site producers carry sequence numbers and
    #: brokers drop duplicate retries.  Note this dedups *retries*; the
    #: ZooKeeper-mode silent loss (truncation) is a different hole and stays
    #: visible with idempotence on.
    idempotence: bool = False
    #: Transactional produce path (atomic batches; implies idempotence).
    transactional_id: str = ""
    #: ``read_committed`` delivers only committed transactions downstream.
    isolation_level: str = "read_uncommitted"
    #: Catalog-wide engine-path knob.  Figure 6 is broker-only (no SPE), so
    #: this is accepted for ``--set vectorized=false`` uniformity and ignored.
    vectorized: bool = True
    #: Segmented log storage knobs, sweepable catalog-wide (``--set
    #: segment_records=256`` etc.).  All unset = today's flat in-memory log.
    segment_records: Optional[int] = None
    retention_bytes: Optional[int] = None
    retention_ms: Optional[float] = None
    cleanup_policy: str = "delete"


@dataclass
class Fig6Result:
    """All the data behind Figures 6b, 6c and 6d plus summary counters."""

    mode: str
    delivery: DeliveryMatrix
    latency_points: List[LatencyPoint]
    throughput: Dict[str, List[tuple]]
    events: List[dict]
    acked_but_lost: int
    lost_topic_breakdown: Dict[str, int]
    messages_produced: int
    messages_consumed: int
    disconnect_window: tuple
    #: Storage-plane aggregates (all zero unless segmentation was enabled).
    storage: Dict[str, int] = field(default_factory=dict)

    def loss_only_on_topic_a(self) -> bool:
        other = {
            topic: count
            for topic, count in self.lost_topic_breakdown.items()
            if topic != TOPIC_A and count > 0
        }
        return not other

    def latency_spike_topics(self, threshold: float = 5.0) -> List[str]:
        return sorted(latency_spikes(self.latency_points, threshold))

    def election_times(self) -> List[float]:
        return [
            event["time"]
            for event in self.events
            if event.get("event") == "leader-elected"
        ]


def run_fig6(config: Optional[Fig6Config] = None) -> Fig6Result:
    """Run the Figure 6 scenario and collect all three sub-figures' data."""
    config = config or Fig6Config()
    sim = Simulator(seed=config.seed)
    network, sites = star_topology(
        sim,
        config.n_sites,
        link_config=LinkConfig(latency_ms=2.0, bandwidth_mbps=100.0),
    )
    leader_site = sites[config.leader_site_index - 1]
    coordinator_site = sites[0]
    if coordinator_site == leader_site:
        coordinator_site = sites[1]

    cluster = BrokerCluster(
        network,
        coordinator_host=coordinator_site,
        config=ClusterConfig(
            mode=config.mode,
            session_timeout=config.session_timeout,
            preferred_election_interval=config.preferred_election_interval,
            segment_records=config.segment_records,
            retention_bytes=config.retention_bytes,
            retention_ms=config.retention_ms,
            cleanup_policy=config.cleanup_policy,
        ),
    )
    for site in sites:
        cluster.add_broker(site)
    other_leader = sites[(config.leader_site_index) % config.n_sites]
    cluster.add_topic(
        TopicConfig(
            name=TOPIC_A,
            partitions=config.partitions,
            replication_factor=config.replication_factor,
            preferred_leader=f"broker-{leader_site}",
        )
    )
    cluster.add_topic(
        TopicConfig(
            name=TOPIC_B,
            partitions=config.partitions,
            replication_factor=config.replication_factor,
            preferred_leader=f"broker-{other_leader}",
        )
    )

    producer_config = ProducerStubConfig(
        topics=[TOPIC_A, TOPIC_B],
        message_size=config.message_size,
        rate_kbps=config.rate_kbps,
        idempotence=config.idempotence,
        transactional_id=config.transactional_id or None,
    )
    producers = {}
    consumers = {}
    for site in sites:
        stub = RandomRateProducerStub(cluster, site, config=producer_config, name=f"prod-{site}")
        stub.producer.config.acks = config.acks
        stub.producer.config.delivery_timeout = config.duration
        stub.producer.config.request_timeout = 1.0
        producers[site] = stub
        consumers[site] = cluster.create_consumer(
            site,
            config=ConsumerConfig(
                poll_interval=0.1,
                keep_payloads=True,
                isolation_level=config.isolation_level,
            ),
            name=f"cons-{site}",
        )
        consumers[site].subscribe([TOPIC_A, TOPIC_B])

    injector = FaultInjector(network)
    injector.schedule_node_disconnection(
        NodeDisconnection(
            node=leader_site,
            start=config.disconnect_start,
            duration=config.disconnect_duration,
        )
    )

    cluster.start(settle_time=3.0)
    network.bandwidth_monitor.start()

    def start_clients() -> None:
        for stub in producers.values():
            stub.start()
        for consumer in consumers.values():
            consumer.start()

    sim.schedule_callback(10.0, start_clients, name="fig6:start-clients")
    sim.run(until=config.duration)
    network.bandwidth_monitor.stop()

    co_located_producer = producers[leader_site].producer
    observer_site = next(site for site in sites if site != leader_site)
    observer = consumers[observer_site]

    matrix = delivery_matrix(
        co_located_producer, [consumers[site] for site in sites], topic=None
    )
    points = latency_by_arrival(observer, topics=[TOPIC_A, TOPIC_B])
    throughput = {}
    for site in (leader_site, other_leader, coordinator_site):
        series = network.bandwidth_monitor.series_for(site)
        throughput[site] = throughput_timeseries(series) if series else []

    # "Acked but lost": records the producers believe were delivered (they got
    # an acknowledgement) that no consumer ever received.  Records acked close
    # to the end of the run are excluded — consumers may simply not have
    # fetched them yet, which is a measurement artefact, not data loss.
    tail_margin = 20.0
    cutoff = config.duration - tail_margin
    delivered_keys: Dict[str, set] = {TOPIC_A: set(), TOPIC_B: set()}
    for consumer in consumers.values():
        for record in consumer.received:
            delivered_keys.setdefault(record.topic, set()).add(record.key)
    acked_but_lost = 0
    lost_breakdown: Dict[str, int] = {TOPIC_A: 0, TOPIC_B: 0}
    for stub in producers.values():
        for report in stub.producer.reports:
            if not report.acknowledged or report.acknowledged_at > cutoff:
                continue
            if report.key not in delivered_keys.get(report.topic, set()):
                acked_but_lost += 1
                lost_breakdown[report.topic] = lost_breakdown.get(report.topic, 0) + 1

    produced = sum(stub.messages_produced for stub in producers.values())
    consumed = sum(consumer.records_consumed for consumer in consumers.values())

    return Fig6Result(
        mode=CoordinationMode(config.mode).value,
        delivery=matrix,
        latency_points=points,
        throughput=throughput,
        events=list(cluster.coordinator.event_log),
        acked_but_lost=acked_but_lost,
        lost_topic_breakdown=lost_breakdown,
        messages_produced=produced,
        messages_consumed=consumed,
        disconnect_window=(
            config.disconnect_start,
            config.disconnect_start + config.disconnect_duration,
        ),
        storage={
            "segments_sealed": cluster.total_segments_sealed(),
            "segments_evicted": cluster.total_segments_evicted(),
            "retention_records_dropped": cluster.total_retention_records_dropped(),
            "compaction_records_removed": cluster.total_compaction_records_removed(),
        },
    )


def _mode_arms(config: Fig6Config) -> List[tuple]:
    """The two (mode, acks) arms of the comparison, config's own mode first.

    The configured ``mode``/``acks`` are honored verbatim for the primary
    arm (so ``--set mode=... --set acks=...`` is never silently discarded);
    the counterpart arm uses the paper's setting for the *other* mode
    (ZooKeeper with acks=1, KRaft with acks="all").
    """
    primary = CoordinationMode(config.mode)
    if primary is CoordinationMode.ZOOKEEPER:
        return [(primary, config.acks), (CoordinationMode.KRAFT, "all")]
    return [(primary, config.acks), (CoordinationMode.ZOOKEEPER, 1)]


def scenario_points(config: Fig6Config) -> List[PointSpec]:
    """Both coordination modes of the paper's comparison, as independent runs."""
    points = []
    for index, (mode, acks) in enumerate(_mode_arms(config)):
        arm_config = Fig6Config(**{**config.__dict__, "mode": mode, "acks": acks})
        points.append(
            PointSpec(
                fn=run_fig6, kwargs={"config": arm_config}, label=mode.value, index=index
            )
        )
    return points


def scenario_combine(
    config: Fig6Config, outcomes: List[Fig6Result]
) -> Dict[str, Fig6Result]:
    return {
        mode.value: outcome
        for (mode, _acks), outcome in zip(_mode_arms(config), outcomes)
    }


def run_mode_comparison(
    config: Optional[Fig6Config] = None, workers: int = 1
) -> Dict[str, Fig6Result]:
    """Run the scenario in both coordination modes (the paper's ZK vs Raft finding)."""
    return ScenarioRunner(SCENARIO).run_config(config or Fig6Config(), workers=workers).result


PAPER_SHAPE = {
    "zookeeper_loses_messages": True,
    "losses_only_from_partitioned_topic": True,
    "kraft_loses_messages": False,
    "latency_spikes_per_topic": 2,
    "throughput_events": ["leader-disconnection", "election", "backlog-serving", "preferred-reelection"],
}


def check_shape(results: Dict[str, Fig6Result]) -> List[str]:
    """Check the qualitative Figure 6 findings on a ZK/KRaft result pair."""
    problems = []
    zk = results.get("zookeeper")
    kraft = results.get("kraft")
    if zk is not None:
        if zk.acked_but_lost == 0:
            problems.append("ZooKeeper mode should silently lose some acknowledged records")
        if not zk.loss_only_on_topic_a():
            problems.append("losses should come only from the partitioned topic (topic A)")
        if not zk.election_times():
            problems.append("a new leader election should have happened")
    if kraft is not None and kraft.acked_but_lost > 0:
        problems.append("KRaft mode must not silently lose acknowledged records")
    return problems


def scenario_metrics(results: Dict[str, Fig6Result]) -> Dict[str, object]:
    metrics: Dict[str, object] = {}
    for mode, result in results.items():
        metrics[f"{mode}_produced"] = result.messages_produced
        metrics[f"{mode}_consumed"] = result.messages_consumed
        metrics[f"{mode}_acked_but_lost"] = result.acked_but_lost
        metrics[f"{mode}_elections"] = len(result.election_times())
        # Storage-plane counters only when the run actually exercised the
        # segmented log (zero-noise metrics stay out of RunResult.metrics).
        for name, value in result.storage.items():
            if value:
                metrics[f"{mode}_{name}"] = value
    return metrics


def _scenario_check(config: Fig6Config, results: Dict[str, Fig6Result]) -> List[str]:
    return check_shape(results)


SCENARIO = register(
    Scenario(
        name="fig6",
        title="Figure 6 — replicated deployment under a partition (ZK vs KRaft)",
        config_factory=Fig6Config,
        points=scenario_points,
        combine=scenario_combine,
        metrics=scenario_metrics,
        tiers={
            "quick": {
                "n_sites": 4,
                "duration": 150.0,
                "disconnect_start": 50.0,
                "disconnect_duration": 35.0,
            },
            "paper": {
                "n_sites": 10,
                "duration": 600.0,
                "disconnect_start": 180.0,
                "disconnect_duration": 120.0,
            },
        },
        sweep_axis="n_sites",
        check=_scenario_check,
        description=__doc__.strip().splitlines()[0],
    )
)
