"""Experiment harnesses reproducing every table and figure of the paper.

Each module exposes a configuration dataclass (with quick defaults suitable
for CI and larger "paper-scale" settings), a ``run_*`` function returning a
structured result, and the reference shape reported in the paper so that the
benchmark harness can check qualitative agreement (who wins, by roughly what
factor, where curves saturate) rather than absolute numbers.

========================  ==========================================================
Module                    Paper artefact
========================  ==========================================================
``table2_applications``   Table II  — example applications deployed on the tool
``fig5_link_delay``       Figure 5  — word-count latency vs per-component link delay
``fig6_partition``        Figure 6  — network partitioning (delivery, latency, bw)
``fig7a_video_analytics`` Figure 7a — Ichinose et al. reproduction
``fig7b_traffic_monitoring`` Figure 7b — Ocampo et al. reproduction
``fig8_accuracy``         Figure 8  — emulation vs hardware testbed accuracy
``fig9_resources``        Figure 9  — CPU / memory scalability
========================  ==========================================================
"""

from repro.experiments.fig5_link_delay import Fig5Config, run_fig5
from repro.experiments.fig6_partition import Fig6Config, run_fig6
from repro.experiments.fig7a_video_analytics import Fig7aConfig, run_fig7a
from repro.experiments.fig7b_traffic_monitoring import Fig7bConfig, run_fig7b
from repro.experiments.fig8_accuracy import Fig8Config, run_fig8
from repro.experiments.fig9_resources import Fig9Config, run_fig9
from repro.experiments.table2_applications import Table2Config, run_table2

__all__ = [
    "Fig5Config",
    "run_fig5",
    "Fig6Config",
    "run_fig6",
    "Fig7aConfig",
    "run_fig7a",
    "Fig7bConfig",
    "run_fig7b",
    "Fig8Config",
    "run_fig8",
    "Fig9Config",
    "run_fig9",
    "Table2Config",
    "run_table2",
]
