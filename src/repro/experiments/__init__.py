"""Experiment harnesses reproducing every table and figure of the paper.

Each module is a *scenario definition* (see :mod:`repro.scenarios`): a
configuration dataclass, a point decomposition (``scenario_points`` /
``scenario_combine``) registered under the figure's name, and the reference
shape reported in the paper so that the benchmark harness can check
qualitative agreement (who wins, by roughly what factor, where curves
saturate) rather than absolute numbers.  The legacy ``run_*`` entry points
delegate to the scenario runner and accept ``workers=N`` to shard their
independent points across processes; scale tiers (quick vs paper) are
selected uniformly via :class:`repro.scenarios.ScenarioParams` instead of
per-module constants::

    python -m repro run fig7b --scale paper --workers 4

========================  ==========================================================
Module                    Paper artefact
========================  ==========================================================
``table2_applications``   Table II  — example applications deployed on the tool
``fig5_link_delay``       Figure 5  — word-count latency vs per-component link delay
``fig6_partition``        Figure 6  — network partitioning (delivery, latency, bw)
``fig7a_video_analytics`` Figure 7a — Ichinose et al. reproduction
``fig7b_traffic_monitoring`` Figure 7b — Ocampo et al. reproduction
``fig8_accuracy``         Figure 8  — emulation vs hardware testbed accuracy
``fig9_resources``        Figure 9  — CPU / memory scalability
========================  ==========================================================
"""

from repro.experiments.fig5_link_delay import Fig5Config, run_fig5
from repro.experiments.fig6_partition import Fig6Config, run_fig6, run_mode_comparison
from repro.experiments.fig7a_video_analytics import Fig7aConfig, run_fig7a
from repro.experiments.fig7b_traffic_monitoring import Fig7bConfig, run_fig7b
from repro.experiments.fig8_accuracy import Fig8Config, run_fig8
from repro.experiments.fig9_resources import Fig9Config, run_fig9
from repro.experiments.table2_applications import Table2Config, run_table2

__all__ = [
    "Fig5Config",
    "run_fig5",
    "Fig6Config",
    "run_fig6",
    "run_mode_comparison",
    "Fig7aConfig",
    "run_fig7a",
    "Fig7bConfig",
    "run_fig7b",
    "Fig8Config",
    "run_fig8",
    "Fig9Config",
    "run_fig9",
    "Table2Config",
    "run_table2",
]
