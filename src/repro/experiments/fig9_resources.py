"""Figure 9: resource usage of the underlying server for large emulations.

The scenario of Figure 6a is scaled from 2 to 10 coordinating sites (each
site hosting a broker, a 30 Kbps producer and a consumer).  The underlying
server's CPU and memory utilization is sampled every 500 ms after a warm-up
interval.

Reproduced artefacts:

* Figure 9a — the CDF of CPU utilization per site count (the CPU stays below
  ~60% for the vast majority of samples even at 10 sites);
* Figure 9b — the median CPU utilization grows only a few percentage points
  from 2 to 10 sites and stays low (~10%);
* Figure 9c — the peak memory usage grows roughly linearly with the site
  count and is sensitive to the producers' ``buffer.memory`` (16 MB vs 32 MB).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.broker.cluster import BrokerCluster, ClusterConfig
from repro.broker.consumer import ConsumerConfig
from repro.broker.topic import TopicConfig
from repro.core.configs import ProducerStubConfig
from repro.core.resources import HostResourceModel, ResourceReport, ServerSpec
from repro.network.link import LinkConfig
from repro.network.topology import star_topology
from repro.scenarios import PointSpec, Scenario, ScenarioRunner, register
from repro.simulation import Simulator
from repro.stubs.producers import RandomRateProducerStub


@dataclass
class Fig9Config:
    """Scaling parameters (quick defaults; the paper samples 2-10 sites)."""

    site_counts: List[int] = field(default_factory=lambda: [2, 4, 6, 8, 10])
    buffer_sizes: List[int] = field(
        default_factory=lambda: [16 * 1024 * 1024, 32 * 1024 * 1024]
    )
    rate_kbps: float = 30.0
    message_size: int = 512
    duration: float = 90.0
    warmup: float = 60.0
    replication_factor: int = 2
    #: Partitions per topic (replica sets rotate across the sites).
    partitions: int = 1
    #: Exactly-once produce path for the site producers.
    idempotence: bool = False
    #: Transactional produce path (atomic batches; implies idempotence).
    transactional_id: str = ""
    #: ``read_committed`` delivers only committed transactions downstream.
    isolation_level: str = "read_uncommitted"
    #: Catalog-wide engine-path knob.  Figure 9 is broker-only (no SPE), so
    #: this is accepted for ``--set vectorized=false`` uniformity and ignored.
    vectorized: bool = True
    seed: int = 4


@dataclass
class Fig9Result:
    """Reports keyed by (n_sites, buffer_size)."""

    reports: Dict[tuple, ResourceReport]

    def median_cpu_series(self, buffer_size: int) -> Dict[int, float]:
        return {
            sites: report.median_cpu()
            for (sites, buffer), report in self.reports.items()
            if buffer == buffer_size
        }

    def peak_memory_series(self, buffer_size: int) -> Dict[int, float]:
        return {
            sites: report.peak_memory()
            for (sites, buffer), report in self.reports.items()
            if buffer == buffer_size
        }

    def cpu_cdf(self, n_sites: int, buffer_size: int):
        return self.reports[(n_sites, buffer_size)].cpu_cdf()

    def cpu_increase(self, buffer_size: int) -> float:
        """Median CPU increase from the smallest to the largest site count."""
        series = self.median_cpu_series(buffer_size)
        counts = sorted(series)
        if len(counts) < 2:
            return 0.0
        return series[counts[-1]] - series[counts[0]]

    def memory_increase_percent(self, buffer_size: int) -> float:
        series = self.peak_memory_series(buffer_size)
        counts = sorted(series)
        if len(counts) < 2:
            return 0.0
        return series[counts[-1]] - series[counts[0]]


def run_single(n_sites: int, buffer_size: int, config: Fig9Config) -> ResourceReport:
    """Run the Figure 6a scenario at one (site count, buffer size) point."""
    sim = Simulator(seed=config.seed)
    network, sites = star_topology(
        sim, n_sites, link_config=LinkConfig(latency_ms=2.0, bandwidth_mbps=100.0)
    )
    cluster = BrokerCluster(network, coordinator_host=sites[0], config=ClusterConfig())
    for site in sites:
        cluster.add_broker(site)
    replication = min(config.replication_factor, n_sites)
    cluster.add_topic(
        TopicConfig(name="topicA", partitions=config.partitions, replication_factor=replication)
    )
    cluster.add_topic(
        TopicConfig(name="topicB", partitions=config.partitions, replication_factor=replication)
    )

    producer_config = ProducerStubConfig(
        topics=["topicA", "topicB"],
        message_size=config.message_size,
        rate_kbps=config.rate_kbps,
        buffer_memory=buffer_size,
        idempotence=config.idempotence,
        transactional_id=config.transactional_id or None,
    )
    producer_stubs = []
    for site in sites:
        producer_stubs.append(
            RandomRateProducerStub(cluster, site, config=producer_config, name=f"prod-{site}")
        )
        consumer = cluster.create_consumer(
            site,
            config=ConsumerConfig(
                poll_interval=0.1,
                keep_payloads=False,
                isolation_level=config.isolation_level,
            ),
            name=f"cons-{site}",
        )
        consumer.subscribe(["topicA", "topicB"])

    model = HostResourceModel(network, interval=0.5, server=ServerSpec())
    cluster.start(settle_time=3.0)
    model.start(warmup=config.warmup)

    def start_clients() -> None:
        for stub in producer_stubs:
            stub.start()
        for consumer in cluster.consumers:
            consumer.start()

    sim.schedule_callback(8.0, start_clients, name="fig9:start-clients")
    sim.run(until=config.warmup + config.duration)
    model.stop()
    return model.report


def _sweep_grid(config: Fig9Config) -> List[tuple]:
    """Canonical (buffer size, site count) order — the single source shared
    by point generation and outcome combination, so the two can never skew."""
    return [
        (buffer_size, n_sites)
        for buffer_size in config.buffer_sizes
        for n_sites in config.site_counts
    ]


def scenario_points(config: Fig9Config) -> List[PointSpec]:
    """One point per (buffer size, site count), in sweep order."""
    return [
        PointSpec(
            fn=run_single,
            kwargs={"n_sites": n_sites, "buffer_size": buffer_size, "config": config},
            label=f"{n_sites}sites/{buffer_size // (1024 * 1024)}MB",
            index=index,
        )
        for index, (buffer_size, n_sites) in enumerate(_sweep_grid(config))
    ]


def scenario_combine(config: Fig9Config, outcomes: List[ResourceReport]) -> Fig9Result:
    grid = _sweep_grid(config)
    assert len(outcomes) == len(grid)
    reports: Dict[tuple, ResourceReport] = {}
    for (buffer_size, n_sites), report in zip(grid, outcomes):
        reports[(n_sites, buffer_size)] = report
    return Fig9Result(reports=reports)


def run_fig9(config: Optional[Fig9Config] = None, workers: int = 1) -> Fig9Result:
    """Run the full scaling sweep (across ``workers`` processes if > 1)."""
    return ScenarioRunner(SCENARIO).run_config(config or Fig9Config(), workers=workers).result


PAPER_SHAPE = {
    "cpu_below_60_percent_fraction": 0.9,
    "median_cpu_increase_max": 8.0,
    "memory_increase_max_percent": 25.0,
    "buffer_size_affects_memory": True,
}


def check_shape(result: Fig9Result, config: Optional[Fig9Config] = None) -> List[str]:
    """Check the qualitative Figure 9 findings."""
    config = config or Fig9Config()
    problems = []
    largest = max(config.site_counts)
    big_buffer = max(config.buffer_sizes)
    small_buffer = min(config.buffer_sizes)
    report = result.reports[(largest, big_buffer)]
    if report.fraction_below(60.0) < PAPER_SHAPE["cpu_below_60_percent_fraction"]:
        problems.append("CPU should stay below 60% for the vast majority of samples")
    if result.cpu_increase(big_buffer) > PAPER_SHAPE["median_cpu_increase_max"]:
        problems.append("median CPU increase across the sweep should stay small (<8%)")
    memory_series = result.peak_memory_series(big_buffer)
    counts = sorted(memory_series)
    for earlier, later in zip(counts, counts[1:]):
        if memory_series[later] < memory_series[earlier]:
            problems.append("peak memory should grow with the number of sites")
            break
    if result.memory_increase_percent(big_buffer) > PAPER_SHAPE["memory_increase_max_percent"]:
        problems.append("total memory increase should stay modest (<25 points)")
    if big_buffer != small_buffer:
        big = result.peak_memory_series(big_buffer)[largest]
        small = result.peak_memory_series(small_buffer)[largest]
        if big <= small:
            problems.append("larger producer buffers should consume more memory")
    return problems


def scenario_metrics(result: Fig9Result) -> Dict[str, float]:
    metrics: Dict[str, float] = {}
    for (sites, buffer_size), report in sorted(result.reports.items()):
        suffix = f"{sites}s_{buffer_size // (1024 * 1024)}mb"
        metrics[f"median_cpu_{suffix}"] = round(report.median_cpu(), 2)
        metrics[f"peak_memory_{suffix}"] = round(report.peak_memory(), 2)
    return metrics


def _scenario_check(config: Fig9Config, result: Fig9Result) -> List[str]:
    return check_shape(result, config)


MB = 1024 * 1024

SCENARIO = register(
    Scenario(
        name="fig9",
        title="Figure 9 — server CPU / memory scalability vs site count",
        config_factory=Fig9Config,
        points=scenario_points,
        combine=scenario_combine,
        metrics=scenario_metrics,
        tiers={
            "quick": {
                "site_counts": [2, 4],
                "buffer_sizes": [16 * MB, 32 * MB],
                "duration": 25.0,
                "warmup": 10.0,
            },
            "paper": {},  # the module defaults are the paper's 2-10 site sweep
        },
        sweep_axis="site_counts",
        check=_scenario_check,
        description=__doc__.strip().splitlines()[0],
    )
)
