"""Figure 8: emulation accuracy compared to a hardware testbed.

The paper runs the word-count pipeline both in stream2gym and on a 4-node
hardware testbed (Xeon/i7 servers, SmartNICs, a Tofino switch) while varying
the broker and SPE link delays, and shows the end-to-end latencies match
almost exactly.

The hardware testbed is not available offline, so the reproduction runs the
same pipeline under two *calibration profiles*:

* ``stream2gym`` — the default software-switch constants used everywhere else;
* ``hardware`` — hardware-testbed constants: an order-of-magnitude faster
  switching path, NIC-offload-level per-record costs, and NTP-style
  measurement jitter.

Because the end-to-end latency is dominated by the injected link delays (the
quantity both environments share), the two profiles should agree closely —
which is exactly the claim Figure 8 makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.word_count import create_task
from repro.core.emulation import Emulation
from repro.experiments.fig5_link_delay import _end_to_end_latencies
from repro.scenarios import PointSpec, Scenario, ScenarioRunner, register
from repro.simulation.rng import SeededRandom
from repro.workloads import pregenerated
from repro.workloads.text import generate_documents


@dataclass
class CalibrationProfile:
    """Environment-specific constants."""

    name: str
    switching_delay: float
    broker_cpu_per_record: float
    measurement_jitter_s: float


STREAM2GYM_PROFILE = CalibrationProfile(
    name="stream2gym",
    switching_delay=30e-6,
    broker_cpu_per_record=12e-6,
    measurement_jitter_s=0.0,
)

HARDWARE_PROFILE = CalibrationProfile(
    name="hardware",
    switching_delay=2e-6,
    broker_cpu_per_record=6e-6,
    #: Clock synchronization over a public NTP server adds a little noise.
    measurement_jitter_s=0.004,
)


@dataclass
class Fig8Config:
    """Sweep parameters (broker and SPE link delays, both environments)."""

    link_delays_ms: List[float] = field(default_factory=lambda: [25, 50, 75, 100, 125, 150])
    components: List[str] = field(default_factory=lambda: ["broker", "spe"])
    n_documents: int = 30
    files_per_second: float = 5.0
    duration: float = 60.0
    #: Partitions per word-count topic.
    partitions: int = 1
    #: Exactly-once produce path for the document source.
    idempotence: bool = False
    #: Transactional produce path (atomic batches; implies idempotence).
    transactional_id: str = ""
    #: ``read_committed`` delivers only committed transactions downstream.
    isolation_level: str = "read_uncommitted"
    #: Columnar SPE execution (``--set vectorized=false`` pins the record path).
    vectorized: bool = True
    seed: int = 2


@dataclass
class Fig8Result:
    """latency[component][environment][delay] = mean end-to-end latency (s)."""

    latency: Dict[str, Dict[str, Dict[float, float]]]

    def relative_error(self, component: str, delay: float) -> float:
        emulated = self.latency[component]["stream2gym"][delay]
        hardware = self.latency[component]["hardware"][delay]
        if hardware == 0:
            return 0.0
        return abs(emulated - hardware) / hardware

    def max_relative_error(self) -> float:
        worst = 0.0
        for component, environments in self.latency.items():
            for delay in environments["stream2gym"]:
                worst = max(worst, self.relative_error(component, delay))
        return worst

    def rows(self) -> List[dict]:
        rows = []
        for component, environments in self.latency.items():
            for delay in sorted(environments["stream2gym"]):
                rows.append(
                    {
                        "component": component,
                        "link_delay_ms": delay,
                        "stream2gym_s": environments["stream2gym"][delay],
                        "hardware_s": environments["hardware"][delay],
                        "relative_error": self.relative_error(component, delay),
                    }
                )
        return rows


_COMPONENT_TO_ROLE = {"broker": "broker", "spe": "spe_job1"}


def run_single(
    component: str, delay_ms: float, profile: CalibrationProfile, config: Fig8Config
) -> float:
    """Mean end-to-end latency of one (component, delay, profile) run."""
    role = _COMPONENT_TO_ROLE[component]
    task = create_task(
        n_documents=config.n_documents,
        link_latency_ms=5.0,
        per_component_latency={role: delay_ms},
        files_per_second=config.files_per_second,
        partitions=config.partitions,
        idempotence=config.idempotence,
        transactional_id=config.transactional_id or None,
        isolation_level=config.isolation_level,
        vectorized=config.vectorized,
    )
    # Pre-generated: the (component, delay, profile) sweep replays one corpus.
    documents = pregenerated(generate_documents, config.n_documents, seed=config.seed)
    emulation = Emulation(task, seed=config.seed, datasets={"documents": documents})
    emulation.build()
    for switch in emulation.network.switches.values():
        switch.switching_delay = profile.switching_delay
    if emulation.cluster is not None:
        for broker in emulation.cluster.brokers.values():
            broker.config.cpu_per_record = profile.broker_cpu_per_record
    emulation.run(duration=config.duration)
    latencies = _end_to_end_latencies(emulation)
    if not latencies:
        return float("nan")
    mean = sum(latencies) / len(latencies)
    if profile.measurement_jitter_s > 0:
        rng = SeededRandom(config.seed * 97 + int(delay_ms))
        mean += rng.gauss(0.0, profile.measurement_jitter_s)
    return max(0.0, mean)


def _sweep_grid(config: Fig8Config) -> List[tuple]:
    """Canonical (component, delay, profile) order — the single source shared
    by point generation and outcome combination, so the two can never skew."""
    return [
        (component, delay, profile)
        for component in config.components
        for delay in config.link_delays_ms
        for profile in (STREAM2GYM_PROFILE, HARDWARE_PROFILE)
    ]


def scenario_points(config: Fig8Config) -> List[PointSpec]:
    """One point per (component, delay, calibration profile), in sweep order."""
    return [
        PointSpec(
            fn=run_single,
            kwargs={
                "component": component,
                "delay_ms": delay,
                "profile": profile,
                "config": config,
            },
            label=f"{component}@{delay:g}ms/{profile.name}",
            index=index,
        )
        for index, (component, delay, profile) in enumerate(_sweep_grid(config))
    ]


def scenario_combine(config: Fig8Config, outcomes: List[float]) -> Fig8Result:
    grid = _sweep_grid(config)
    assert len(outcomes) == len(grid)
    latency: Dict[str, Dict[str, Dict[float, float]]] = {}
    for (component, delay, profile), outcome in zip(grid, outcomes):
        environments = latency.setdefault(
            component, {"stream2gym": {}, "hardware": {}}
        )
        environments[profile.name][delay] = outcome
    return Fig8Result(latency=latency)


def run_fig8(config: Optional[Fig8Config] = None, workers: int = 1) -> Fig8Result:
    """Run the emulation-vs-hardware comparison (parallel if ``workers`` > 1)."""
    return ScenarioRunner(SCENARIO).run_config(config or Fig8Config(), workers=workers).result


PAPER_SHAPE = {
    "results_match_almost_exactly": True,
    "max_relative_error": 0.15,
}


def check_shape(result: Fig8Result) -> List[str]:
    """Check that both environments agree and latency grows with delay."""
    problems = []
    if result.max_relative_error() > PAPER_SHAPE["max_relative_error"]:
        problems.append(
            f"emulation and hardware profiles should match closely "
            f"(max relative error {result.max_relative_error():.2f})"
        )
    for component, environments in result.latency.items():
        series = [environments["stream2gym"][d] for d in sorted(environments["stream2gym"])]
        if series and series[-1] <= series[0]:
            problems.append(f"latency should grow with {component} link delay")
    return problems


def scenario_metrics(result: Fig8Result) -> Dict[str, float]:
    return {"max_relative_error": round(result.max_relative_error(), 4)}


def _scenario_check(config: Fig8Config, result: Fig8Result) -> List[str]:
    return check_shape(result)


SCENARIO = register(
    Scenario(
        name="fig8",
        title="Figure 8 — emulation vs hardware-testbed latency accuracy",
        config_factory=Fig8Config,
        points=scenario_points,
        combine=scenario_combine,
        metrics=scenario_metrics,
        tiers={
            "quick": {
                "link_delays_ms": [50.0],
                "components": ["broker"],
                "n_documents": 10,
                "duration": 35.0,
            },
            "paper": {"n_documents": 100},
        },
        sweep_axis="link_delays_ms",
        check=_scenario_check,
        description=__doc__.strip().splitlines()[0],
    )
)
