"""Figure 5: word-count end-to-end latency while varying per-component link delay.

The word-count pipeline of Figure 2 runs in a one-big-switch topology.  In
each run, the access link of exactly one component (producer, broker, stream
processing engine, or consumer) is set to the swept delay while every other
link stays below 10 ms; the metric is the average end-to-end latency of a
text file through the whole pipeline (production of the raw document to
arrival of the final per-topic average at the data sink).

Paper shape: latency grows with the delay for every component, but the broker
and SPE links hurt far more (up to ~6x at 150 ms) because those components
sit on every data path (the broker) or add several broker round trips per
stage (the SPE).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.apps.word_count import AVERAGE_TOPIC, WORDS_TOPIC, create_task
from repro.core.emulation import Emulation
from repro.scenarios import PointSpec, Scenario, ScenarioRunner, register
from repro.workloads import pregenerated
from repro.workloads.text import generate_documents

#: The four components whose access link is swept, as named in the paper.
COMPONENTS = ("producer", "broker", "spe", "consumer")

_COMPONENT_TO_ROLE = {
    "producer": "source",
    "broker": "broker",
    "spe": "spe_job1",
    "consumer": "sink",
}


@dataclass
class Fig5Config:
    """Sweep parameters (quick defaults; the paper uses 100 files per point)."""

    link_delays_ms: List[float] = field(default_factory=lambda: [25, 50, 75, 100, 125, 150])
    components: List[str] = field(default_factory=lambda: list(COMPONENTS))
    n_documents: int = 40
    files_per_second: float = 5.0
    baseline_delay_ms: float = 5.0
    duration: float = 60.0
    #: Partitions per word-count topic (documents are keyed by file name).
    partitions: int = 1
    #: Exactly-once produce path for the document source (broker-side dedup).
    idempotence: bool = False
    #: Transactional produce path (atomic batches; implies idempotence).
    transactional_id: str = ""
    #: ``read_committed`` delivers only committed transactions downstream.
    isolation_level: str = "read_uncommitted"
    #: Columnar SPE execution (``--set vectorized=false`` pins the record path).
    vectorized: bool = True
    seed: int = 1


@dataclass
class Fig5Result:
    """latency_s[component][delay_ms] = mean end-to-end latency in seconds."""

    latency_s: Dict[str, Dict[float, float]]
    samples: Dict[str, Dict[float, int]]

    def series(self, component: str) -> List[float]:
        return [self.latency_s[component][delay] for delay in sorted(self.latency_s[component])]

    def impact_factor(self, component: str) -> float:
        """Latency at the largest delay divided by latency at the smallest."""
        series = self.series(component)
        if not series or series[0] == 0:
            return 0.0
        return series[-1] / series[0]

    def rows(self) -> List[dict]:
        rows = []
        for component, by_delay in self.latency_s.items():
            for delay, latency in sorted(by_delay.items()):
                rows.append(
                    {"component": component, "link_delay_ms": delay, "e2e_latency_s": latency}
                )
        return rows


def _end_to_end_latencies(emulation: Emulation) -> List[float]:
    """Latency from original document production to arrival at the data sink."""
    sink = emulation.consumers.get("h5")
    if sink is None:
        return []
    latencies = []
    for record in sink.records:
        if record.topic not in (WORDS_TOPIC, AVERAGE_TOPIC):
            continue
        value = record.value
        event_time = None
        if isinstance(value, dict):
            event_time = value.get("event_time")
        if event_time is None:
            continue
        latencies.append(record.received_at - event_time)
    return latencies


def run_single(component: str, delay_ms: float, config: Fig5Config) -> List[float]:
    """Run one point of the sweep and return the per-file latencies."""
    role = _COMPONENT_TO_ROLE[component]
    task = create_task(
        n_documents=config.n_documents,
        link_latency_ms=config.baseline_delay_ms,
        per_component_latency={role: delay_ms},
        files_per_second=config.files_per_second,
        partitions=config.partitions,
        idempotence=config.idempotence,
        transactional_id=config.transactional_id or None,
        isolation_level=config.isolation_level,
        vectorized=config.vectorized,
    )
    # Pre-generated: every sweep point replays the identical seeded corpus,
    # so synthesis runs once for the whole figure.
    documents = pregenerated(generate_documents, config.n_documents, seed=config.seed)
    emulation = Emulation(task, seed=config.seed, datasets={"documents": documents})
    emulation.run(duration=config.duration)
    return _end_to_end_latencies(emulation)


def _sweep_grid(config: Fig5Config) -> List[tuple]:
    """Canonical (component, delay) order — the single source shared by
    point generation and outcome combination, so the two can never skew."""
    return [
        (component, delay)
        for component in config.components
        for delay in config.link_delays_ms
    ]


def scenario_points(config: Fig5Config) -> List[PointSpec]:
    """One independent point per (component, delay) pair, in sweep order."""
    return [
        PointSpec(
            fn=run_single,
            kwargs={"component": component, "delay_ms": delay, "config": config},
            label=f"{component}@{delay:g}ms",
            index=index,
        )
        for index, (component, delay) in enumerate(_sweep_grid(config))
    ]


def scenario_combine(config: Fig5Config, outcomes: List[List[float]]) -> Fig5Result:
    grid = _sweep_grid(config)
    assert len(outcomes) == len(grid)
    latency: Dict[str, Dict[float, float]] = {}
    samples: Dict[str, Dict[float, int]] = {}
    for (component, delay), values in zip(grid, outcomes):
        latency.setdefault(component, {})[delay] = (
            sum(values) / len(values) if values else float("nan")
        )
        samples.setdefault(component, {})[delay] = len(values)
    return Fig5Result(latency_s=latency, samples=samples)


def run_fig5(config: Fig5Config = None, workers: int = 1) -> Fig5Result:
    """Run the full Figure 5 sweep (across ``workers`` processes if > 1)."""
    return ScenarioRunner(SCENARIO).run_config(config or Fig5Config(), workers=workers).result


#: Paper reference shape used by the benchmark harness.
PAPER_SHAPE = {
    # Broker and SPE delays dominate (paper reports up to ~6x at 150 ms).
    "dominant_components": ("broker", "spe"),
    "max_latency_at_150ms_s": 6.0,
}


def check_shape(result: Fig5Result) -> List[str]:
    """Qualitative checks against the paper's shape; returns a list of violations."""
    problems = []
    for component in result.latency_s:
        series = result.series(component)
        if series and series[-1] < series[0]:
            problems.append(f"latency should not decrease with delay for {component}")
    broker_impact = result.impact_factor("broker") if "broker" in result.latency_s else 0
    producer_impact = result.impact_factor("producer") if "producer" in result.latency_s else 0
    consumer_impact = result.impact_factor("consumer") if "consumer" in result.latency_s else 0
    if broker_impact and producer_impact and broker_impact <= producer_impact:
        problems.append("broker link delay should hurt more than the producer link delay")
    if broker_impact and consumer_impact and broker_impact <= consumer_impact:
        problems.append("broker link delay should hurt more than the consumer link delay")
    return problems


def scenario_metrics(result: Fig5Result) -> Dict[str, float]:
    metrics: Dict[str, float] = {}
    for component in result.latency_s:
        metrics[f"impact_{component}"] = round(result.impact_factor(component), 3)
        series = result.series(component)
        if series:
            metrics[f"latency_max_{component}_s"] = round(series[-1], 4)
    return metrics


def _scenario_check(config: Fig5Config, result: Fig5Result) -> List[str]:
    return check_shape(result)


SCENARIO = register(
    Scenario(
        name="fig5",
        title="Figure 5 — word-count latency vs per-component link delay",
        config_factory=Fig5Config,
        points=scenario_points,
        combine=scenario_combine,
        metrics=scenario_metrics,
        tiers={
            "quick": {
                "link_delays_ms": [25.0, 150.0],
                "components": ["producer", "broker"],
                "n_documents": 12,
                "duration": 35.0,
            },
            "paper": {"n_documents": 100},
        },
        sweep_axis="link_delays_ms",
        check=_scenario_check,
        description=__doc__.strip().splitlines()[0],
    )
)
