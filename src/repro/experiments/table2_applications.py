"""Table II: example applications deployed on the tool.

The paper summarizes five applications by their component count, the feature
each one exercises, and the lines of code needed to express them.  This
harness deploys all five on the reproduction, verifies they produce their
expected outputs, and reports the same three columns (components, features,
LoC of the application module).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps import (
    fraud_detection,
    maritime_monitoring,
    ride_selection,
    sentiment_analysis,
    word_count,
)
from repro.scenarios import PointSpec, Scenario, ScenarioRunner, register

#: Paper-reported rows (application -> (components, feature)).
PAPER_TABLE = {
    "word_count": (5, "Multiple stream processing jobs"),
    "ride_selection": (5, "Structured data, stateful processing"),
    "sentiment_analysis": (3, "Unstructured data"),
    "maritime_monitoring": (4, "Persistent storage"),
    "fraud_detection": (5, "Machine learning prediction"),
}

_MODULES = {
    "word_count": word_count,
    "ride_selection": ride_selection,
    "sentiment_analysis": sentiment_analysis,
    "maritime_monitoring": maritime_monitoring,
    "fraud_detection": fraud_detection,
}


@dataclass
class Table2Config:
    """How heavily to exercise each application."""

    run_pipelines: bool = True
    n_items: int = 60
    duration: float = 40.0
    #: Partitions per application topic (every app's task plumbs it through).
    partitions: int = 1
    #: Exactly-once produce path for every app's ingestion producer.
    idempotence: bool = False
    #: Transactional produce path (atomic batches; implies idempotence).
    transactional_id: str = ""
    #: ``read_committed`` delivers only committed transactions downstream.
    isolation_level: str = "read_uncommitted"
    #: Columnar SPE execution for every app (record path when ``false``).
    vectorized: bool = True
    seed: int = 1


@dataclass
class Table2Row:
    application: str
    components: int
    feature: str
    loc: int
    messages_consumed: Optional[int] = None
    verified: bool = False


@dataclass
class Table2Result:
    rows: List[Table2Row] = field(default_factory=list)

    def as_dicts(self) -> List[dict]:
        return [row.__dict__ for row in self.rows]

    def row(self, application: str) -> Table2Row:
        for row in self.rows:
            if row.application == application:
                return row
        raise KeyError(application)


def _loc_of(module) -> int:
    """Lines of code of the application module (Table II's LoC column analogue)."""
    source = inspect.getsource(module)
    return sum(
        1
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith("#")
    )


def _run_application(name: str, config: Table2Config) -> Dict[str, object]:
    if name == "word_count":
        result = word_count.run(
            n_documents=config.n_items, duration=config.duration, seed=config.seed,
            files_per_second=10.0, partitions=config.partitions,
            idempotence=config.idempotence,
            transactional_id=config.transactional_id or None,
            isolation_level=config.isolation_level,
            vectorized=config.vectorized,
        )
        return {"consumed": result.messages_consumed, "verified": result.messages_consumed > 0}
    if name == "ride_selection":
        result = ride_selection.run(
            n_rides=config.n_items, duration=config.duration, seed=config.seed,
            rides_per_second=15.0, partitions=config.partitions,
            idempotence=config.idempotence,
            transactional_id=config.transactional_id or None,
            isolation_level=config.isolation_level,
            vectorized=config.vectorized,
        )
        return {
            "consumed": result.messages_consumed,
            "verified": bool(result.extras.get("area_ranking")),
        }
    if name == "sentiment_analysis":
        result = sentiment_analysis.run(
            n_tweets=config.n_items, duration=config.duration, seed=config.seed,
            tweets_per_second=15.0, partitions=config.partitions,
            idempotence=config.idempotence,
            transactional_id=config.transactional_id or None,
            isolation_level=config.isolation_level,
            vectorized=config.vectorized,
        )
        return {
            "consumed": result.extras.get("scored_tweets", 0),
            "verified": result.extras.get("scored_tweets", 0) > 0,
        }
    if name == "maritime_monitoring":
        result = maritime_monitoring.run(
            n_messages=config.n_items, duration=config.duration, seed=config.seed,
            messages_per_second=15.0, partitions=config.partitions,
            idempotence=config.idempotence,
            transactional_id=config.transactional_id or None,
            isolation_level=config.isolation_level,
            vectorized=config.vectorized,
        )
        return {
            "consumed": result.spe_metrics.get("h3", {}).get("input_records", 0),
            "verified": bool(result.extras.get("ships_per_port")),
        }
    if name == "fraud_detection":
        result = fraud_detection.run(
            n_transactions=config.n_items, duration=config.duration, seed=config.seed,
            fraud_rate=0.2, transactions_per_second=15.0, partitions=config.partitions,
            idempotence=config.idempotence,
            transactional_id=config.transactional_id or None,
            isolation_level=config.isolation_level,
            vectorized=config.vectorized,
        )
        return {
            "consumed": result.messages_consumed,
            "verified": result.extras.get("alerts", 0) > 0,
        }
    raise KeyError(name)


def run_application_row(name: str, config: Table2Config) -> Table2Row:
    """Build (and optionally run) one application; the scenario's point unit."""
    components, feature = PAPER_TABLE[name]
    module = _MODULES[name]
    task = module.create_task()
    row = Table2Row(
        application=name,
        components=task.component_count(),
        feature=feature,
        loc=_loc_of(module),
    )
    if row.components != components:
        raise AssertionError(
            f"{name}: expected {components} components, built {row.components}"
        )
    if config.run_pipelines:
        outcome = _run_application(name, config)
        row.messages_consumed = int(outcome["consumed"])
        row.verified = bool(outcome["verified"])
    return row


def scenario_points(config: Table2Config) -> List[PointSpec]:
    """One independent point per Table II application."""
    return [
        PointSpec(
            fn=run_application_row,
            kwargs={"name": name, "config": config},
            label=name,
            index=index,
        )
        for index, name in enumerate(PAPER_TABLE)
    ]


def scenario_combine(config: Table2Config, outcomes: List[Table2Row]) -> Table2Result:
    return Table2Result(rows=list(outcomes))


def run_table2(config: Optional[Table2Config] = None, workers: int = 1) -> Table2Result:
    """Build (and optionally run) all five applications and produce the table."""
    return ScenarioRunner(SCENARIO).run_config(config or Table2Config(), workers=workers).result


def check_shape(result: Table2Result) -> List[str]:
    """Every application matches its paper component count and actually works."""
    problems = []
    for name, (components, _feature) in PAPER_TABLE.items():
        row = result.row(name)
        if row.components != components:
            problems.append(f"{name} should have {components} components, has {row.components}")
        if row.messages_consumed is not None and not row.verified:
            problems.append(f"{name} did not produce its expected output")
    return problems


def scenario_metrics(result: Table2Result) -> Dict[str, object]:
    metrics: Dict[str, object] = {}
    for row in result.rows:
        metrics[f"{row.application}_components"] = row.components
        metrics[f"{row.application}_loc"] = row.loc
        if row.messages_consumed is not None:
            metrics[f"{row.application}_verified"] = row.verified
    return metrics


def _scenario_check(config: Table2Config, result: Table2Result) -> List[str]:
    return check_shape(result)


SCENARIO = register(
    Scenario(
        name="table2",
        title="Table II — the five example applications, deployed and verified",
        config_factory=Table2Config,
        points=scenario_points,
        combine=scenario_combine,
        metrics=scenario_metrics,
        tiers={
            "quick": {"run_pipelines": False},
            "paper": {"n_items": 100, "duration": 60.0},
        },
        sweep_axis=None,
        check=_scenario_check,
        description=__doc__.strip().splitlines()[0],
    )
)
